"""repro — Parallelizing Query Optimization on Shared-Nothing Architectures.

A from-scratch Python reproduction of Trummer & Koch (PVLDB 9(9), 2016):
the MPQ massively parallel query optimizer, its plan-space partitioning
scheme for left-deep and bushy plan spaces, the SMA fine-grained baseline,
single- and multi-objective pruning, and a simulated shared-nothing cluster.

Quickstart::

    from repro import PlanSpace, make_star_query, optimize_mpq, optimize_serial

    query = make_star_query(8, seed=1)
    serial = optimize_serial(query)              # classical Selinger DP
    report = optimize_mpq(query, n_workers=16)   # MPQ over 16 partitions
    assert report.best.cost[0] == min(p.cost[0] for p in serial.plans)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    DEFAULT_SETTINGS,
    MULTI_OBJECTIVE,
    SINGLE_OBJECTIVE,
    Backend,
    Objective,
    OptimizerSettings,
    PlanSpace,
)
from repro.query import (
    Catalog,
    Column,
    JoinGraphKind,
    JoinPredicate,
    Query,
    SteinbrunnGenerator,
    Table,
    make_chain_query,
    make_clique_query,
    make_cycle_query,
    make_star_query,
)
from repro.plans import JoinAlgorithm, JoinPlan, Plan, ScanPlan, SortOrder
from repro.cost import CardinalityEstimator, CostModel
from repro.core import (
    MasterResult,
    PartitionResult,
    max_partitions,
    optimize_parallel,
    optimize_serial,
    partition_constraints,
    usable_partitions,
)
from repro.cluster import (
    ClusterModel,
    NetworkModel,
    PersistentProcessPoolExecutor,
    ProcessPoolPartitionExecutor,
    SerialPartitionExecutor,
    ThreadPoolPartitionExecutor,
)
from repro.service import (
    AsyncGatewayStats,
    AsyncOptimizerGateway,
    GatewayOverloadedError,
    GatewayStats,
    OptimizerService,
    PlanCache,
    ServiceResult,
    ShardedOptimizerGateway,
    canonicalize,
    fingerprint,
)
from repro.algorithms import (
    MPQReport,
    SMAReport,
    iterated_improvement,
    optimize_mpq,
    optimize_multi_objective,
    optimize_sma,
    simulated_annealing,
)
from repro.algorithms.pqo import PQOResult, optimize_parametric
from repro.core.scheduling import WorkerProfile, assign_partitions
from repro.query.io import load_query, save_query

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SETTINGS",
    "MULTI_OBJECTIVE",
    "SINGLE_OBJECTIVE",
    "Backend",
    "Objective",
    "OptimizerSettings",
    "PlanSpace",
    "Catalog",
    "Column",
    "JoinGraphKind",
    "JoinPredicate",
    "Query",
    "SteinbrunnGenerator",
    "Table",
    "make_chain_query",
    "make_clique_query",
    "make_cycle_query",
    "make_star_query",
    "JoinAlgorithm",
    "JoinPlan",
    "Plan",
    "ScanPlan",
    "SortOrder",
    "CardinalityEstimator",
    "CostModel",
    "MasterResult",
    "PartitionResult",
    "max_partitions",
    "optimize_parallel",
    "optimize_serial",
    "partition_constraints",
    "usable_partitions",
    "ClusterModel",
    "NetworkModel",
    "PersistentProcessPoolExecutor",
    "ProcessPoolPartitionExecutor",
    "SerialPartitionExecutor",
    "ThreadPoolPartitionExecutor",
    "AsyncGatewayStats",
    "AsyncOptimizerGateway",
    "GatewayOverloadedError",
    "GatewayStats",
    "OptimizerService",
    "PlanCache",
    "ServiceResult",
    "ShardedOptimizerGateway",
    "canonicalize",
    "fingerprint",
    "MPQReport",
    "SMAReport",
    "iterated_improvement",
    "optimize_mpq",
    "optimize_multi_objective",
    "optimize_sma",
    "simulated_annealing",
    "PQOResult",
    "optimize_parametric",
    "WorkerProfile",
    "assign_partitions",
    "load_query",
    "save_query",
    "__version__",
]
