"""Bitmask helpers for table sets.

Throughout the library, a *table set* (a subset of the query's tables) is
represented as a Python ``int`` used as a bitmask: bit ``i`` is set iff table
number ``i`` is a member.  This matches the paper's convention of numbering
query tables consecutively from ``0`` to ``|Q| - 1`` and keeps the dynamic
programming memotable compact and hashable.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def bit(index: int) -> int:
    """Return the bitmask containing exactly table ``index``."""
    return 1 << index


def mask_of(indices: Iterable[int]) -> int:
    """Return the bitmask containing every table index in ``indices``."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def popcount(mask: int) -> int:
    """Return the number of tables in the set ``mask``."""
    return mask.bit_count()


def bits(mask: int) -> Iterator[int]:
    """Yield the table indices contained in ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def lowest_bit_index(mask: int) -> int:
    """Return the smallest table index in ``mask``.

    Raises ``ValueError`` for the empty set, mirroring ``min([])``.
    """
    if mask == 0:
        raise ValueError("empty table set has no lowest bit")
    return (mask & -mask).bit_length() - 1


def iter_subsets(mask: int) -> Iterator[int]:
    """Yield every subset of ``mask`` including the empty set and ``mask``.

    Uses the standard ``sub = (sub - 1) & mask`` enumeration which visits each
    of the ``2**popcount(mask)`` subsets exactly once.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_proper_nonempty_subsets(mask: int) -> Iterator[int]:
    """Yield every subset of ``mask`` except the empty set and ``mask`` itself.

    These are exactly the candidate left operands when splitting a join
    result ``mask`` into two non-empty operands.
    """
    sub = (mask - 1) & mask
    while sub:
        yield sub
        sub = (sub - 1) & mask
