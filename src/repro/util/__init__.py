"""Small shared utilities (bitmask table sets, deterministic RNG helpers)."""

from repro.util.bitset import (
    bit,
    bits,
    iter_subsets,
    iter_proper_nonempty_subsets,
    lowest_bit_index,
    mask_of,
    popcount,
)

__all__ = [
    "bit",
    "bits",
    "iter_subsets",
    "iter_proper_nonempty_subsets",
    "lowest_bit_index",
    "mask_of",
    "popcount",
]
