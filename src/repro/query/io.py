"""JSON (de)serialization for queries and plan explain output.

Lets users define queries in files and drive the optimizer from the command
line (``python -m repro optimize query.json``), and makes optimizer output
machine-readable.  The schema is deliberately plain:

.. code-block:: json

    {
      "name": "sales-star",
      "tables": [
        {"name": "sales", "cardinality": 80000,
         "columns": [{"name": "fk0", "domain_size": 10000}]}
      ],
      "predicates": [
        {"left_table": 0, "left_column": "fk0",
         "right_table": 1, "right_column": "id", "selectivity": 0.0001}
      ]
    }

``selectivity`` may be omitted, in which case it defaults to the Steinbrunn
estimate ``1 / max(domain sizes)``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.predicates import JoinPredicate, equi_join_selectivity
from repro.query.query import Query
from repro.query.schema import Catalog, Column, Table


def _table_to_dict(table: Table) -> dict[str, Any]:
    record: dict[str, Any] = {
        "name": table.name,
        "cardinality": table.cardinality,
        "row_bytes": table.row_bytes,
        "columns": [
            {"name": column.name, "domain_size": column.domain_size}
            for column in table.columns
        ],
    }
    # Physical clustering changes which leaf orders the optimizer sees, so
    # dropping it would silently change plans (and fingerprints) for any
    # query crossing the wire.  Omitted entirely for unclustered tables to
    # keep hand-written query files plain.
    if table.clustered_on is not None:
        record["clustered_on"] = table.clustered_on
    return record


def query_to_dict(query: Query) -> dict[str, Any]:
    """Plain-JSON representation of a query."""
    return {
        "name": query.name,
        "tables": [_table_to_dict(table) for table in query.tables],
        "predicates": [
            {
                "left_table": predicate.left_table,
                "left_column": predicate.left_column,
                "right_table": predicate.right_table,
                "right_column": predicate.right_column,
                "selectivity": predicate.selectivity,
            }
            for predicate in query.predicates
        ],
    }


def query_from_dict(data: dict[str, Any]) -> Query:
    """Build a query from its JSON representation.

    Raises ``ValueError`` with a readable message on malformed input.
    """
    try:
        tables = tuple(_table_from_dict(raw) for raw in data["tables"])
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed table definition: {exc}") from exc
    predicates = []
    for raw in data.get("predicates", ()):
        try:
            left_table = int(raw["left_table"])
            right_table = int(raw["right_table"])
            left_column = raw["left_column"]
            right_column = raw["right_column"]
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed predicate definition: {exc}") from exc
        selectivity = raw.get("selectivity")
        if selectivity is None:
            selectivity = equi_join_selectivity(
                tables[left_table].column(left_column),
                tables[right_table].column(right_column),
            )
        predicates.append(
            JoinPredicate(
                left_table=left_table,
                left_column=left_column,
                right_table=right_table,
                right_column=right_column,
                selectivity=float(selectivity),
            )
        )
    return Query(
        tables=tables,
        predicates=tuple(predicates),
        name=data.get("name", "query"),
    )


def save_query(query: Query, path: str | Path) -> None:
    """Write a query to a JSON file."""
    Path(path).write_text(json.dumps(query_to_dict(query), indent=2) + "\n")


def load_query(path: str | Path) -> Query:
    """Read a query from a JSON file."""
    return query_from_dict(json.loads(Path(path).read_text()))


def _table_from_dict(raw: dict[str, Any]) -> Table:
    try:
        return Table(
            name=raw["name"],
            cardinality=int(raw["cardinality"]),
            row_bytes=int(raw.get("row_bytes", 64)),
            columns=tuple(
                Column(name=col["name"], domain_size=int(col["domain_size"]))
                for col in raw.get("columns", ())
            ),
            clustered_on=raw.get("clustered_on"),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed table definition: {exc}") from exc


def catalog_to_dict(catalog: Catalog) -> dict[str, Any]:
    """Plain-JSON representation of a catalog (for the SQL frontend)."""
    return {"tables": [_table_to_dict(table) for table in catalog.tables.values()]}


def catalog_from_dict(data: dict[str, Any]) -> Catalog:
    """Build a catalog from its JSON representation."""
    catalog = Catalog()
    for raw in data.get("tables", ()):
        catalog.add(_table_from_dict(raw))
    return catalog


def save_catalog(catalog: Catalog, path: str | Path) -> None:
    """Write a catalog to a JSON file."""
    Path(path).write_text(json.dumps(catalog_to_dict(catalog), indent=2) + "\n")


def load_catalog(path: str | Path) -> Catalog:
    """Read a catalog from a JSON file."""
    return catalog_from_dict(json.loads(Path(path).read_text()))


def plan_to_dict(plan: Plan, table_names: tuple[str, ...] | None = None) -> dict[str, Any]:
    """Plain-JSON representation of a plan tree (for EXPLAIN-style output)."""
    common = {
        "rows": plan.rows,
        "cost": list(plan.cost),
        "order": str(plan.order) if plan.order else None,
    }
    if isinstance(plan, ScanPlan):
        name = table_names[plan.table] if table_names else f"T{plan.table}"
        return {
            "operator": "scan",
            "algorithm": plan.algorithm.value,
            "table": name,
            **common,
        }
    assert isinstance(plan, JoinPlan)
    return {
        "operator": "join",
        "algorithm": plan.algorithm.value,
        **common,
        "outer": plan_to_dict(plan.left, table_names),
        "inner": plan_to_dict(plan.right, table_names),
    }
