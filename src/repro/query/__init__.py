"""Relational query model: schema, predicates, queries, workload generation."""

from repro.query.schema import Catalog, Column, Table
from repro.query.predicates import JoinPredicate, equi_join_selectivity
from repro.query.query import JoinGraphKind, Query
from repro.query.generator import (
    SteinbrunnGenerator,
    make_chain_query,
    make_clique_query,
    make_cycle_query,
    make_star_query,
)

__all__ = [
    "Catalog",
    "Column",
    "Table",
    "JoinPredicate",
    "equi_join_selectivity",
    "JoinGraphKind",
    "Query",
    "SteinbrunnGenerator",
    "make_chain_query",
    "make_clique_query",
    "make_cycle_query",
    "make_star_query",
]
