"""Random workload generation after Steinbrunn et al. (VLDBJ 1997).

The paper benchmarks on randomly generated queries: "We choose table
cardinalities and attribute domain sizes by the method introduced by
Steinbrunn et al. which is commonly used for query optimization benchmarks"
and "We generate queries with equality predicates and star-shaped join graphs
(unless noted otherwise)".

This module reproduces that method:

* relation cardinalities are drawn uniformly from ``{10, ..., 100_000}``;
* attribute domain sizes are drawn from a small set of ranges so that join
  selectivities span several orders of magnitude;
* join graphs can be chains, stars, cycles, or cliques (Figure 3 compares
  chain/star/cycle and finds the impact negligible because cross products
  are permitted).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.query.predicates import JoinPredicate, equi_join_selectivity
from repro.query.query import JoinGraphKind, Query
from repro.query.schema import Column, Table

#: Cardinality range used by Steinbrunn et al. for base relations.
CARDINALITY_RANGE = (10, 100_000)

#: Domain-size ranges; one is picked per attribute, then a size within it.
#: Mixing ranges produces the wide selectivity spread of the original method.
DOMAIN_SIZE_RANGES = ((2, 10), (10, 100), (100, 500), (500, 1_000))


def _edges_for(kind: JoinGraphKind, n_tables: int) -> list[tuple[int, int]]:
    """Unordered join-graph edges (as ordered pairs a < b) for a topology."""
    if n_tables < 1:
        raise ValueError("need at least one table")
    if kind is JoinGraphKind.CHAIN:
        return [(i, i + 1) for i in range(n_tables - 1)]
    if kind is JoinGraphKind.STAR:
        return [(0, i) for i in range(1, n_tables)]
    if kind is JoinGraphKind.CYCLE:
        edges = [(i, i + 1) for i in range(n_tables - 1)]
        if n_tables > 2:
            edges.append((0, n_tables - 1))
        return edges
    if kind is JoinGraphKind.CLIQUE:
        return [(i, j) for i in range(n_tables) for j in range(i + 1, n_tables)]
    raise ValueError(f"unsupported join graph kind: {kind!r}")


class SteinbrunnGenerator:
    """Deterministic (seeded) random query generator.

    Each generated query is self-contained: fresh tables with random
    statistics and predicates carrying precomputed selectivities.  The same
    seed always yields the same workload, which keeps experiments and tests
    reproducible.
    """

    def __init__(self, seed: int = 0, clustered_tables: bool = False) -> None:
        self._rng = random.Random(seed)
        self._query_counter = 0
        self._clustered_tables = clustered_tables

    def table(self, name: str, n_columns: int = 2) -> Table:
        """Generate one table with random cardinality and column domains.

        With ``clustered_tables`` the table is clustered on its first
        column, enabling sorted (clustered-index) scans when the optimizer
        tracks interesting orders.
        """
        cardinality = self._rng.randint(*CARDINALITY_RANGE)
        columns = tuple(
            Column(name=f"c{i}", domain_size=self._domain_size())
            for i in range(n_columns)
        )
        clustered_on = columns[0].name if self._clustered_tables else None
        return Table(
            name=name,
            cardinality=cardinality,
            columns=columns,
            clustered_on=clustered_on,
        )

    def query(
        self,
        n_tables: int,
        kind: JoinGraphKind = JoinGraphKind.STAR,
        name: str | None = None,
    ) -> Query:
        """Generate a random query with the requested join-graph topology."""
        edges = _edges_for(kind, n_tables)
        n_columns = max(2, self._max_degree(edges, n_tables))
        tables = tuple(self.table(f"T{i}", n_columns=n_columns) for i in range(n_tables))
        predicates = self._predicates_for(tables, edges)
        self._query_counter += 1
        query_name = name or f"{kind.value}-{n_tables}-{self._query_counter}"
        return Query(tables=tables, predicates=tuple(predicates), name=query_name)

    def queries(
        self,
        count: int,
        n_tables: int,
        kind: JoinGraphKind = JoinGraphKind.STAR,
    ) -> list[Query]:
        """Generate ``count`` independent random queries (paper: 20 per point)."""
        return [self.query(n_tables, kind) for _ in range(count)]

    def _domain_size(self) -> int:
        low, high = self._rng.choice(DOMAIN_SIZE_RANGES)
        return self._rng.randint(low, high)

    @staticmethod
    def _max_degree(edges: Sequence[tuple[int, int]], n_tables: int) -> int:
        degree = [0] * n_tables
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        return max(degree, default=1)

    def _predicates_for(
        self, tables: Sequence[Table], edges: Sequence[tuple[int, int]]
    ) -> list[JoinPredicate]:
        """One equality predicate per join-graph edge, distinct columns per side."""
        next_column = [0] * len(tables)
        predicates = []
        for a, b in edges:
            col_a = tables[a].columns[next_column[a] % len(tables[a].columns)]
            col_b = tables[b].columns[next_column[b] % len(tables[b].columns)]
            next_column[a] += 1
            next_column[b] += 1
            predicates.append(
                JoinPredicate(
                    left_table=a,
                    left_column=col_a.name,
                    right_table=b,
                    right_column=col_b.name,
                    selectivity=equi_join_selectivity(col_a, col_b),
                )
            )
        return predicates


def make_star_query(n_tables: int, seed: int = 0) -> Query:
    """Convenience: one random star-shaped query (the paper's default)."""
    return SteinbrunnGenerator(seed).query(n_tables, JoinGraphKind.STAR)


def make_chain_query(n_tables: int, seed: int = 0) -> Query:
    """Convenience: one random chain-shaped query."""
    return SteinbrunnGenerator(seed).query(n_tables, JoinGraphKind.CHAIN)


def make_cycle_query(n_tables: int, seed: int = 0) -> Query:
    """Convenience: one random cycle-shaped query."""
    return SteinbrunnGenerator(seed).query(n_tables, JoinGraphKind.CYCLE)


def make_clique_query(n_tables: int, seed: int = 0) -> Query:
    """Convenience: one random clique-shaped query."""
    return SteinbrunnGenerator(seed).query(n_tables, JoinGraphKind.CLIQUE)
