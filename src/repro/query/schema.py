"""Schema objects: columns, tables, and the catalog.

The paper's evaluation generates synthetic catalogs "by the method introduced
by Steinbrunn et al." (VLDBJ 1997): every relation has a cardinality and every
attribute a domain size; the selectivity of an equality join predicate between
two attributes is ``1 / max(domain sizes)``.  These classes hold exactly that
metadata — they are statistics carriers, no tuples are ever materialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Column:
    """An attribute of a table.

    ``domain_size`` is the number of distinct values the attribute can take;
    it drives equi-join selectivity estimation.
    """

    name: str
    domain_size: int

    def __post_init__(self) -> None:
        if self.domain_size < 1:
            raise ValueError(f"domain_size must be >= 1, got {self.domain_size}")


@dataclass(frozen=True)
class Table:
    """A base relation with cardinality statistics.

    ``columns`` maps column name to :class:`Column`.  ``row_bytes`` is the
    width of one tuple and feeds the network/serialization byte model.
    ``clustered_on`` optionally names the column the table is physically
    ordered by: a clustered-index scan then delivers tuples sorted on it,
    giving the optimizer an interesting order at the leaves.
    """

    name: str
    cardinality: int
    columns: tuple[Column, ...] = ()
    row_bytes: int = 64
    clustered_on: str | None = None

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise ValueError(f"cardinality must be >= 0, got {self.cardinality}")
        if self.row_bytes <= 0:
            raise ValueError(f"row_bytes must be > 0, got {self.row_bytes}")
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in table {self.name!r}")
        if self.clustered_on is not None and self.clustered_on not in names:
            raise ValueError(
                f"table {self.name!r} is clustered on unknown column "
                f"{self.clustered_on!r}"
            )

    def column(self, name: str) -> Column:
        """Return the column called ``name`` or raise ``KeyError``."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Return whether this table has a column called ``name``."""
        return any(column.name == name for column in self.columns)


@dataclass
class Catalog:
    """A collection of tables addressable by name.

    The catalog is what a production optimizer would read from the system
    tables; here it is the container from which queries are assembled.
    """

    tables: dict[str, Table] = field(default_factory=dict)

    def add(self, table: Table) -> Table:
        """Register ``table``; raises ``ValueError`` on duplicate names."""
        if table.name in self.tables:
            raise ValueError(f"table {table.name!r} already in catalog")
        self.tables[table.name] = table
        return table

    def get(self, name: str) -> Table:
        """Return the table called ``name`` or raise ``KeyError``."""
        if name not in self.tables:
            raise KeyError(f"catalog has no table {name!r}")
        return self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __len__(self) -> int:
        return len(self.tables)
