"""Join predicates and selectivity estimation.

Queries are SPJ with equality join predicates (as in the paper's evaluation).
Each predicate connects a column of one query table to a column of another
and carries a selectivity estimate.  Selectivities are attached to the
predicate at construction time so that worker nodes receive self-contained
query objects and never need catalog access during optimization — exactly the
"master sends query-specific statistics with the query" mode of Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.schema import Column


def equi_join_selectivity(left: Column, right: Column) -> float:
    """Steinbrunn et al. selectivity of ``left = right``: 1 / max domain size."""
    return 1.0 / max(left.domain_size, right.domain_size)


@dataclass(frozen=True)
class JoinPredicate:
    """An equality predicate ``T_left.left_column = T_right.right_column``.

    ``left_table`` and ``right_table`` are *query table numbers* (positions in
    the query's table tuple), not catalog names: constraints, partitions, and
    plans all speak in table numbers.
    """

    left_table: int
    left_column: str
    right_table: int
    right_column: str
    selectivity: float

    def __post_init__(self) -> None:
        if self.left_table == self.right_table:
            raise ValueError("join predicate must connect two distinct tables")
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {self.selectivity}")

    @property
    def table_pair(self) -> frozenset[int]:
        """The unordered pair of table numbers this predicate connects."""
        return frozenset((self.left_table, self.right_table))

    def connects(self, left_mask: int, right_mask: int) -> bool:
        """Return whether this predicate joins the two (disjoint) table sets.

        True iff one endpoint table lies in ``left_mask`` and the other in
        ``right_mask`` — the condition under which hash and sort-merge joins
        become applicable for the corresponding join.
        """
        left_bit = 1 << self.left_table
        right_bit = 1 << self.right_table
        straddles = bool(left_mask & left_bit) and bool(right_mask & right_bit)
        straddles_flipped = bool(left_mask & right_bit) and bool(right_mask & left_bit)
        return straddles or straddles_flipped

    def applies_within(self, mask: int) -> bool:
        """Return whether both endpoint tables are contained in ``mask``."""
        pair = (1 << self.left_table) | (1 << self.right_table)
        return mask & pair == pair
