"""A small SQL frontend: SELECT–FROM–WHERE join queries over a catalog.

Parses the SPJ fragment the paper's problem model covers::

    SELECT * FROM lineitem l, orders o, customer c
    WHERE l.okey = o.okey AND o.ckey = c.ckey

Supported: a star select list, comma-separated FROM items with optional
aliases, and a conjunction of equality join predicates between attributes of
two different tables.  Anything else raises :class:`SqlError` with the
offending position — this is a query-optimizer front door, not a full SQL
implementation (selections/aggregates would be handled before/after join
ordering in a real system, as the paper notes in Section 4.1).

Selectivities default to the Steinbrunn estimate from the catalog's domain
sizes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.query.predicates import JoinPredicate, equi_join_selectivity
from repro.query.query import Query
from repro.query.schema import Catalog
from repro.util import bitset as _bitset  # noqa: F401 (documentation link)


class SqlError(ValueError):
    """Raised for queries outside the supported SPJ fragment."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<star>\*)
  | (?P<dot>\.)
  | (?P<comma>,)
  | (?P<eq>=)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(sql: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlError(f"unexpected character {sql[position]!r} at {position}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append(_Token(kind=kind, text=match.group(), position=position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str) -> None:
        self._tokens = _tokenize(sql)
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self, expected_kind: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of query")
        if expected_kind is not None and token.kind != expected_kind:
            raise SqlError(
                f"expected {expected_kind} at position {token.position}, "
                f"found {token.text!r}"
            )
        self._index += 1
        return token

    def _keyword(self, word: str) -> None:
        token = self._next("ident")
        if token.text.upper() != word:
            raise SqlError(
                f"expected {word} at position {token.position}, found {token.text!r}"
            )

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "ident"
            and token.text.upper() == word
        )

    def parse(self) -> tuple[list[tuple[str, str]], list[tuple[str, str, str, str]]]:
        """Returns (from items as (table, alias), predicates as column refs)."""
        self._keyword("SELECT")
        self._next("star")
        self._keyword("FROM")
        from_items = [self._from_item()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._next("comma")
            from_items.append(self._from_item())
        predicates: list[tuple[str, str, str, str]] = []
        if self._peek() is not None:
            self._keyword("WHERE")
            predicates.append(self._predicate())
            while self._at_keyword("AND"):
                self._keyword("AND")
                predicates.append(self._predicate())
        trailing = self._peek()
        if trailing is not None:
            raise SqlError(
                f"unsupported syntax at position {trailing.position}: "
                f"{trailing.text!r}"
            )
        return from_items, predicates

    def _from_item(self) -> tuple[str, str]:
        table = self._next("ident").text
        token = self._peek()
        if token is not None and token.kind == "ident" and token.text.upper() not in (
            "WHERE",
        ):
            alias = self._next("ident").text
            return table, alias
        return table, table

    def _column_ref(self) -> tuple[str, str]:
        alias = self._next("ident").text
        self._next("dot")
        column = self._next("ident").text
        return alias, column

    def _predicate(self) -> tuple[str, str, str, str]:
        left_alias, left_column = self._column_ref()
        self._next("eq")
        right_alias, right_column = self._column_ref()
        return left_alias, left_column, right_alias, right_column


def parse_sql(sql: str, catalog: Catalog) -> Query:
    """Parse an SPJ join query against ``catalog`` into a :class:`Query`.

    Table numbering follows FROM-clause order (the shared numbering the
    partitioning constraints rely on).
    """
    from_items, raw_predicates = _Parser(sql).parse()
    alias_to_number: dict[str, int] = {}
    tables = []
    for number, (table_name, alias) in enumerate(from_items):
        if table_name not in catalog:
            raise SqlError(f"unknown table {table_name!r}")
        if alias in alias_to_number:
            raise SqlError(f"duplicate table alias {alias!r}")
        alias_to_number[alias] = number
        tables.append(catalog.get(table_name))

    predicates = []
    for left_alias, left_column, right_alias, right_column in raw_predicates:
        for alias in (left_alias, right_alias):
            if alias not in alias_to_number:
                raise SqlError(f"unknown table alias {alias!r}")
        left_table = alias_to_number[left_alias]
        right_table = alias_to_number[right_alias]
        if left_table == right_table:
            raise SqlError(
                f"predicate {left_alias}.{left_column} = "
                f"{right_alias}.{right_column} does not join two tables"
            )
        for table_number, column in (
            (left_table, left_column),
            (right_table, right_column),
        ):
            if not tables[table_number].has_column(column):
                raise SqlError(
                    f"table {tables[table_number].name!r} has no column "
                    f"{column!r}"
                )
        selectivity = equi_join_selectivity(
            tables[left_table].column(left_column),
            tables[right_table].column(right_column),
        )
        predicates.append(
            JoinPredicate(
                left_table=left_table,
                left_column=left_column,
                right_table=right_table,
                right_column=right_column,
                selectivity=selectivity,
            )
        )
    return Query(
        tables=tuple(tables),
        predicates=tuple(predicates),
        name="sql-query",
    )
