"""The query object: a numbered set of tables plus join predicates.

Following the paper's problem model (Section 3), a query is a set ``Q`` of
tables to be joined.  Tables are numbered consecutively from ``0`` to
``|Q| - 1``; the numbering is shared by master and workers and anchors the
partitioning constraints (``Q_x`` in the paper is ``query.tables[x]`` here).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.query.predicates import JoinPredicate
from repro.query.schema import Table
from repro.util.bitset import bits


class JoinGraphKind(enum.Enum):
    """Join graph topologies used in the paper's evaluation (Figure 3)."""

    CHAIN = "chain"
    STAR = "star"
    CYCLE = "cycle"
    CLIQUE = "clique"


@dataclass(frozen=True)
class Query:
    """An SPJ join query over ``n = len(tables)`` numbered tables.

    ``tables[i]`` is the paper's ``Q_i``.  ``predicates`` carry selectivities,
    so a query object is self-contained: it is the single payload the master
    ships to each worker.
    """

    tables: tuple[Table, ...]
    predicates: tuple[JoinPredicate, ...] = ()
    name: str = "query"
    _predicate_index: dict[int, tuple[JoinPredicate, ...]] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("query must contain at least one table")
        n = len(self.tables)
        for predicate in self.predicates:
            for endpoint in (predicate.left_table, predicate.right_table):
                if not 0 <= endpoint < n:
                    raise ValueError(
                        f"predicate references table {endpoint}, query has {n} tables"
                    )
        index: dict[int, list[JoinPredicate]] = {}
        for predicate in self.predicates:
            index.setdefault(predicate.left_table, []).append(predicate)
            index.setdefault(predicate.right_table, []).append(predicate)
        frozen = {table: tuple(preds) for table, preds in index.items()}
        object.__setattr__(self, "_predicate_index", frozen)

    @property
    def n_tables(self) -> int:
        """Number of tables to join (the paper's ``n = |Q|``)."""
        return len(self.tables)

    @property
    def all_tables_mask(self) -> int:
        """Bitmask containing every query table."""
        return (1 << len(self.tables)) - 1

    def table(self, number: int) -> Table:
        """Return table ``Q_number``."""
        return self.tables[number]

    def predicates_of(self, table_number: int) -> tuple[JoinPredicate, ...]:
        """All predicates with ``table_number`` as an endpoint."""
        return self._predicate_index.get(table_number, ())

    def predicates_between(self, left_mask: int, right_mask: int) -> list[JoinPredicate]:
        """Predicates connecting disjoint table sets ``left_mask``/``right_mask``.

        Empty list means the corresponding join is a Cartesian product.

        No deduplication is needed while scanning the smaller side's
        per-table predicate lists: a predicate appears in two lists only if
        both its endpoints are on the same side — in which case it does not
        connect the operands and is skipped anyway.
        """
        found = []
        smaller = left_mask if left_mask.bit_count() <= right_mask.bit_count() else right_mask
        for table_number in bits(smaller):
            for predicate in self.predicates_of(table_number):
                if predicate.connects(left_mask, right_mask):
                    found.append(predicate)
        return found

    def join_graph_edges(self) -> set[frozenset[int]]:
        """The set of unordered table-number pairs connected by a predicate."""
        return {predicate.table_pair for predicate in self.predicates}

    def is_connected(self) -> bool:
        """Whether the join graph is connected (no forced Cartesian products)."""
        n = self.n_tables
        if n == 1:
            return True
        adjacency: dict[int, set[int]] = {i: set() for i in range(n)}
        for edge in self.join_graph_edges():
            a, b = tuple(edge)
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == n

    def describe(self) -> str:
        """A short human-readable summary, useful in logs and examples."""
        edges = ", ".join(
            f"{self.tables[p.left_table].name}.{p.left_column}="
            f"{self.tables[p.right_table].name}.{p.right_column}"
            for p in self.predicates
        )
        names = ", ".join(table.name for table in self.tables)
        return f"Query({self.name}: tables=[{names}]; predicates=[{edges}])"
