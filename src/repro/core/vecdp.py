"""Vectorized array-native enumeration core — the ``vecdp`` backend.

A level-at-a-time reformulation of the worker DP where each level's state
lives in contiguous numpy ``float64``/``int64`` arrays instead of per-entry
Python objects, selected via
:attr:`repro.config.OptimizerSettings.backend`.  It searches exactly the
same plan space under exactly the same partition constraints as the
``legacy`` and ``fastdp`` cores and produces the same plans and worker
statistics; the differential-testing oracle in :mod:`repro.testing`
enforces the equivalence plan-for-plan.

Flat-array state layout (single objective):

* ``cost``   — dense ``float64[2**n]`` indexed by table-set bitmask;
  ``+inf`` means "no stored plan" (the dict-miss of the scalar cores);
* ``rows``   — estimated cardinality per stored mask, filled level by level
  from a vectorized replication of the cardinality estimator;
* ``sort_term`` — ``rows·log2(max(rows, 2))`` per stored mask, precomputed
  with ``math.log2`` (numpy's ``log2`` is *not* bit-identical to the
  scalar library's, so the only transcendental in the cost model is kept
  out of the array expressions entirely — one scalar call per stored mask,
  every per-candidate operation a pure elementwise IEEE add/mul/max);
* ``bp_left``/``bp_right``/``bp_algo`` — packed back-pointers (operand
  masks plus an index into ``ALL_JOIN_ALGORITHMS``) from which plan trees
  are materialized once, at the end.

Per level, candidate joins are generated in bulk: a ``(masks, splits, 3)``
cost cube whose row-major order replicates the scalar candidate order —
splits ascending (bit-peel order for linear, ``bushy_operands`` order for
bushy), operators in ``ALL_JOIN_ALGORITHMS`` order — with ``+inf``
placeholders for inapplicable cells.  ``argmin`` over the flattened rows
then lands on the *first* candidate achieving the minimum, which is
exactly the strict-``<`` running-minimum tie rule of the scalar cores, and
an exclusive prefix-minimum recovers ``plans_kept`` (the number of
improvements the scalar loop would have counted).

Multi-objective frontiers (α = 1 only) use the same bulk candidate
generation followed by an incremental blockwise Pareto filter.  Weak
dominance is transitive, so a candidate is rejected iff *some earlier
candidate* weakly dominates it — a property of the candidate stream alone,
independent of the evolving frontier — and the final frontier is the
accepted candidates not weakly dominated by any later accepted one, in
acceptance order.  Both conditions are whole-array broadcast comparisons
per block; the decisions, counters, and entry order match
:class:`~repro.cost.pruning.ParetoPruning` fed the same stream.  α > 1 is
*not* vectorizable this way — α-dominance is not transitive, so pruning
decisions depend on arrival order — which is why this backend declares
:class:`~repro.core.worker.Capability` ``MULTI_OBJECTIVE | BUSHY_SPACE``
and leaves ``ALPHA_APPROXIMATION``, ``INTERESTING_ORDERS``, and
``PARAMETRIC_COSTS`` honestly undeclared: ``AUTO`` routes those query
classes to fastdp.

The module self-registers with the backend registry at import with
``speed_rank`` 5 (below fastdp's 10) and ``requires=("numpy",)``: the
registration is unconditional — ``python -m repro backends`` always shows
the row — but resolution treats the backend as unavailable (with the
reason) until numpy is importable.  numpy itself is imported lazily, on
the first partition run.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from math import inf, log2

from repro.config import Backend, OptimizerSettings, PlanSpace
from repro.core.constraints import partition_constraints
from repro.core.fastdp import _adjacency_masks, _connected
from repro.core.partitioning import admissible_results_by_size
from repro.core.worker import (
    Capability,
    EnumerationBackend,
    PartitionResult,
    WorkerStats,
    _bushy_groups,
    bushy_operands,
    linear_after_masks,
    register_backend,
)
from repro.cost.costmodel import CostModel
from repro.cost.metrics import (
    BNL_BLOCK_TUPLES,
    HASH_FACTOR,
    BufferSpaceMetric,
    ExecutionTimeMetric,
    OutputRowsMetric,
)
from repro.plans.operators import ALL_JOIN_ALGORITHMS
from repro.plans.plan import JoinPlan, Plan
from repro.query.query import Query

#: The capability set this core declares: plain and exact multi-objective
#: optimization over both plan spaces.  Interesting orders, parametric
#: costs, and α-approximate pruning stay undeclared (see module docstring).
CAPABILITIES = Capability.MULTI_OBJECTIVE | Capability.BUSHY_SPACE

#: Cap on cells per single-objective candidate cube; levels whose cube
#: would exceed it are processed in row chunks (rows are independent).
_CELL_BUDGET = 1 << 22

#: Rows per block of the incremental Pareto filter (block² comparisons).
_PARETO_BLOCK = 512

_NUMPY = None


def _numpy():
    """Import numpy on first use (the registry registers without it)."""
    global _NUMPY
    if _NUMPY is None:
        import numpy

        _NUMPY = numpy
    return _NUMPY


def optimize_partition_vecdp(
    query: Query,
    partition_id: int,
    n_partitions: int,
    settings: OptimizerSettings,
) -> PartitionResult:
    """Optimize one plan-space partition with the array-native core.

    Same contract as :func:`repro.core.worker.optimize_partition`; callers
    normally go through the worker registry, which only routes settings
    covered by :data:`CAPABILITIES` here.
    """
    np = _numpy()
    started = time.perf_counter()
    n = query.n_tables
    constraints = partition_constraints(
        n, partition_id, n_partitions, settings.plan_space
    )
    stats = WorkerStats(
        partition_id=partition_id,
        n_partitions=n_partitions,
        n_constraints=len(constraints),
        backend_used=Backend.VECDP.value,
    )
    by_size = _levels(np, n, constraints, settings.plan_space, stats)

    cost_model = CostModel(query, settings)
    adjacency = _adjacency_masks(query)
    # Genuine candidate costs may overflow to +inf (the scalar cores
    # produce the same IEEE inf silently); placeholder cells add inf to
    # finite garbage.  Neither is an error worth a RuntimeWarning.
    with np.errstate(over="ignore", invalid="ignore"):
        if settings.is_multi_objective:
            plans = _run_frontier_vec(
                np, query, constraints, by_size, cost_model, adjacency, stats
            )
        else:
            plans = _run_single_vec(
                np, query, constraints, by_size, cost_model, adjacency, stats
            )
    stats.result_plans = len(plans)
    stats.wall_time_s = time.perf_counter() - started
    return PartitionResult(plans=plans, stats=stats)


# ------------------------------------------------------------ shared helpers


def _levels(np, n: int, constraints: tuple, plan_space, stats: WorkerStats):
    """Per-level admissible-mask arrays, plus ``stats.admissible_results``.

    An unconstrained partition (serial runs, partition 0 of 1) admits every
    table subset, so its levels are one bulk popcount-bucketing of
    ``arange(2**n)`` — the scalar Cartesian-product enumeration would cost
    more than the whole DP at this backend's speed.  Constrained partitions
    (already far smaller) reuse the shared scalar enumeration, so the two
    backends cannot drift on which splits a partition admits.  Mask *order*
    within a level is irrelevant to results: every level mask is costed
    independently from strictly smaller levels.
    """
    if not constraints and hasattr(np, "bitwise_count"):
        masks = np.arange(1 << n, dtype=np.int64)
        sizes = np.bitwise_count(masks)
        stats.admissible_results = (1 << n) - n - 1
        return {
            size: masks[sizes == size] for size in range(2, n + 1)
        }
    by_size = admissible_results_by_size(n, constraints, plan_space)
    stats.admissible_results = sum(len(masks) for masks in by_size.values())
    return {
        size: np.asarray(level, dtype=np.int64)
        for size, level in by_size.items()
        if level
    }


def _metric_kind(metric) -> str:
    """Dispatch tag for the vectorized cost formulas."""
    if type(metric) is ExecutionTimeMetric:
        return "time"
    if type(metric) is BufferSpaceMetric:
        return "buffer"
    if type(metric) is OutputRowsMetric:
        return "io"
    raise ValueError(
        f"vecdp has no vectorized formula for metric {metric!r}"
    )  # pragma: no cover - make_metrics only builds the three above


def _dense_rows(np, query: Query, n: int):
    """``CardinalityEstimator.rows`` for every mask of a dense 2**n state.

    Same multiplication sequence as :func:`_level_rows`, but the masks with
    a given bit (or bit pair) set form regular strided slices of the dense
    layout, so each factor is one in-place strided multiply of exactly the
    selected elements — no compares, no temporaries.  Multiplying only the
    selected elements in the same factor order keeps every element
    bit-identical to the scalar estimator's memoized value.
    """
    rows = np.ones(1 << n, dtype=np.float64)
    for number, table in enumerate(query.tables):
        view = rows.reshape(1 << (n - 1 - number), 2, 1 << number)
        view[:, 1, :] *= float(table.cardinality)
    for predicate in query.predicates:
        low = min(predicate.left_table, predicate.right_table)
        high = max(predicate.left_table, predicate.right_table)
        view = rows.reshape(
            1 << (n - 1 - high), 2, 1 << (high - 1 - low), 2, 1 << low
        )
        view[:, 1, :, 1, :] *= predicate.selectivity
    return np.maximum(rows, 1.0, out=rows)


def _level_rows(np, query: Query, masks):
    """``CardinalityEstimator.rows`` for a whole array of masks (size ≥ 2).

    Applies the exact same multiplication sequence per mask — base
    cardinalities in ascending table order, then predicate selectivities in
    query order where both endpoints are present, then the ``max(·, 1.0)``
    floor — as ``np.where`` chains, so every element is bit-identical to
    the scalar estimator's memoized value.
    """
    rows = np.ones(masks.shape[0], dtype=np.float64)
    for number, table in enumerate(query.tables):
        bit = np.int64(1 << number)
        rows = np.where(masks & bit != 0, rows * float(table.cardinality), rows)
    for predicate in query.predicates:
        pair = np.int64(
            (1 << predicate.left_table) | (1 << predicate.right_table)
        )
        rows = np.where(masks & pair == pair, rows * predicate.selectivity, rows)
    return np.maximum(rows, 1.0)


def _connected_array(np, query: Query, left, right):
    """Vectorized ``_connected``: any predicate straddling each (L, R) pair."""
    connected = np.zeros(left.shape, dtype=bool)
    for predicate in query.predicates:
        left_bit = np.int64(1 << predicate.left_table)
        right_bit = np.int64(1 << predicate.right_table)
        connected |= ((left & left_bit) != 0) & ((right & right_bit) != 0)
        connected |= ((left & right_bit) != 0) & ((right & left_bit) != 0)
    return connected


def _bushy_split_rect(np, level_masks: list[int], groups):
    """Padded ``(masks, max splits)`` operand rectangles for a bushy level.

    Row ``i`` lists the admissible ``(left, right)`` splits of
    ``level_masks[i]`` in ``bushy_operands`` order; ``real`` marks
    non-padding cells.  Padding cells carry mask 0, whose dense-state cost
    is ``+inf``, so they can never validate.
    """
    split_lists = []
    width = 1
    for mask in level_masks:
        operands = [
            left
            for left in bushy_operands(mask, groups)
            if left != 0 and left != mask
        ]
        split_lists.append(operands)
        if len(operands) > width:
            width = len(operands)
    left = np.zeros((len(level_masks), width), dtype=np.int64)
    real = np.zeros(left.shape, dtype=bool)
    for index, operands in enumerate(split_lists):
        if operands:
            left[index, : len(operands)] = operands
            real[index, : len(operands)] = True
    masks = np.asarray(level_masks, dtype=np.int64)
    right = np.where(real, masks[:, None] ^ left, 0)
    return left, right, real


# --------------------------------------------------------------------- single


def _run_single_vec(
    np,
    query: Query,
    constraints: tuple,
    by_size: dict[int, list[int]],
    cost_model: CostModel,
    adjacency: list[int],
    stats: WorkerStats,
) -> list[Plan]:
    """Single-objective DP on dense per-mask arrays.

    Per level the candidate cube's flattened row order replicates the
    scalar generation order, so first-occurrence ``argmin`` reproduces the
    strict-``<`` running-minimum tie rule and the exclusive prefix-minimum
    reproduces the improvement count (``plans_kept``) exactly.
    """
    n = query.n_tables
    settings = cost_model.settings
    kind = _metric_kind(cost_model.metrics[0])
    algos_all = settings.use_all_join_algorithms
    state = 1 << n
    cost = np.full(state, inf, dtype=np.float64)
    bp_left = np.zeros(state, dtype=np.int64)
    bp_right = np.zeros(state, dtype=np.int64)
    bp_algo = np.full(state, -1, dtype=np.int8)

    # An unconstrained partition admits every mask, so cardinalities (and
    # the sort terms derived from them) can be prefilled for the whole
    # dense state in one shot; constrained partitions fill them level by
    # level as entries are stored.  Values for masks that never store an
    # entry are dead — every read is gated on a finite stored cost.
    prefill = not constraints and hasattr(np, "bitwise_count")
    if prefill:
        rows = _dense_rows(np, query, n)
    else:
        rows = np.zeros(state, dtype=np.float64)
    if prefill and kind == "time":
        # The only transcendental: one scalar math.log2 per mask (numpy's
        # log2 is not bit-identical to the scalar library's), then one
        # vectorized multiply of the exact operand pairs the scalar cores
        # multiply.  max(rows, 2.0) is the scalar clamp, applied in bulk.
        sort_term = rows * np.fromiter(
            map(log2, np.maximum(rows, 2.0).tolist()),
            dtype=np.float64,
            count=state,
        )
    else:
        sort_term = np.zeros(state, dtype=np.float64)

    scans: dict[int, Plan] = {}
    for table_number in range(n):
        scan = cost_model.scan_plans(table_number)[0]
        mask = 1 << table_number
        scans[mask] = scan
        cost[mask] = scan.cost[0]
        rows[mask] = scan.rows
        sort_term[mask] = scan.rows * log2(
            scan.rows if scan.rows > 2.0 else 2.0
        )

    splits = considered = kept = 0
    stored = n
    linear = settings.plan_space is PlanSpace.LINEAR
    if linear:
        after = np.asarray(
            linear_after_masks(n, constraints), dtype=np.int64
        )
        bit_values = np.int64(1) << np.arange(n, dtype=np.int64)
        # Singleton state never changes after init; in the linear space the
        # right operand is always a singleton, so its cost/rows/sort-term
        # columns are n-vectors broadcast over every level.  The dense
        # ``cost``/``rows``/``sort_term`` arrays double as lookups keyed by
        # singleton *mask*; adjacency gets the same dense keying for the
        # compact path, whose rectangles hold bit values, not bit numbers.
        scan_cost_v = cost[bit_values]
        scan_rows_v = rows[bit_values]
        scan_sort_v = sort_term[bit_values]
        adjacency_by_mask = np.zeros(state, dtype=np.int64)
        adjacency_by_mask[bit_values] = np.asarray(adjacency, dtype=np.int64)
    else:
        groups = _bushy_groups(n, constraints)
    adjacency_arr = np.asarray(adjacency, dtype=np.int64)
    # True while every admissible mask so far stored an entry — the normal
    # case, since the always-applicable BNL candidate only fails by
    # overflowing to +inf.  Lets the compact path skip validity scans.
    all_stored = True

    for size in range(2, n + 1):
        masks = by_size.get(size)
        if masks is None or masks.shape[0] == 0:
            continue
        level_entries = 0
        level_est = None if prefill else _level_rows(np, query, masks)
        compact = linear and prefill
        if compact:
            # Unconstrained linear level: every mask admits exactly `size`
            # splits, so the candidate table is a dense (masks, size)
            # rectangle of each mask's set bits in ascending order — the
            # scalar bit-peel order — with no padding cells at all.
            bit_rect = np.empty((masks.shape[0], size), dtype=np.int64)
            remaining = masks.copy()
            for column in range(size):
                low = remaining & -remaining
                bit_rect[:, column] = low
                remaining ^= low
            left_all = masks[:, None] ^ bit_rect
            usable_all = None
        elif linear:
            left_all = masks[:, None] ^ bit_values[None, :]
            usable_all = ((masks[:, None] & bit_values[None, :]) != 0) & (
                (after[None, :] & masks[:, None]) == 0
            )
        else:
            left_all, right_all, usable_all = _bushy_split_rect(
                np, masks.tolist(), groups
            )
        width = left_all.shape[1]
        chunk = max(1, _CELL_BUDGET // (3 * width))
        for start in range(0, masks.shape[0], chunk):
            stop = start + chunk
            left = left_all[start:stop]
            left_cost = cost[left]
            if compact:
                right = None
                rbits = bit_rect[start:stop]
                right_cost = cost[rbits]
                right_rows = rows[rbits]
                adjacency_cols = adjacency_by_mask[rbits]
                # Every admissible mask normally stores an entry (the BNL
                # candidate is always applicable), so validity gating is
                # skipped until a level fails to — only possible when every
                # candidate cost overflows to +inf.
                valid = None if all_stored else (left_cost < inf)
            elif linear:
                right = None
                right_cost = scan_cost_v
                right_rows = scan_rows_v
                adjacency_cols = adjacency_arr[None, :]
                valid = usable_all[start:stop] & (left_cost < inf)
            else:
                right = right_all[start:stop]
                right_cost = cost[right]
                right_rows = rows[right]
                valid = (
                    usable_all[start:stop]
                    & (left_cost < inf)
                    & (right_cost < inf)
                )
            if algos_all:
                # For "io" the equi-join candidates can never win (below),
                # but they still count toward plans_considered.
                if linear:
                    equi = (adjacency_cols & left) != 0
                else:
                    equi = _connected_array(np, query, left, right)
                if valid is not None:
                    equi &= valid
                equi_total = int(equi.sum())
            else:
                equi_total = 0
            valid_total = left.size if valid is None else int(valid.sum())
            splits += valid_total
            considered += valid_total + 2 * equi_total

            left_rows = rows[left]
            if kind == "time":
                base = left_cost + right_cost
                c_bnl = base + left_rows * right_rows
                if equi_total:
                    c_hash = base + HASH_FACTOR * (left_rows + right_rows)
                    operator = left_rows + right_rows
                    operator = operator + sort_term[left]
                    if compact:
                        operator = operator + sort_term[rbits]
                    elif linear:
                        operator = operator + scan_sort_v
                    else:
                        operator = operator + sort_term[right]
                    c_sm = base + operator
            elif kind == "buffer":
                pair = np.maximum(left_cost, right_cost)
                c_bnl = np.maximum(pair, BNL_BLOCK_TUPLES)
                if equi_total:
                    c_hash = np.maximum(pair, right_rows)
                    c_sm = np.maximum(
                        pair, np.maximum(left_rows + right_rows, 1.0)
                    )
            else:  # io: all three operators cost the same, so the hash
                # and sort-merge candidates can never strictly improve on
                # the block-nested-loop one generated just before them —
                # they contribute to plans_considered (above) only.
                if prefill:
                    est_col = rows[masks[start:stop]][:, None]
                else:
                    est_col = level_est[start:stop][:, None]
                c_bnl = (left_cost + right_cost) + est_col

            if valid is not None and valid_total != valid.size:
                np.copyto(c_bnl, inf, where=~valid)
            if kind != "io" and equi_total:
                not_equi = ~equi
                np.copyto(c_hash, inf, where=not_equi)
                np.copyto(c_sm, inf, where=not_equi)
                # Interleaved candidate order per mask is (split: bnl,
                # hash, sm) — fold the three columns into a per-split
                # minimum, prefix-scan that, and count strict improvements
                # of each column against its exclusive prefix (bnl sees
                # the previous splits' minimum; hash additionally sees
                # bnl; sm sees both).  Identical to the scalar running
                # minimum, in one pass per column.
                best3 = np.minimum(np.minimum(c_bnl, c_hash), c_sm)
                pm = np.minimum.accumulate(best3, axis=1)
                running = c_bnl.copy()
                np.minimum(running[:, 1:], pm[:, :-1], out=running[:, 1:])
                kept += int((c_bnl[:, 0] < inf).sum())
                kept += int((c_bnl[:, 1:] < pm[:, :-1]).sum())
                kept += int((c_hash < running).sum())
                np.minimum(running, c_hash, out=running)
                kept += int((c_sm < running).sum())
                best = pm[:, -1]
                entry_rows = np.flatnonzero(best < inf)
                if entry_rows.shape[0] == 0:
                    continue
                entry_best = best[entry_rows]
                # First split achieving the row minimum, then the first
                # algorithm within it — the scalar first-wins tie rule.
                win_split = best3[entry_rows].argmin(axis=1)
                bnl_at = c_bnl[entry_rows, win_split]
                hash_at = c_hash[entry_rows, win_split]
                win_algo = np.where(
                    bnl_at == entry_best,
                    0,
                    np.where(hash_at == entry_best, 1, 2),
                ).astype(np.int8)
            else:
                pm = np.minimum.accumulate(c_bnl, axis=1)
                kept += int((c_bnl[:, 0] < inf).sum())
                kept += int((c_bnl[:, 1:] < pm[:, :-1]).sum())
                best = pm[:, -1]
                entry_rows = np.flatnonzero(best < inf)
                if entry_rows.shape[0] == 0:
                    continue
                entry_best = best[entry_rows]
                win_split = c_bnl[entry_rows].argmin(axis=1)
                win_algo = np.zeros(entry_rows.shape[0], dtype=np.int8)

            entry_masks = masks[start:stop][entry_rows]
            cost[entry_masks] = entry_best
            bp_left[entry_masks] = left[entry_rows, win_split]
            if compact:
                bp_right[entry_masks] = bit_rect[start:stop][
                    entry_rows, win_split
                ]
            elif linear:
                bp_right[entry_masks] = bit_values[win_split]
            else:
                bp_right[entry_masks] = right[entry_rows, win_split]
            bp_algo[entry_masks] = win_algo
            stored += entry_masks.shape[0]
            level_entries += entry_masks.shape[0]
            if not prefill:
                entry_est = level_est[start:stop][entry_rows]
                rows[entry_masks] = entry_est
                if kind == "time":
                    # The only transcendental: one math.log2 per stored
                    # mask (numpy's log2 is not bit-identical to the
                    # scalar library's), then one vectorized multiply of
                    # the exact same operand pairs the scalar cores
                    # multiply.
                    sort_term[entry_masks] = entry_est * np.asarray(
                        [
                            log2(row_est) if row_est > 2.0 else 1.0
                            for row_est in entry_est.tolist()
                        ],
                        dtype=np.float64,
                    )
        if level_entries != masks.shape[0]:
            all_stored = False

    stats.splits_considered = splits
    stats.plans_considered = considered
    stats.plans_kept = kept
    stats.table_entries = stored
    stats.stored_plans = stored
    full_mask = query.all_tables_mask
    if full_mask in scans:
        return [scans[full_mask]]
    if not cost[full_mask] < inf:
        return []
    memo: dict[int, Plan] = {}
    return [
        _build_single_vec(
            full_mask, scans, cost, rows, bp_left, bp_right, bp_algo, memo
        )
    ]


def _build_single_vec(
    mask: int,
    scans: dict[int, Plan],
    cost,
    rows,
    bp_left,
    bp_right,
    bp_algo,
    memo: dict[int, Plan],
) -> Plan:
    """Materialize the stored plan for ``mask`` from the packed arrays."""
    plan = memo.get(mask)
    if plan is not None:
        return plan
    scan = scans.get(mask)
    if scan is not None:
        memo[mask] = scan
        return scan
    plan = JoinPlan(
        mask=mask,
        rows=float(rows[mask]),
        cost=(float(cost[mask]),),
        order=None,
        left=_build_single_vec(
            int(bp_left[mask]), scans, cost, rows, bp_left, bp_right,
            bp_algo, memo,
        ),
        right=_build_single_vec(
            int(bp_right[mask]), scans, cost, rows, bp_left, bp_right,
            bp_algo, memo,
        ),
        algorithm=ALL_JOIN_ALGORITHMS[int(bp_algo[mask])],
    )
    memo[mask] = plan
    return plan


# ---------------------------------------------------------------------- multi


def _pareto_order_filter(np, candidates):
    """Order-faithful weak-Pareto filter over a candidate stream.

    Returns ``(survivor costs, survivor candidate indices, accepted)``
    where *accepted* counts every candidate the sequential
    :class:`~repro.cost.pruning.ParetoPruning` (α = 1, no orders) would
    have appended — its ``plans_kept`` contribution — and the survivors
    are the final frontier in acceptance order.

    Correctness rests on transitivity of weak dominance: a candidate is
    rejected by the sequential filter iff *some earlier candidate* weakly
    dominates it (chase the dominator through evictions/rejections to a
    live entry), so acceptance is decided by blockwise broadcast
    comparisons against the running frontier plus the in-block prefix; a
    survivor is an accepted candidate no later accepted one dominates.
    """
    total, n_metrics = candidates.shape
    frontier = np.empty((0, n_metrics), dtype=np.float64)
    frontier_idx = np.empty(0, dtype=np.int64)
    accepted = 0
    for start in range(0, total, _PARETO_BLOCK):
        block = candidates[start : start + _PARETO_BLOCK]
        size = block.shape[0]
        indices = np.arange(start, start + size, dtype=np.int64)
        if frontier.shape[0]:
            dominated = (
                (frontier[:, None, :] <= block[None, :, :])
                .all(axis=2)
                .any(axis=0)
            )
        else:
            dominated = np.zeros(size, dtype=bool)
        # weak_le[j, i]: candidate j dominates candidate i (within block).
        weak_le = (block[:, None, :] <= block[None, :, :]).all(axis=2)
        earlier = np.tri(size, k=-1, dtype=bool).T  # earlier[j, i] ⇔ j < i
        dominated |= (weak_le & earlier).any(axis=0)
        keep = ~dominated
        new_costs = block[keep]
        new_idx = indices[keep]
        accepted += new_costs.shape[0]
        if not new_costs.shape[0]:
            continue
        if frontier.shape[0]:
            evicted = (
                (new_costs[:, None, :] <= frontier[None, :, :])
                .all(axis=2)
                .any(axis=0)
            )
            frontier = frontier[~evicted]
            frontier_idx = frontier_idx[~evicted]
        # Among the block's accepted rows, a later accept evicts an
        # earlier one it weakly dominates.
        new_le = (new_costs[:, None, :] <= new_costs[None, :, :]).all(axis=2)
        later = np.tri(new_costs.shape[0], k=-1, dtype=bool)  # later[k, i] ⇔ k > i
        evicted_new = (new_le & later).any(axis=0)
        frontier = np.concatenate([frontier, new_costs[~evicted_new]])
        frontier_idx = np.concatenate([frontier_idx, new_idx[~evicted_new]])
    return frontier, frontier_idx, accepted


def _run_frontier_vec(
    np,
    query: Query,
    constraints: tuple,
    by_size: dict[int, list[int]],
    cost_model: CostModel,
    adjacency: list[int],
    stats: WorkerStats,
) -> list[Plan]:
    """Exact (α = 1) Pareto-frontier DP with blockwise dominance filtering.

    Per split the operator cost is a *scalar* (it depends only on the
    operand masks' cardinalities), so each candidate block is one
    broadcast ``(left frontier) ⊕ (right frontier)`` per metric — built in
    the scalar candidate order (splits, then left index, then right index,
    then operators) so the order-faithful filter sees the same stream the
    sequential pruning would.
    """
    n = query.n_tables
    settings = cost_model.settings
    kinds = [_metric_kind(metric) for metric in cost_model.metrics]
    n_metrics = len(kinds)
    algos_all = settings.use_all_join_algorithms

    entry_costs: dict[int, object] = {}
    entry_ptrs: dict[int, list] = {}
    rows_of: dict[int, float] = {}
    for table_number in range(n):
        scan = cost_model.scan_plans(table_number)[0]
        mask = 1 << table_number
        entry_costs[mask] = np.asarray([scan.cost], dtype=np.float64)
        entry_ptrs[mask] = [scan]
        rows_of[mask] = scan.rows

    splits = considered = kept = 0
    linear = settings.plan_space is PlanSpace.LINEAR
    if linear:
        after = linear_after_masks(n, constraints)
    else:
        groups = _bushy_groups(n, constraints)

    for size in range(2, n + 1):
        level = by_size.get(size)
        if level is None or level.shape[0] == 0:
            continue
        level_est = _level_rows(np, query, level).tolist()
        for mask, out_rows in zip(level.tolist(), level_est):
            if linear:
                split_pairs = []
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    if after[low.bit_length() - 1] & mask:
                        continue
                    split_pairs.append((mask ^ low, low))
            else:
                split_pairs = [
                    (left_mask, mask ^ left_mask)
                    for left_mask in bushy_operands(mask, groups)
                    if left_mask != 0 and left_mask != mask
                ]
            blocks = []
            offsets = []
            meta = []
            total = 0
            for left_mask, right_mask in split_pairs:
                left_entry = entry_costs.get(left_mask)
                if left_entry is None:
                    continue
                right_entry = entry_costs.get(right_mask)
                if right_entry is None:
                    continue
                splits += 1
                n_left = left_entry.shape[0]
                n_right = right_entry.shape[0]
                left_rows = rows_of[left_mask]
                right_rows = rows_of[right_mask]
                equi = algos_all and _connected(
                    left_mask, right_mask, adjacency
                )
                n_algos = 3 if equi else 1
                considered += n_left * n_right * n_algos
                # Scalar operator costs, replicated operation-for-operation
                # from repro.cost.metrics (sort flags are always True
                # without order tracking).
                operators = []
                for kind in kinds:
                    if kind == "time":
                        sm = left_rows + right_rows
                        sm += left_rows * log2(
                            left_rows if left_rows > 2.0 else 2.0
                        )
                        sm += right_rows * log2(
                            right_rows if right_rows > 2.0 else 2.0
                        )
                        operators.append(
                            (
                                left_rows * right_rows,
                                HASH_FACTOR * (left_rows + right_rows),
                                sm,
                            )
                        )
                    elif kind == "buffer":
                        operators.append(
                            (
                                BNL_BLOCK_TUPLES,
                                right_rows,
                                max(left_rows + right_rows, 1.0),
                            )
                        )
                    else:  # io
                        operators.append((out_rows, out_rows, out_rows))
                cube = np.empty(
                    (n_left * n_right, n_algos, n_metrics), dtype=np.float64
                )
                for metric_index, kind in enumerate(kinds):
                    left_col = left_entry[:, None, metric_index]
                    right_col = right_entry[None, :, metric_index]
                    for algo_index in range(n_algos):
                        operator = operators[metric_index][algo_index]
                        if kind == "buffer":
                            values = np.maximum(
                                np.maximum(left_col, right_col), operator
                            )
                        else:
                            values = (left_col + right_col) + operator
                        cube[:, algo_index, metric_index] = values.reshape(-1)
                blocks.append(cube.reshape(-1, n_metrics))
                offsets.append(total)
                meta.append((left_mask, right_mask, n_right, n_algos))
                total += n_left * n_right * n_algos
            if total == 0:
                continue
            candidates = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
            frontier, frontier_idx, accepted = _pareto_order_filter(
                np, candidates
            )
            kept += accepted
            pointers = []
            for flat_index in frontier_idx.tolist():
                split_index = bisect_right(offsets, flat_index) - 1
                left_mask, right_mask, n_right, n_algos = meta[split_index]
                pair, algo_index = divmod(
                    flat_index - offsets[split_index], n_algos
                )
                left_index, right_index = divmod(pair, n_right)
                pointers.append(
                    (
                        left_mask,
                        left_index,
                        right_mask,
                        right_index,
                        ALL_JOIN_ALGORITHMS[algo_index],
                    )
                )
            entry_costs[mask] = frontier
            entry_ptrs[mask] = pointers
            rows_of[mask] = out_rows

    stats.splits_considered = splits
    stats.plans_considered = considered
    stats.plans_kept = kept
    stats.table_entries = len(entry_ptrs)
    stats.stored_plans = sum(len(ptrs) for ptrs in entry_ptrs.values())
    full_mask = query.all_tables_mask
    final = entry_ptrs.get(full_mask)
    if not final:
        return []
    memo: dict[tuple[int, int], Plan] = {}
    return [
        _build_frontier_vec(
            full_mask, index, entry_costs, entry_ptrs, rows_of, memo
        )
        for index in range(len(final))
    ]


def _build_frontier_vec(
    mask: int,
    index: int,
    entry_costs: dict[int, object],
    entry_ptrs: dict[int, list],
    rows_of: dict[int, float],
    memo: dict[tuple[int, int], Plan],
) -> Plan:
    """Materialize frontier entry ``index`` of ``mask`` from flat state."""
    key = (mask, index)
    plan = memo.get(key)
    if plan is not None:
        return plan
    pointer = entry_ptrs[mask][index]
    if isinstance(pointer, Plan):
        memo[key] = pointer
        return pointer
    left_mask, left_index, right_mask, right_index, algorithm = pointer
    plan = JoinPlan(
        mask=mask,
        rows=rows_of[mask],
        cost=tuple(float(c) for c in entry_costs[mask][index]),
        order=None,
        left=_build_frontier_vec(
            left_mask, left_index, entry_costs, entry_ptrs, rows_of, memo
        ),
        right=_build_frontier_vec(
            right_mask, right_index, entry_costs, entry_ptrs, rows_of, memo
        ),
        algorithm=algorithm,
    )
    memo[key] = plan
    return plan


# Registration is unconditional so the backends matrix always lists vecdp;
# availability (numpy importable) is checked at resolution time, and AUTO
# silently routes around the backend while it is unavailable.
register_backend(
    EnumerationBackend(
        backend=Backend.VECDP,
        capabilities=CAPABILITIES,
        speed_rank=5,
        loader=lambda: optimize_partition_vecdp,
        requires=("numpy",),
    )
)
