"""The master-side algorithm (paper Algorithm 1).

The master's job is deliberately tiny — that is the point of the paper's
coarse-grained decomposition.  Given a query and ``m`` workers it:

1. determines the usable number of partitions (largest power of two that the
   query size supports, Section 4.2);
2. dispatches ``(query, partition_id, n_partitions, settings)`` to each
   worker through a pluggable executor (serial loop, process pool, or
   simulated cluster);
3. applies ``FinalPrune`` over the returned partition-optimal plans.

Everything the master does is linear in ``m`` and in the query size
(Theorem 5); the per-partition work happens in ``repro.core.worker``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.core.constraints import usable_partitions
from repro.core.worker import PartitionResult, optimize_partition
from repro.cost.pruning import final_prune, make_pruning
from repro.plans.plan import Plan, plan_tie_key
from repro.query.query import Query


class PartitionExecutor(Protocol):
    """Anything that can run partition tasks and return their results."""

    def map_partitions(
        self, query: Query, n_partitions: int, settings: OptimizerSettings
    ) -> list[PartitionResult]:
        """Run all ``n_partitions`` worker tasks and collect their results."""
        ...  # pragma: no cover - protocol


class _InlineExecutor:
    """Default executor: run every partition sequentially in this process."""

    def map_partitions(
        self, query: Query, n_partitions: int, settings: OptimizerSettings
    ) -> list[PartitionResult]:
        return [
            optimize_partition(query, partition_id, n_partitions, settings)
            for partition_id in range(n_partitions)
        ]


@dataclass
class MasterResult:
    """Outcome of one parallel optimization: plans plus per-partition stats."""

    plans: list[Plan]
    n_partitions: int
    requested_workers: int
    partition_results: list[PartitionResult] = field(repr=False, default_factory=list)
    #: Wall-clock of the final-pruning pass on the master.
    master_prune_s: float = 0.0
    #: End-to-end wall-clock of `optimize_parallel` (executor included).
    total_wall_s: float = 0.0

    @property
    def best(self) -> Plan:
        """Cheapest plan by the first metric (the plan a DBMS would run).

        Ties are broken by the deterministic cross-backend rule of
        :func:`repro.plans.plan.plan_tie_key`, not by generation order.
        """
        if not self.plans:
            raise ValueError("optimization produced no plan")
        return min(self.plans, key=plan_tie_key)

    @property
    def backend_used(self) -> str:
        """Name of the enumeration backend that ran the partitions.

        Joins distinct names with ``+`` in the (pathological) case where
        partitions report different backends — surfacing the disagreement
        beats hiding it.  Empty when no partition results are attached
        (e.g. synthetic results in tests).
        """
        names: list[str] = []
        for result in self.partition_results:
            name = result.stats.backend_used
            if name and name not in names:
                names.append(name)
        return "+".join(names)

    @property
    def max_worker_wall_s(self) -> float:
        """Slowest partition's wall-clock ("W-Time" in the paper's figures).

        0.0 when no partition results are attached (synthetic results, a
        case ``backend_used`` supports too) rather than a ``ValueError``
        from ``max()`` of an empty sequence.
        """
        return max(
            (result.stats.wall_time_s for result in self.partition_results),
            default=0.0,
        )

    @property
    def max_worker_table_entries(self) -> int:
        """Peak memotable size over workers ("Memory (relations)").

        0 when no partition results are attached, matching
        :attr:`max_worker_wall_s`.
        """
        return max(
            (result.stats.table_entries for result in self.partition_results),
            default=0,
        )


def optimize_parallel(
    query: Query,
    n_workers: int,
    settings: OptimizerSettings = DEFAULT_SETTINGS,
    executor: PartitionExecutor | None = None,
) -> MasterResult:
    """Parallel query optimization over ``n_workers`` workers (Algorithm 1).

    If ``n_workers`` exceeds what the query supports — or is not a power of
    two — the largest usable power of two is taken, as in the paper.
    """
    started = time.perf_counter()
    n_partitions = usable_partitions(query.n_tables, n_workers, settings.plan_space)
    runner = executor if executor is not None else _InlineExecutor()
    partition_results = runner.map_partitions(query, n_partitions, settings)
    if len(partition_results) != n_partitions:
        raise RuntimeError(
            f"executor returned {len(partition_results)} results "
            f"for {n_partitions} partitions"
        )
    prune_started = time.perf_counter()
    pruning = make_pruning(settings, n_tables=query.n_tables)
    plans = final_prune(pruning, (result.plans for result in partition_results))
    finished = time.perf_counter()
    return MasterResult(
        plans=plans,
        n_partitions=n_partitions,
        requested_workers=n_workers,
        partition_results=partition_results,
        master_prune_s=finished - prune_started,
        total_wall_s=finished - started,
    )
