"""Brute-force plan enumeration — the ground truth for small queries.

Dynamic programming is only trustworthy if validated against exhaustive
search.  This module enumerates *every* plan in the linear or bushy plan
space (all join orders / tree shapes x all operator choices), costing each
through the same cost model the DP uses.  Exponential: intended for tests
with at most ~7 tables (linear) / ~5 tables (bushy).

Also provides closed-form plan-space sizes used by tests:
``n!`` left-deep join orders and ``n! * Catalan(n-1)`` ordered bushy trees.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from itertools import permutations

from repro.config import OptimizerSettings
from repro.core.constraints import Constraint
from repro.cost.costmodel import CostModel
from repro.plans.plan import Plan
from repro.query.query import Query
from repro.util.bitset import iter_proper_nonempty_subsets


def n_leftdeep_orders(n_tables: int) -> int:
    """Number of left-deep join orders (with cross products): ``n!``."""
    return math.factorial(n_tables)


def n_bushy_trees(n_tables: int) -> int:
    """Number of ordered bushy trees: ``n! * Catalan(n - 1)``.

    Counts distinct (leaf-labeled, operand-ordered) binary trees, i.e. the
    splits the bushy DP distinguishes before operator choice.
    """
    n = n_tables
    catalan = math.comb(2 * (n - 1), n - 1) // n
    return math.factorial(n) * catalan


def iter_leftdeep_plans(
    query: Query, cost_model: CostModel, order_filter: Sequence[Constraint] = ()
) -> Iterator[Plan]:
    """Yield every left-deep plan (all orders x all operator choices).

    ``order_filter`` drops join orders violating the given linear
    constraints — used to enumerate a single partition's plan space.
    """
    for order in permutations(range(query.n_tables)):
        if any(
            order.index(constraint.before) > order.index(constraint.after)
            for constraint in order_filter
        ):
            continue
        yield from _leftdeep_plans_for_order(order, cost_model)


def _leftdeep_plans_for_order(
    order: Sequence[int], cost_model: CostModel
) -> Iterator[Plan]:
    prefixes: list[Plan] = list(cost_model.scan_plans(order[0]))
    for table_number in order[1:]:
        scans = cost_model.scan_plans(table_number)
        extended: list[Plan] = []
        for prefix in prefixes:
            for scan in scans:
                for candidate in cost_model.join_candidates(prefix, scan):
                    extended.append(cost_model.build_join(prefix, scan, candidate))
        prefixes = extended
    yield from prefixes


def iter_bushy_plans(query: Query, cost_model: CostModel) -> Iterator[Plan]:
    """Yield every bushy plan for the full query (all trees x operators)."""
    yield from _bushy_plans_for_mask(query.all_tables_mask, cost_model, {})


def _bushy_plans_for_mask(
    mask: int, cost_model: CostModel, cache: dict[int, list[Plan]]
) -> list[Plan]:
    cached = cache.get(mask)
    if cached is not None:
        return cached
    if mask & (mask - 1) == 0:
        plans: list[Plan] = list(cost_model.scan_plans(mask.bit_length() - 1))
    else:
        plans = []
        for left_mask in iter_proper_nonempty_subsets(mask):
            right_mask = mask ^ left_mask
            for left in _bushy_plans_for_mask(left_mask, cost_model, cache):
                for right in _bushy_plans_for_mask(right_mask, cost_model, cache):
                    for candidate in cost_model.join_candidates(left, right):
                        plans.append(cost_model.build_join(left, right, candidate))
    cache[mask] = plans
    return plans


def min_cost_leftdeep(query: Query, settings: OptimizerSettings) -> float:
    """Minimum first-metric cost over the entire left-deep plan space."""
    cost_model = CostModel(query, settings)
    return min(plan.cost[0] for plan in iter_leftdeep_plans(query, cost_model))


def min_cost_bushy(query: Query, settings: OptimizerSettings) -> float:
    """Minimum first-metric cost over the entire bushy plan space."""
    cost_model = CostModel(query, settings)
    return min(plan.cost[0] for plan in iter_bushy_plans(query, cost_model))


def all_leftdeep_cost_vectors(
    query: Query, settings: OptimizerSettings
) -> list[tuple[float, ...]]:
    """Cost vectors of every left-deep plan (for Pareto-frontier validation)."""
    cost_model = CostModel(query, settings)
    return [plan.cost for plan in iter_leftdeep_plans(query, cost_model)]


def all_bushy_cost_vectors(
    query: Query, settings: OptimizerSettings
) -> list[tuple[float, ...]]:
    """Cost vectors of every bushy plan (for Pareto-frontier validation)."""
    cost_model = CostModel(query, settings)
    return [plan.cost for plan in iter_bushy_plans(query, cost_model)]


def count_bushy_plans_enumerated(query: Query, settings: OptimizerSettings) -> int:
    """Number of enumerated bushy plans (tree shapes x operator choices)."""
    cost_model = CostModel(query, settings)
    return sum(1 for _ in iter_bushy_plans(query, cost_model))
