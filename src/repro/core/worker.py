"""The worker-side optimizer (paper Algorithm 2 with Algorithm 5's TrySplits).

Each worker receives ``(query, partition_id, n_partitions, settings)``,
decodes its partition ID into join-order constraints, generates the
admissible join results, and runs the Selinger dynamic-programming scheme
restricted to those results.  No other input is needed — in a shared-nothing
deployment this function *is* the single task shipped to a worker node.

Two split-enumeration strategies, as in the paper:

* **linear** — enumerate every table of the join result as candidate inner
  operand and check the constraints (complexity linear in *possible* splits;
  cheap because left-deep splits are few);
* **bushy** — generate only *admissible* operand pairs in the first place via
  a per-triple Cartesian product (complexity linear in admissible splits; the
  naive enumerate-and-check alternative is benchmarked as an ablation).
"""

from __future__ import annotations

import enum
import importlib.util
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from functools import lru_cache

from repro.config import Backend, OptimizerSettings, PlanSpace
from repro.core.constraints import (
    BushyConstraint,
    Constraint,
    LinearConstraint,
    constraint_groups,
    partition_constraints,
)
from repro.core.partitioning import _constraints_by_group, admissible_results_by_size
from repro.cost.costmodel import CostModel
from repro.cost.pruning import PlanTable, PruningPolicy, make_pruning
from repro.plans.plan import Plan
from repro.query.query import Query
from repro.util.bitset import bits, iter_subsets, mask_of


@dataclass
class WorkerStats:
    """Instrumentation of one partition's optimization run.

    These counters are the raw material for the simulated-cluster timing
    model and reproduce the paper's measured quantities: ``table_entries``
    is the "Memory (relations)" axis of Figures 2/5, and the operation
    counts drive simulated worker time.
    """

    partition_id: int
    n_partitions: int
    n_constraints: int
    #: Admissible join results of cardinality >= 2 (Theorems 2/3 quantity).
    admissible_results: int = 0
    #: Operand pairs tried across all join results (Theorems 6/7 quantity).
    splits_considered: int = 0
    #: Costed join candidates (splits x operator variants x stored sub-plans).
    plans_considered: int = 0
    #: Candidates that survived pruning.
    plans_kept: int = 0
    #: Table sets with at least one stored plan (memory in "relations").
    table_entries: int = 0
    #: Total stored plans (> table_entries for orders / multi-objective).
    stored_plans: int = 0
    #: Plans returned to the master (1, or the partition's Pareto frontier).
    result_plans: int = 0
    wall_time_s: float = 0.0
    #: Name of the enumeration backend that actually ran this partition
    #: (``"legacy"``/``"fastdp"``).  Makes a routing decision observable end
    #: to end: a run that silently landed on a slower core is
    #: distinguishable from one that used the requested backend.
    backend_used: str = ""


@dataclass
class PartitionResult:
    """What a worker sends back: partition-optimal plan(s) plus statistics."""

    plans: list[Plan]
    stats: WorkerStats


# ------------------------------------------------------------------- backends


class Capability(enum.Flag):
    """Optimizer features an enumeration backend can declare support for.

    :func:`required_capabilities` derives the needed set from an
    :class:`~repro.config.OptimizerSettings`; dispatch refuses to route
    settings to a backend whose declaration does not cover them, so a core
    can never be handed a query class it would silently approximate.
    """

    #: Pareto frontiers over several cost metrics (exact, α = 1).
    MULTI_OBJECTIVE = enum.auto()
    #: Selinger interesting orders: one best plan per (table set, order).
    INTERESTING_ORDERS = enum.auto()
    #: Parametric costs: lower-envelope pruning over ``(1-θ)·a + θ·b``.
    PARAMETRIC_COSTS = enum.auto()
    #: Bushy plan spaces (admissible-split generation per Algorithm 5).
    BUSHY_SPACE = enum.auto()
    #: α-approximate Pareto pruning with α > 1.  Split out from
    #: MULTI_OBJECTIVE because α-dominance is not transitive: pruning
    #: decisions depend on candidate arrival order, which rules out the
    #: order-parallel dominance filtering a vectorized core relies on —
    #: exactly the kind of silent approximation the declaration system
    #: exists to prevent.
    ALPHA_APPROXIMATION = enum.auto()


#: Everything a backend can currently be asked to do.
ALL_CAPABILITIES = (
    Capability.MULTI_OBJECTIVE
    | Capability.INTERESTING_ORDERS
    | Capability.PARAMETRIC_COSTS
    | Capability.BUSHY_SPACE
    | Capability.ALPHA_APPROXIMATION
)


def required_capabilities(settings: OptimizerSettings) -> Capability:
    """The capability set a backend must declare to run these settings."""
    needed = Capability(0)
    if settings.is_multi_objective:
        needed |= Capability.MULTI_OBJECTIVE
        # The parametric path prunes by lower envelope and ignores alpha,
        # so the order-sensitivity of α-dominance never arises there.
        if settings.alpha != 1.0 and not settings.parametric:
            needed |= Capability.ALPHA_APPROXIMATION
    if settings.consider_orders:
        needed |= Capability.INTERESTING_ORDERS
    if settings.parametric:
        needed |= Capability.PARAMETRIC_COSTS
    if settings.plan_space is PlanSpace.BUSHY:
        needed |= Capability.BUSHY_SPACE
    return needed


@lru_cache(maxsize=None)
def _module_importable(module: str) -> bool:
    """Whether ``module`` can be imported (spec probe, no actual import)."""
    return importlib.util.find_spec(module) is not None


def _find_module(module: str) -> bool:
    """Availability probe seam: tests monkeypatch this to simulate absence."""
    return _module_importable(module)


#: A backend's entry point: same contract as :func:`optimize_partition`.
PartitionRunner = Callable[
    ["Query", int, int, OptimizerSettings], "PartitionResult"
]


@dataclass(frozen=True)
class EnumerationBackend:
    """A registered enumeration core: identity, capabilities, entry point.

    ``speed_rank`` orders backends for :attr:`~repro.config.Backend.AUTO`
    resolution — lower ranks win among the capable.  ``loader`` is called
    lazily so registering a backend does not import its (possibly heavy)
    module; the resolved runner is cached after the first call.
    """

    backend: Backend
    capabilities: Capability
    #: AUTO picks the capable backend with the smallest rank.
    speed_rank: int
    loader: Callable[[], PartitionRunner]
    #: Modules the backend needs at run time (e.g. ``("numpy",)``).
    #: Registration is unconditional — the matrix always shows the backend —
    #: but resolution treats it as unavailable while any requirement is
    #: missing, with the reason reportable instead of a silent omission.
    requires: tuple[str, ...] = ()
    _runner: list = field(default_factory=list, repr=False, compare=False)

    @property
    def name(self) -> str:
        """The backend's wire name (the :class:`Backend` enum value)."""
        return self.backend.value

    def unavailable_reason(self) -> str | None:
        """Why this backend cannot run here, or ``None`` if it can.

        Checked against the declared ``requires`` modules; the string is
        surfaced by ``python -m repro backends`` and by the error raised
        when the backend is requested explicitly.
        """
        missing = [module for module in self.requires if not _find_module(module)]
        if missing:
            return f"{', '.join(missing)} not installed"
        return None

    def available(self) -> bool:
        """Whether every required module is importable."""
        return self.unavailable_reason() is None

    def supports(self, settings: OptimizerSettings) -> bool:
        """Whether the declared capabilities cover these settings."""
        needed = required_capabilities(settings)
        return needed & self.capabilities == needed

    def missing(self, settings: OptimizerSettings) -> Capability:
        """The capabilities these settings need but this backend lacks."""
        return required_capabilities(settings) & ~self.capabilities

    def run(
        self,
        query: Query,
        partition_id: int,
        n_partitions: int,
        settings: OptimizerSettings,
    ) -> PartitionResult:
        """Run one partition on this backend (resolving the runner lazily)."""
        if not self._runner:
            self._runner.append(self.loader())
        return self._runner[0](query, partition_id, n_partitions, settings)


_BACKEND_REGISTRY: dict[Backend, EnumerationBackend] = {}

#: Bumped on every (re-)registration; memoizers keyed on settings values
#: that embed AUTO's *resolution* (the service fingerprint) include this so
#: a registry change invalidates them instead of serving stale signatures.
_REGISTRY_GENERATION = 0


def registry_generation() -> int:
    """A counter that changes whenever the backend registry changes.

    Built-in backends are import-registered first: a generation observed by
    a memoizer (e.g. the service's settings-signature cache) must describe
    the *fully initialized* registry, or a signature computed before the
    lazy built-in imports would be keyed to a generation that silently
    advances moments later — the mid-process-registration instability this
    counter exists to make observable.
    """
    _ensure_builtin_backends()
    return _REGISTRY_GENERATION


def register_backend(descriptor: EnumerationBackend) -> None:
    """Register (or replace) an enumeration backend.

    Re-registration under the same :class:`~repro.config.Backend` key
    replaces the previous descriptor — the hook tests and future backends
    use to swap in instrumented cores.
    """
    global _REGISTRY_GENERATION
    if descriptor.backend is Backend.AUTO:
        raise ValueError("AUTO is a resolution rule, not a registrable backend")
    _BACKEND_REGISTRY[descriptor.backend] = descriptor
    _REGISTRY_GENERATION += 1


def registered_backends() -> tuple[EnumerationBackend, ...]:
    """All registered backends, fastest (lowest rank) first."""
    _ensure_builtin_backends()
    return tuple(
        sorted(_BACKEND_REGISTRY.values(), key=lambda d: d.speed_rank)
    )


def capability_matrix() -> dict[str, dict[str, bool]]:
    """``{backend name: {capability name: declared}}`` — the README matrix."""
    return {
        descriptor.name: {
            capability.name.lower(): bool(capability & descriptor.capabilities)
            for capability in Capability
        }
        for descriptor in registered_backends()
    }


def _ensure_builtin_backends() -> None:
    """Import-register the built-in cores that self-register on import."""
    if Backend.FASTDP not in _BACKEND_REGISTRY:
        from repro.core import fastdp  # noqa: F401  (registers itself)
    if Backend.VECDP not in _BACKEND_REGISTRY:
        from repro.core import vecdp  # noqa: F401  (registers itself)


def resolve_backend(settings: OptimizerSettings) -> EnumerationBackend:
    """The backend that will run these settings.

    :attr:`~repro.config.Backend.AUTO` resolves to the fastest capable
    *available* registered backend (a backend whose required modules are
    missing is skipped, not an error).  An explicitly requested backend must
    declare every needed capability and be available — routing around an
    incapable or absent core silently would make a fallback
    indistinguishable from the requested run, which is exactly the failure
    mode ``WorkerStats.backend_used`` exists to rule out.
    """
    _ensure_builtin_backends()
    if settings.backend is Backend.AUTO:
        capable = [
            descriptor
            for descriptor in _BACKEND_REGISTRY.values()
            if descriptor.supports(settings) and descriptor.available()
        ]
        if not capable:
            raise ValueError(
                f"no registered backend supports "
                f"{required_capabilities(settings)!r}"
            )
        return min(capable, key=lambda descriptor: descriptor.speed_rank)
    descriptor = _BACKEND_REGISTRY.get(settings.backend)
    if descriptor is None:
        raise ValueError(f"backend {settings.backend.value!r} is not registered")
    reason = descriptor.unavailable_reason()
    if reason is not None:
        raise ValueError(
            f"backend {descriptor.name!r} is unavailable: {reason}; use "
            f"Backend.AUTO to pick an available backend"
        )
    if not descriptor.supports(settings):
        raise ValueError(
            f"backend {descriptor.name!r} does not declare "
            f"{descriptor.missing(settings)!r}; use Backend.AUTO to pick a "
            f"capable backend"
        )
    return descriptor


@dataclass
class _BushyGroup:
    """Precomputed per-group data for bushy split generation."""

    group_mask: int
    x_bit: int = 0
    yz_mask: int = 0
    constrained: bool = False


def optimize_partition(
    query: Query,
    partition_id: int,
    n_partitions: int,
    settings: OptimizerSettings,
) -> PartitionResult:
    """Find the optimal plan(s) within one plan-space partition.

    With ``n_partitions == 1`` this is exactly the classical (serial) DP —
    the baseline the paper computes speedups against.

    ``settings.backend`` selects the enumeration core from the backend
    registry (:func:`resolve_backend`): the object-based DP of this module
    (:attr:`~repro.config.Backend.LEGACY`), the flat bitset core of
    :mod:`repro.core.fastdp` (:attr:`~repro.config.Backend.FASTDP`), or —
    the default — :attr:`~repro.config.Backend.AUTO`, which picks the
    fastest backend whose declared :class:`Capability` set covers the
    settings.  All backends produce identical plans and statistics; the one
    that ran is recorded in ``stats.backend_used``.  This function is the
    single task the MPQ partition executors ship to worker processes.
    """
    descriptor = resolve_backend(settings)
    result = descriptor.run(query, partition_id, n_partitions, settings)
    # The cores stamp backend_used themselves — the stamp reports what
    # actually ran, not what the registry *meant* to run, so a descriptor
    # whose loader routes elsewhere is observable.  Only fill in the name
    # for third-party runners that left it empty.
    if not result.stats.backend_used:
        result.stats.backend_used = descriptor.name
    return result


def _optimize_partition_legacy(
    query: Query,
    partition_id: int,
    n_partitions: int,
    settings: OptimizerSettings,
) -> PartitionResult:
    """The object-based reference DP (the ``legacy`` backend's entry point)."""
    started = time.perf_counter()
    n = query.n_tables
    constraints = partition_constraints(
        n, partition_id, n_partitions, settings.plan_space
    )
    stats = WorkerStats(
        partition_id=partition_id,
        n_partitions=n_partitions,
        n_constraints=len(constraints),
        backend_used=Backend.LEGACY.value,
    )
    by_size = admissible_results_by_size(n, constraints, settings.plan_space)
    stats.admissible_results = sum(len(masks) for masks in by_size.values())

    cost_model = CostModel(query, settings)
    pruning = make_pruning(settings, n_tables=n)
    table: PlanTable = {}
    for table_number in range(n):
        for scan in cost_model.scan_plans(table_number):
            pruning.consider(table, scan.mask, scan.cost, scan.order, lambda s=scan: s)

    if settings.plan_space is PlanSpace.LINEAR:
        _run_linear(query, constraints, by_size, table, cost_model, pruning, stats)
    else:
        _run_bushy(query, constraints, by_size, table, cost_model, pruning, stats)

    stats.table_entries = len(table)
    stats.stored_plans = sum(len(entry) for entry in table.values())
    full_mask = query.all_tables_mask
    plans = list(table.get(full_mask, []))
    stats.result_plans = len(plans)
    stats.wall_time_s = time.perf_counter() - started
    return PartitionResult(plans=plans, stats=stats)


def _consider_joins(
    left_plans: list[Plan],
    right_plans: list[Plan],
    mask: int,
    table: PlanTable,
    cost_model: CostModel,
    pruning: PruningPolicy,
    stats: WorkerStats,
) -> None:
    """Cost and prune every operator variant over stored sub-plan pairs."""
    for left in left_plans:
        for right in right_plans:
            for candidate in cost_model.join_candidates(left, right):
                stats.plans_considered += 1
                kept = pruning.consider(
                    table,
                    mask,
                    candidate.cost,
                    candidate.order,
                    lambda l=left, r=right, c=candidate: cost_model.build_join(l, r, c),
                )
                if kept:
                    stats.plans_kept += 1


def linear_after_masks(
    n_tables: int, constraints: tuple[Constraint, ...]
) -> list[int]:
    """``after_masks[u]`` = tables that must be joined after ``u``.

    Table ``u`` cannot be joined last if some constraint ``u ≺ v`` has ``v``
    inside the join result; ``after_masks[u]`` collects those ``v`` bits so
    the admissibility check is one AND per candidate split.  Shared by the
    legacy linear DP below and the fastdp core, so the two backends can
    never drift on which splits a partition admits.
    """
    after_masks = [0] * n_tables
    for constraint in constraints:
        assert isinstance(constraint, LinearConstraint)
        after_masks[constraint.before] |= 1 << constraint.after
    return after_masks


def _run_linear(
    query: Query,
    constraints: tuple[Constraint, ...],
    by_size: dict[int, list[int]],
    table: PlanTable,
    cost_model: CostModel,
    pruning: PruningPolicy,
    stats: WorkerStats,
) -> None:
    """TrySplits[Linear]: every table may be inner operand unless blocked."""
    n = query.n_tables
    after_masks = linear_after_masks(n, constraints)
    for size in range(2, n + 1):
        for mask in by_size.get(size, ()):
            for inner in bits(mask):
                if after_masks[inner] & mask:
                    continue
                rest = mask ^ (1 << inner)
                left_plans = table.get(rest)
                if left_plans is None:
                    continue
                stats.splits_considered += 1
                _consider_joins(
                    left_plans,
                    table[1 << inner],
                    mask,
                    table,
                    cost_model,
                    pruning,
                    stats,
                )


def _bushy_groups(
    n_tables: int, constraints: tuple[Constraint, ...]
) -> list[_BushyGroup]:
    """Precompute group masks and constraint bit patterns for split generation."""
    groups = constraint_groups(n_tables, PlanSpace.BUSHY)
    assigned = _constraints_by_group(groups, constraints)
    prepared = []
    for group, constraint in zip(groups, assigned):
        info = _BushyGroup(group_mask=mask_of(group))
        if constraint is not None:
            assert isinstance(constraint, BushyConstraint)
            info.constrained = True
            info.x_bit = 1 << constraint.x
            info.yz_mask = (1 << constraint.y) | (1 << constraint.z)
        prepared.append(info)
    return prepared


def bushy_operands(mask: int, groups: list[_BushyGroup]) -> list[int]:
    """Admissible left operands for splitting ``mask`` (Algorithm 5, bushy).

    Generates, by per-group Cartesian product, every subset ``L`` of ``mask``
    such that both ``L`` and ``mask \\ L`` are admissible intermediate
    results.  The returned list includes the degenerate operands ``0`` and
    ``mask`` (callers skip them) — keeping them makes the product's size
    match the closed-form split counts of Theorem 7 exactly.
    """
    operands = [0]
    for group in groups:
        local = group.group_mask & mask
        if local == 0:
            continue
        subsets = list(iter_subsets(local))
        if group.constrained and mask & group.yz_mask == group.yz_mask:
            # Both y and z are in the join result; since the result is
            # admissible, x is too.  Remove operand sides violating the
            # constraint: the side containing {y, z} must also contain x.
            x_bit, yz = group.x_bit, group.yz_mask
            subsets = [
                sub
                for sub in subsets
                if not (sub & yz == yz and not sub & x_bit)
                and not (sub & yz == 0 and sub & x_bit)
            ]
        operands = [partial | sub for partial in operands for sub in subsets]
    return operands


def _run_bushy(
    query: Query,
    constraints: tuple[Constraint, ...],
    by_size: dict[int, list[int]],
    table: PlanTable,
    cost_model: CostModel,
    pruning: PruningPolicy,
    stats: WorkerStats,
) -> None:
    """TrySplits[Bushy]: generate only admissible splits, then cost them."""
    n = query.n_tables
    groups = _bushy_groups(n, constraints)
    for size in range(2, n + 1):
        for mask in by_size.get(size, ()):
            for left_mask in bushy_operands(mask, groups):
                if left_mask == 0 or left_mask == mask:
                    continue
                right_mask = mask ^ left_mask
                left_plans = table.get(left_mask)
                right_plans = table.get(right_mask)
                if left_plans is None or right_plans is None:
                    continue
                stats.splits_considered += 1
                _consider_joins(
                    left_plans, right_plans, mask, table, cost_model, pruning, stats
                )


def naive_bushy_operands(mask: int, constraints: tuple[Constraint, ...]) -> list[int]:
    """Ablation baseline: enumerate *all* splits, then filter by constraints.

    This is the strategy the paper deliberately avoids for bushy spaces
    because its complexity is linear in the number of *possible* rather than
    admissible splits.  Exposed for the split-generation ablation benchmark;
    returns the same operand set as :func:`bushy_operands` (including the
    degenerate 0/mask entries) on admissible ``mask`` values.
    """
    operands = []
    for left_mask in iter_subsets(mask):
        right_mask = mask ^ left_mask
        left_ok = not any(c.excludes(left_mask) for c in constraints)
        right_ok = not any(c.excludes(right_mask) for c in constraints)
        if left_ok and right_ok:
            operands.append(left_mask)
    return operands


# The reference core registers here; the fastdp core self-registers from
# repro.core.fastdp (imported on first resolution), declaring the same full
# capability set with a better speed rank — so AUTO resolves to fastdp for
# every settings value while LEGACY stays selectable for differential runs.
register_backend(
    EnumerationBackend(
        backend=Backend.LEGACY,
        capabilities=ALL_CAPABILITIES,
        speed_rank=100,
        loader=lambda: _optimize_partition_legacy,
    )
)
