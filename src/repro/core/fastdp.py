"""Fast DP enumeration core — the ``fastdp`` backend.

A drop-in replacement for the object-based worker DP in
:mod:`repro.core.worker`, selected via
:attr:`repro.config.OptimizerSettings.backend`.  It searches exactly the
same plan space under exactly the same partition constraints and produces
the same cost frontiers and worker statistics; the differential-testing
oracle in :mod:`repro.testing` enforces this equivalence plan-for-plan.

What makes it fast:

* **level-wise bitset enumeration** over the precomputed admissible-mask
  lists of :func:`~repro.core.partitioning.admissible_results_by_size`,
  with the inner bit loop written against raw ``int`` operations
  (``mask & -mask``, ``int.bit_count``) instead of generator helpers;
* **packed flat cost state** — per table set the DP stores plain floats
  (single objective) or tuples-plus-back-pointers (multiple objectives)
  rather than :class:`~repro.plans.plan.Plan` objects, so the inner loop
  allocates no plan nodes, no :class:`~repro.cost.costmodel.JoinCandidate`
  tuples, and no builder closures;
* **dominance pruning that short-circuits on the single-objective case** —
  a scalar ``<`` against the running minimum replaces the
  :class:`~repro.cost.pruning.PruningPolicy` dispatch, and the
  multi-objective path inlines (α-)dominance over the kept frontier;
* **an inlined kernel for the default execution-time metric** that
  reproduces :class:`~repro.cost.metrics.ExecutionTimeMetric` arithmetic
  operation-for-operation (same order of float additions), so costs are
  bit-identical to the legacy backend's.

Plan trees are materialized once, at the end, by walking back-pointers from
the full table set; every intermediate table set costs two dict stores.

Full query-class coverage (no legacy fallback):

* **interesting orders** — flat per-(table set, order) entries keyed by an
  *interned* order id (:class:`~repro.plans.orders.OrderInterner`), with
  :func:`~repro.plans.orders.order_satisfies` compiled to one indexed load
  in a precomputed boolean table; the sort keys of a split come from a
  bit-peeling replication of ``Query.predicates_between``'s scan order, so
  the chosen sort-merge key is byte-identical to the legacy backend's;
* **parametric costs** — piecewise-linear lower-envelope frontiers stored
  in the same packed (cost vector, back-pointer) lists, pruned with the
  single-objective dominance short-circuit generalized to parameter
  intervals: a kept line that bounds the candidate at both θ-endpoints
  rejects it before any envelope arithmetic runs; the exact envelope tests
  (:func:`~repro.cost.parametric.needed_on_envelope`,
  :func:`~repro.cost.parametric.envelope_filter`) are shared with the
  legacy pruning policy, so keep/evict decisions cannot drift.

Equivalence contract (checked by ``repro.testing`` and
``tests/test_fastdp.py``):

* candidates are generated in the legacy order — table sets by level, inner
  operands in ascending bit order (linear) / ``bushy_operands`` order
  (bushy), stored sub-plans in insertion order, operators in
  ``ALL_JOIN_ALGORITHMS`` order — so order-sensitive tie-breaking and
  α-pruning (α > 1) decisions match the legacy backend exactly;
* all cost arithmetic either calls the same :class:`~repro.cost.metrics`
  methods or replicates them literally;
* :class:`~repro.core.worker.WorkerStats` counters are maintained with the
  legacy semantics (a split is counted only when both operands have stored
  plans; a candidate is "kept" exactly when the legacy pruning would have
  kept it).

The module self-registers with the backend registry of
:mod:`repro.core.worker`, declaring the full capability set
(:data:`CAPABILITIES`), so :attr:`~repro.config.Backend.AUTO` resolves here
for every settings value.
"""

from __future__ import annotations

import time
from math import inf, log2

from repro.config import Backend, OptimizerSettings, PlanSpace
from repro.core.constraints import partition_constraints
from repro.core.partitioning import admissible_results_by_size
from repro.core.worker import (
    ALL_CAPABILITIES,
    EnumerationBackend,
    PartitionResult,
    WorkerStats,
    _bushy_groups,
    bushy_operands,
    linear_after_masks,
    register_backend,
)
from repro.cost.costmodel import CostModel
from repro.cost.metrics import HASH_FACTOR, ExecutionTimeMetric
from repro.cost.parametric import envelope_filter, needed_on_envelope
from repro.cost.pruning import per_level_alpha
from repro.plans.operators import ALL_JOIN_ALGORITHMS
from repro.plans.orders import UNSORTED, OrderInterner, SortOrder
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.query import Query

#: Back-pointer of a join entry: (left mask, left entry index, right mask,
#: right entry index, join algorithm).  Scan entries store the ScanPlan
#: itself.  Single-objective state drops the indices (one entry per mask).

#: The capability set this core declares to the backend registry: every
#: query class the optimizer settings can express.
CAPABILITIES = ALL_CAPABILITIES


def _adjacency_masks(query: Query) -> list[int]:
    """Per-table bitmask of join-graph neighbours.

    An equality predicate connects disjoint sets ``L``/``R`` iff some table
    of one side has a neighbour in the other — the O(1)-per-split
    replacement for building the ``predicates_between`` list when only
    operator applicability (hash / sort-merge need an equi predicate) is at
    stake.
    """
    adjacency = [0] * query.n_tables
    for predicate in query.predicates:
        adjacency[predicate.left_table] |= 1 << predicate.right_table
        adjacency[predicate.right_table] |= 1 << predicate.left_table
    return adjacency


def _connected(left_mask: int, right_mask: int, adjacency: list[int]) -> bool:
    """Whether any predicate connects the two disjoint table sets."""
    smaller, other = (
        (left_mask, right_mask)
        if left_mask.bit_count() <= right_mask.bit_count()
        else (right_mask, left_mask)
    )
    while smaller:
        low = smaller & -smaller
        smaller ^= low
        if adjacency[low.bit_length() - 1] & other:
            return True
    return False


def optimize_partition_fastdp(
    query: Query,
    partition_id: int,
    n_partitions: int,
    settings: OptimizerSettings,
) -> PartitionResult:
    """Optimize one plan-space partition with the fast enumeration core.

    Same contract as :func:`repro.core.worker.optimize_partition`; callers
    normally go through the worker, whose registry dispatches on
    ``settings.backend`` (this core declares every capability, so it is
    eligible for any settings value).
    """
    started = time.perf_counter()
    n = query.n_tables
    constraints = partition_constraints(
        n, partition_id, n_partitions, settings.plan_space
    )
    stats = WorkerStats(
        partition_id=partition_id,
        n_partitions=n_partitions,
        n_constraints=len(constraints),
        backend_used=Backend.FASTDP.value,
    )
    by_size = admissible_results_by_size(n, constraints, settings.plan_space)
    stats.admissible_results = sum(len(masks) for masks in by_size.values())

    cost_model = CostModel(query, settings)
    adjacency = _adjacency_masks(query)
    if settings.parametric:
        plans = _run_frontier(
            query, constraints, by_size, cost_model, adjacency, stats,
            parametric=True,
        )
    elif settings.is_multi_objective:
        plans = _run_frontier(
            query, constraints, by_size, cost_model, adjacency, stats
        )
    elif settings.consider_orders:
        plans = _run_single_orders(
            query, constraints, by_size, cost_model, adjacency, stats
        )
    else:
        plans = _run_single(
            query, constraints, by_size, cost_model, adjacency, stats
        )
    stats.result_plans = len(plans)
    stats.wall_time_s = time.perf_counter() - started
    return PartitionResult(plans=plans, stats=stats)


# -------------------------------------------------------------------- orders


def _intern_query_orders(query: Query) -> OrderInterner:
    """Intern every sort order that can appear while optimizing ``query``.

    Two sources, exhaustively: clustered-index scan orders of base tables,
    and the endpoint columns of equality predicates (the only orders
    sort-merge joins can produce).  Interning everything upfront keeps the
    compiled satisfies table complete and the id assignment deterministic.
    """
    interner = OrderInterner()
    for table_number, table in enumerate(query.tables):
        if table.clustered_on is not None:
            interner.intern(SortOrder(table_number, table.clustered_on))
    for predicate in query.predicates:
        interner.intern(SortOrder(predicate.left_table, predicate.left_column))
        interner.intern(SortOrder(predicate.right_table, predicate.right_column))
    return interner


def _predicate_records(
    query: Query, interner: OrderInterner
) -> list[list[tuple[int, int, int, int]]]:
    """Per-table incident predicates as (left bit, right bit, key ids).

    ``records[t]`` lists, in the per-table insertion order of
    ``Query.predicates_of``, one ``(left_bit, right_bit, left_key_id,
    right_key_id)`` tuple per predicate incident to ``t`` — the flat form
    :func:`_first_connecting` scans to replicate
    ``Query.predicates_between``'s result order without building predicate
    lists per split.
    """
    records: list[list[tuple[int, int, int, int]]] = []
    for table_number in range(query.n_tables):
        rows = []
        for predicate in query.predicates_of(table_number):
            rows.append(
                (
                    1 << predicate.left_table,
                    1 << predicate.right_table,
                    interner.id_of(
                        SortOrder(predicate.left_table, predicate.left_column)
                    ),
                    interner.id_of(
                        SortOrder(predicate.right_table, predicate.right_column)
                    ),
                )
            )
        records.append(rows)
    return records


def _first_connecting(
    left_mask: int,
    right_mask: int,
    records: list[list[tuple[int, int, int, int]]],
) -> tuple[int, int] | None:
    """Sort-key ids ``(left key, right key)`` of the first connecting predicate.

    Replicates ``Query.predicates_between(left, right)[0]`` exactly: scan
    the *smaller* operand's tables in ascending bit order, each table's
    incident predicates in insertion order, and orient the first connecting
    predicate's endpoint keys to the (left, right) operand sides — the
    orientation ``CostModel._split_keys`` applies.  ``None`` when no
    predicate connects the operands (then only BNL applies anyway).
    """
    smaller = (
        left_mask
        if left_mask.bit_count() <= right_mask.bit_count()
        else right_mask
    )
    while smaller:
        low = smaller & -smaller
        smaller ^= low
        for left_bit, right_bit, left_key, right_key in records[
            low.bit_length() - 1
        ]:
            if left_bit & left_mask:
                if right_bit & right_mask:
                    return left_key, right_key
            elif left_bit & right_mask and right_bit & left_mask:
                return right_key, left_key
    return None


# --------------------------------------------------------------------- single


def _run_single(
    query: Query,
    constraints: tuple,
    by_size: dict[int, list[int]],
    cost_model: CostModel,
    adjacency: list[int],
    stats: WorkerStats,
) -> list[Plan]:
    """Single-objective DP: one float and one back-pointer per table set.

    Pruning short-circuits to a strict ``<`` against the running minimum —
    exactly the decisions :class:`~repro.cost.pruning.MinCostPruning` makes
    when fed candidates in the same order (first-generated wins ties).
    """
    n = query.n_tables
    settings = cost_model.settings
    metric = cost_model.metrics[0]
    inline_time = type(metric) is ExecutionTimeMetric
    join_cost = metric.join_cost
    est_rows = cost_model.cardinality.rows
    algos_all = settings.use_all_join_algorithms
    bnl, hash_join, sort_merge = ALL_JOIN_ALGORITHMS
    hash_factor = HASH_FACTOR

    cost: dict[int, float] = {}
    back: dict[int, object] = {}
    rows: dict[int, float] = {}
    cost_get = cost.get  # hoisted: one method lookup, not one per split
    scan_cost = [0.0] * n
    card = [0.0] * n
    for table_number in range(n):
        scan = cost_model.scan_plans(table_number)[0]
        mask = 1 << table_number
        cost[mask] = scan.cost[0]
        back[mask] = scan
        rows[mask] = scan.rows
        scan_cost[table_number] = scan.cost[0]
        card[table_number] = scan.rows

    splits = considered = kept = 0
    linear = settings.plan_space is PlanSpace.LINEAR
    if linear:
        after = linear_after_masks(n, constraints)
    else:
        groups = _bushy_groups(n, constraints)

    for size in range(2, n + 1):
        for mask in by_size.get(size, ()):
            best = inf
            best_bp = None
            out_rows = -1.0
            if linear:
                # Admissible splits: peel each bit as the inner operand.
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    inner = low.bit_length() - 1
                    if after[inner] & mask:
                        continue
                    rest = mask ^ low
                    left_cost = cost_get(rest)
                    if left_cost is None:
                        continue
                    splits += 1
                    left_rows = rows[rest]
                    right_rows = card[inner]
                    base = left_cost + scan_cost[inner]
                    equi = algos_all and adjacency[inner] & rest
                    if inline_time:
                        considered += 1
                        candidate = base + left_rows * right_rows
                        if candidate < best:
                            best = candidate
                            best_bp = (rest, low, bnl)
                            kept += 1
                        if equi:
                            considered += 2
                            candidate = base + hash_factor * (
                                left_rows + right_rows
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (rest, low, hash_join)
                                kept += 1
                            operator = left_rows + right_rows
                            operator += left_rows * log2(
                                left_rows if left_rows > 2.0 else 2.0
                            )
                            operator += right_rows * log2(
                                right_rows if right_rows > 2.0 else 2.0
                            )
                            candidate = base + operator
                            if candidate < best:
                                best = candidate
                                best_bp = (rest, low, sort_merge)
                                kept += 1
                    else:
                        if out_rows < 0.0:
                            out_rows = est_rows(mask)
                        right_cost = scan_cost[inner]
                        considered += 1
                        candidate = join_cost(
                            left_cost, right_cost, left_rows, right_rows,
                            out_rows, bnl, False, False,
                        )
                        if candidate < best:
                            best = candidate
                            best_bp = (rest, low, bnl)
                            kept += 1
                        if equi:
                            considered += 2
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, hash_join, False, False,
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (rest, low, hash_join)
                                kept += 1
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, sort_merge, True, True,
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (rest, low, sort_merge)
                                kept += 1
            else:
                for left_mask in bushy_operands(mask, groups):
                    if left_mask == 0 or left_mask == mask:
                        continue
                    right_mask = mask ^ left_mask
                    left_cost = cost_get(left_mask)
                    if left_cost is None:
                        continue
                    right_cost = cost_get(right_mask)
                    if right_cost is None:
                        continue
                    splits += 1
                    left_rows = rows[left_mask]
                    right_rows = rows[right_mask]
                    base = left_cost + right_cost
                    equi = algos_all and _connected(
                        left_mask, right_mask, adjacency
                    )
                    if inline_time:
                        considered += 1
                        candidate = base + left_rows * right_rows
                        if candidate < best:
                            best = candidate
                            best_bp = (left_mask, right_mask, bnl)
                            kept += 1
                        if equi:
                            considered += 2
                            candidate = base + hash_factor * (
                                left_rows + right_rows
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (left_mask, right_mask, hash_join)
                                kept += 1
                            operator = left_rows + right_rows
                            operator += left_rows * log2(
                                left_rows if left_rows > 2.0 else 2.0
                            )
                            operator += right_rows * log2(
                                right_rows if right_rows > 2.0 else 2.0
                            )
                            candidate = base + operator
                            if candidate < best:
                                best = candidate
                                best_bp = (left_mask, right_mask, sort_merge)
                                kept += 1
                    else:
                        if out_rows < 0.0:
                            out_rows = est_rows(mask)
                        considered += 1
                        candidate = join_cost(
                            left_cost, right_cost, left_rows, right_rows,
                            out_rows, bnl, False, False,
                        )
                        if candidate < best:
                            best = candidate
                            best_bp = (left_mask, right_mask, bnl)
                            kept += 1
                        if equi:
                            considered += 2
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, hash_join, False, False,
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (left_mask, right_mask, hash_join)
                                kept += 1
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, sort_merge, True, True,
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (left_mask, right_mask, sort_merge)
                                kept += 1
            if best_bp is not None:
                cost[mask] = best
                back[mask] = best_bp
                rows[mask] = out_rows if out_rows >= 0.0 else est_rows(mask)

    stats.splits_considered = splits
    stats.plans_considered = considered
    stats.plans_kept = kept
    stats.table_entries = len(cost)
    stats.stored_plans = len(cost)
    full_mask = query.all_tables_mask
    if full_mask not in back:
        return []
    return [_build_single(full_mask, cost, back, rows, {})]


def _build_single(
    mask: int,
    cost: dict[int, float],
    back: dict[int, object],
    rows: dict[int, float],
    memo: dict[int, Plan],
) -> Plan:
    """Materialize the stored plan for ``mask`` by walking back-pointers."""
    plan = memo.get(mask)
    if plan is not None:
        return plan
    pointer = back[mask]
    if isinstance(pointer, Plan):
        memo[mask] = pointer
        return pointer
    left_mask, right_mask, algorithm = pointer
    plan = JoinPlan(
        mask=mask,
        rows=rows[mask],
        cost=(cost[mask],),
        order=None,
        left=_build_single(left_mask, cost, back, rows, memo),
        right=_build_single(right_mask, cost, back, rows, memo),
        algorithm=algorithm,
    )
    memo[mask] = plan
    return plan


# ------------------------------------------------------------- single+orders


def _run_single_orders(
    query: Query,
    constraints: tuple,
    by_size: dict[int, list[int]],
    cost_model: CostModel,
    adjacency: list[int],
    stats: WorkerStats,
) -> list[Plan]:
    """Single-objective DP over flat per-(table set, order) cost entries.

    Entries are ``(cost, order id, back-pointer)`` tuples; the pruning loop
    replicates :class:`~repro.cost.pruning.InterestingOrderPruning` decision
    for decision, with ``order_satisfies`` compiled to the interner's
    boolean ``sat[produced][required]`` table — one indexed load instead of
    a dataclass comparison per kept entry.
    """
    n = query.n_tables
    settings = cost_model.settings
    metric = cost_model.metrics[0]
    inline_time = type(metric) is ExecutionTimeMetric
    join_cost = metric.join_cost
    est_rows = cost_model.cardinality.rows
    algos_all = settings.use_all_join_algorithms
    bnl, hash_join, sort_merge = ALL_JOIN_ALGORITHMS
    hash_factor = HASH_FACTOR

    interner = _intern_query_orders(query)
    sat = interner.satisfies_table()
    records = _predicate_records(query, interner)

    # entries[mask]: list of (cost, order id, back-pointer); scans store the
    # ScanPlan itself as pointer, joins the 5-tuple described at module top.
    entries: dict[int, list[tuple[float, int, object]]] = {}
    rows: dict[int, float] = {}
    entries_get = entries.get  # hoisted: one method lookup, not one per call

    def consider(mask: int, cost: float, order_id: int, pointer: object) -> bool:
        """InterestingOrderPruning.consider on flat entries; True iff kept."""
        entry = entries_get(mask)
        if entry is None:
            entries[mask] = [(cost, order_id, pointer)]
            return True
        for kept_cost, kept_oid, _pointer in entry:
            if kept_cost <= cost and sat[kept_oid][order_id]:
                return False
        entry[:] = [
            item
            for item in entry
            if not (cost <= item[0] and sat[order_id][item[1]])
        ]
        entry.append((cost, order_id, pointer))
        return True

    for table_number in range(n):
        for scan in cost_model.scan_plans(table_number):
            consider(
                1 << table_number,
                scan.cost[0],
                interner.id_of(scan.order),
                scan,
            )
            rows[1 << table_number] = scan.rows

    splits = considered = kept = 0
    linear = settings.plan_space is PlanSpace.LINEAR
    if linear:
        after = linear_after_masks(n, constraints)
    else:
        groups = _bushy_groups(n, constraints)

    # One split buffer per level sweep, preallocated once and reused for
    # every mask (a level's masks admit at most n splits each), instead of
    # a fresh list allocation per mask.
    splits_iter: list[tuple[int, int]] = []
    for size in range(2, n + 1):
        for mask in by_size.get(size, ()):
            out_rows = -1.0
            del splits_iter[:]
            if linear:
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    inner = low.bit_length() - 1
                    if after[inner] & mask:
                        continue
                    splits_iter.append((mask ^ low, low))
            else:
                for left_mask in bushy_operands(mask, groups):
                    if left_mask == 0 or left_mask == mask:
                        continue
                    splits_iter.append((left_mask, mask ^ left_mask))
            for left_mask, right_mask in splits_iter:
                left_entry = entries_get(left_mask)
                if left_entry is None:
                    continue
                right_entry = entries_get(right_mask)
                if right_entry is None:
                    continue
                splits += 1
                left_rows = rows[left_mask]
                right_rows = rows[right_mask]
                equi = algos_all and _connected(
                    left_mask, right_mask, adjacency
                )
                if equi:
                    keys = _first_connecting(left_mask, right_mask, records)
                    sm_left, sm_right = keys
                if not inline_time and out_rows < 0.0:
                    out_rows = est_rows(mask)
                for left_index in range(len(left_entry)):
                    left_item = left_entry[left_index]
                    left_cost = left_item[0]
                    left_oid = left_item[1]
                    for right_index in range(len(right_entry)):
                        right_item = right_entry[right_index]
                        right_cost = right_item[0]
                        right_oid = right_item[1]
                        base = left_cost + right_cost
                        if inline_time:
                            considered += 1
                            candidate = base + left_rows * right_rows
                            if consider(
                                mask,
                                candidate,
                                UNSORTED,
                                (left_mask, left_index, right_mask,
                                 right_index, bnl),
                            ):
                                kept += 1
                            if equi:
                                considered += 2
                                candidate = base + hash_factor * (
                                    left_rows + right_rows
                                )
                                if consider(
                                    mask,
                                    candidate,
                                    UNSORTED,
                                    (left_mask, left_index, right_mask,
                                     right_index, hash_join),
                                ):
                                    kept += 1
                                operator = left_rows + right_rows
                                if left_oid != sm_left:
                                    operator += left_rows * log2(
                                        left_rows if left_rows > 2.0 else 2.0
                                    )
                                if right_oid != sm_right:
                                    operator += right_rows * log2(
                                        right_rows if right_rows > 2.0 else 2.0
                                    )
                                if consider(
                                    mask,
                                    base + operator,
                                    sm_left,
                                    (left_mask, left_index, right_mask,
                                     right_index, sort_merge),
                                ):
                                    kept += 1
                        else:
                            considered += 1
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, bnl, False, False,
                            )
                            if consider(
                                mask,
                                candidate,
                                UNSORTED,
                                (left_mask, left_index, right_mask,
                                 right_index, bnl),
                            ):
                                kept += 1
                            if equi:
                                considered += 2
                                candidate = join_cost(
                                    left_cost, right_cost, left_rows,
                                    right_rows, out_rows, hash_join,
                                    False, False,
                                )
                                if consider(
                                    mask,
                                    candidate,
                                    UNSORTED,
                                    (left_mask, left_index, right_mask,
                                     right_index, hash_join),
                                ):
                                    kept += 1
                                candidate = join_cost(
                                    left_cost, right_cost, left_rows,
                                    right_rows, out_rows, sort_merge,
                                    left_oid != sm_left,
                                    right_oid != sm_right,
                                )
                                if consider(
                                    mask,
                                    candidate,
                                    sm_left,
                                    (left_mask, left_index, right_mask,
                                     right_index, sort_merge),
                                ):
                                    kept += 1
            if mask in entries:
                rows[mask] = out_rows if out_rows >= 0.0 else est_rows(mask)

    stats.splits_considered = splits
    stats.plans_considered = considered
    stats.plans_kept = kept
    stats.table_entries = len(entries)
    stats.stored_plans = sum(len(entry) for entry in entries.values())
    full_mask = query.all_tables_mask
    final = entries.get(full_mask)
    if not final:
        return []
    memo: dict[tuple[int, int], Plan] = {}
    return [
        _build_single_orders(full_mask, index, entries, rows, interner, memo)
        for index in range(len(final))
    ]


def _build_single_orders(
    mask: int,
    index: int,
    entries: dict[int, list[tuple[float, int, object]]],
    rows: dict[int, float],
    interner: OrderInterner,
    memo: dict[tuple[int, int], Plan],
) -> Plan:
    """Materialize entry ``index`` of ``mask`` with its interned order."""
    key = (mask, index)
    plan = memo.get(key)
    if plan is not None:
        return plan
    cost, order_id, pointer = entries[mask][index]
    if isinstance(pointer, Plan):
        memo[key] = pointer
        return pointer
    left_mask, left_index, right_mask, right_index, algorithm = pointer
    plan = JoinPlan(
        mask=mask,
        rows=rows[mask],
        cost=(cost,),
        order=interner.order_of(order_id),
        left=_build_single_orders(
            left_mask, left_index, entries, rows, interner, memo
        ),
        right=_build_single_orders(
            right_mask, right_index, entries, rows, interner, memo
        ),
        algorithm=algorithm,
    )
    memo[key] = plan
    return plan


# ---------------------------------------------------------------------- multi


def _run_frontier(
    query: Query,
    constraints: tuple,
    by_size: dict[int, list[int]],
    cost_model: CostModel,
    adjacency: list[int],
    stats: WorkerStats,
    parametric: bool = False,
) -> list[Plan]:
    """Frontier DP on flat (cost vector, order id, back-pointer) entries.

    One kernel, three pruning disciplines selected once up front:

    * **exact / α Pareto** — replicates
      :class:`~repro.cost.pruning.ParetoPruning` decisions (reject a
      candidate some kept entry α-dominates *and* whose order covers it,
      evict entries the accepted candidate exactly dominates and covers,
      append) over candidates generated in the legacy order, so kept
      frontiers and their order match the legacy backend even for α > 1,
      where pruning is order-sensitive;
    * **parametric** (``parametric=True``) — replicates
      :class:`~repro.cost.pruning.ParametricPruning` with the exact shared
      envelope tests, preceded by a dominance short-circuit generalized to
      parameter intervals: a kept line below the candidate at both
      θ-endpoints bounds it for every θ ∈ [0, 1], so the candidate is
      rejected before any crossing-point arithmetic.

    Interesting orders ride on interned ids: when orders are not tracked
    every entry carries :data:`~repro.plans.orders.UNSORTED` and the
    compiled satisfies table degenerates to "always", leaving pure cost
    dominance — the no-orders fast path costs two index loads, not a
    branch per comparison.
    """
    n = query.n_tables
    settings = cost_model.settings
    metrics = cost_model.metrics
    metric_joins = tuple(metric.join_cost for metric in metrics)
    est_rows = cost_model.cardinality.rows
    algos_all = settings.use_all_join_algorithms
    bnl, hash_join, sort_merge = ALL_JOIN_ALGORITHMS
    track_orders = settings.consider_orders
    alpha = per_level_alpha(settings.alpha, n)
    exact = alpha == 1.0

    interner = _intern_query_orders(query)
    sat = interner.satisfies_table()
    records = _predicate_records(query, interner)

    # entries[mask]: list of (cost vector, order id, back-pointer); the
    # back-pointer is the ScanPlan for singletons, else (left mask, left
    # index, right mask, right index, algorithm) indexing the operands'
    # finalized entry lists.
    entries: dict[int, list[tuple[tuple[float, ...], int, object]]] = {}
    rows: dict[int, float] = {}
    entries_get = entries.get  # hoisted: one method lookup, not one per call

    if parametric:

        def consider(
            mask: int,
            candidate: tuple[float, ...],
            order_id: int,
            pointer: object,
        ) -> bool:
            """ParametricPruning.consider; True iff the candidate was kept."""
            entry = entries_get(mask)
            if entry is None:
                entries[mask] = [(candidate, order_id, pointer)]
                return True
            at_zero, at_one = candidate
            kept_costs = []
            for item in entry:
                kept_cost = item[0]
                if kept_cost[0] <= at_zero and kept_cost[1] <= at_one:
                    # The kept line bounds the candidate's at both ends of
                    # the parameter interval, hence everywhere on it; the
                    # envelope test below could only confirm the rejection.
                    return False
                kept_costs.append(kept_cost)
            if not needed_on_envelope(candidate, kept_costs):
                return False
            candidates = [*entry, (candidate, order_id, pointer)]
            keep = envelope_filter([item[0] for item in candidates])
            entries[mask] = [candidates[index] for index in keep]
            return len(candidates) - 1 in keep

    elif exact:

        def consider(
            mask: int,
            candidate: tuple[float, ...],
            order_id: int,
            pointer: object,
        ) -> bool:
            """ParetoPruning.consider (α = 1); True iff kept."""
            entry = entries_get(mask)
            if entry is None:
                entries[mask] = [(candidate, order_id, pointer)]
                return True
            for kept_cost, kept_oid, _pointer in entry:
                if sat[kept_oid][order_id]:
                    dominates_candidate = True
                    for ours, theirs in zip(kept_cost, candidate):
                        if ours > theirs:
                            dominates_candidate = False
                            break
                    if dominates_candidate:
                        return False
            survivors = []
            for item in entry:
                dominated = sat[order_id][item[1]]
                if dominated:
                    kept_cost = item[0]
                    for ours, theirs in zip(candidate, kept_cost):
                        if ours > theirs:
                            dominated = False
                            break
                if not dominated:
                    survivors.append(item)
            survivors.append((candidate, order_id, pointer))
            entries[mask] = survivors
            return True

    else:

        def consider(
            mask: int,
            candidate: tuple[float, ...],
            order_id: int,
            pointer: object,
        ) -> bool:
            """ParetoPruning.consider (α > 1); True iff kept."""
            entry = entries_get(mask)
            if entry is None:
                entries[mask] = [(candidate, order_id, pointer)]
                return True
            for kept_cost, kept_oid, _pointer in entry:
                if sat[kept_oid][order_id]:
                    dominates_candidate = True
                    for ours, theirs in zip(kept_cost, candidate):
                        if ours > alpha * theirs:
                            dominates_candidate = False
                            break
                    if dominates_candidate:
                        return False
            survivors = []
            for item in entry:
                dominated = sat[order_id][item[1]]
                if dominated:
                    kept_cost = item[0]
                    for ours, theirs in zip(candidate, kept_cost):
                        if ours > theirs:
                            dominated = False
                            break
                if not dominated:
                    survivors.append(item)
            survivors.append((candidate, order_id, pointer))
            entries[mask] = survivors
            return True

    for table_number in range(n):
        mask = 1 << table_number
        for scan in cost_model.scan_plans(table_number):
            consider(mask, scan.cost, interner.id_of(scan.order), scan)
            rows[mask] = scan.rows

    splits = considered = kept = 0
    linear = settings.plan_space is PlanSpace.LINEAR
    if linear:
        after = linear_after_masks(n, constraints)
    else:
        groups = _bushy_groups(n, constraints)

    # One split buffer per level sweep, preallocated once and reused for
    # every mask (a level's masks admit at most n splits each), instead of
    # a fresh list allocation per mask.
    splits_iter: list[tuple[int, int]] = []
    for size in range(2, n + 1):
        for mask in by_size.get(size, ()):
            out_rows = -1.0
            del splits_iter[:]
            if linear:
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    inner = low.bit_length() - 1
                    if after[inner] & mask:
                        continue
                    splits_iter.append((mask ^ low, low))
            else:
                for left_mask in bushy_operands(mask, groups):
                    if left_mask == 0 or left_mask == mask:
                        continue
                    splits_iter.append((left_mask, mask ^ left_mask))
            for left_mask, right_mask in splits_iter:
                left_entry = entries_get(left_mask)
                if left_entry is None:
                    continue
                right_entry = entries_get(right_mask)
                if right_entry is None:
                    continue
                splits += 1
                if out_rows < 0.0:
                    out_rows = est_rows(mask)
                left_rows = rows[left_mask]
                right_rows = rows[right_mask]
                equi = algos_all and _connected(
                    left_mask, right_mask, adjacency
                )
                # Sort-merge flags: without order tracking both inputs are
                # always sorted (the legacy cost model's _is_sorted is
                # False); with tracking they depend on each operand entry's
                # own order versus the split's sort keys.
                sm_left = sm_right = UNSORTED
                if equi and track_orders:
                    sm_left, sm_right = _first_connecting(
                        left_mask, right_mask, records
                    )
                for left_index in range(len(left_entry)):
                    left_item = left_entry[left_index]
                    left_cost = left_item[0]
                    for right_index in range(len(right_entry)):
                        right_item = right_entry[right_index]
                        right_cost = right_item[0]
                        considered += 1
                        if consider(
                            mask,
                            tuple(
                                join(
                                    left_cost[i], right_cost[i],
                                    left_rows, right_rows, out_rows,
                                    bnl, False, False,
                                )
                                for i, join in enumerate(metric_joins)
                            ),
                            UNSORTED,
                            (left_mask, left_index, right_mask,
                             right_index, bnl),
                        ):
                            kept += 1
                        if not equi:
                            continue
                        considered += 2
                        if consider(
                            mask,
                            tuple(
                                join(
                                    left_cost[i], right_cost[i],
                                    left_rows, right_rows, out_rows,
                                    hash_join, False, False,
                                )
                                for i, join in enumerate(metric_joins)
                            ),
                            UNSORTED,
                            (left_mask, left_index, right_mask,
                             right_index, hash_join),
                        ):
                            kept += 1
                        if track_orders:
                            sort_left = left_item[1] != sm_left
                            sort_right = right_item[1] != sm_right
                            sm_order = sm_left
                        else:
                            sort_left = sort_right = True
                            sm_order = UNSORTED
                        if consider(
                            mask,
                            tuple(
                                join(
                                    left_cost[i], right_cost[i],
                                    left_rows, right_rows, out_rows,
                                    sort_merge, sort_left, sort_right,
                                )
                                for i, join in enumerate(metric_joins)
                            ),
                            sm_order,
                            (left_mask, left_index, right_mask,
                             right_index, sort_merge),
                        ):
                            kept += 1
            if out_rows >= 0.0 and mask in entries:
                rows[mask] = out_rows

    stats.splits_considered = splits
    stats.plans_considered = considered
    stats.plans_kept = kept
    stats.table_entries = len(entries)
    stats.stored_plans = sum(len(entry) for entry in entries.values())
    full_mask = query.all_tables_mask
    final = entries.get(full_mask)
    if not final:
        return []
    memo: dict[tuple[int, int], Plan] = {}
    return [
        _build_frontier(full_mask, index, entries, rows, interner, memo)
        for index in range(len(final))
    ]


def _build_frontier(
    mask: int,
    index: int,
    entries: dict[int, list[tuple[tuple[float, ...], int, object]]],
    rows: dict[int, float],
    interner: OrderInterner,
    memo: dict[tuple[int, int], Plan],
) -> Plan:
    """Materialize entry ``index`` of ``mask`` by walking back-pointers.

    Operand indices were recorded against finalized entry lists (strictly
    smaller table sets are complete before any larger set references them),
    so they resolve unambiguously here.
    """
    key = (mask, index)
    plan = memo.get(key)
    if plan is not None:
        return plan
    cost, order_id, pointer = entries[mask][index]
    if isinstance(pointer, Plan):
        memo[key] = pointer
        return pointer
    left_mask, left_index, right_mask, right_index, algorithm = pointer
    plan = JoinPlan(
        mask=mask,
        rows=rows[mask],
        cost=cost,
        order=interner.order_of(order_id),
        left=_build_frontier(
            left_mask, left_index, entries, rows, interner, memo
        ),
        right=_build_frontier(
            right_mask, right_index, entries, rows, interner, memo
        ),
        algorithm=algorithm,
    )
    memo[key] = plan
    return plan


# The fast core declares the full capability set — after this module, no
# settings value routes to the legacy core unless explicitly requested.
register_backend(
    EnumerationBackend(
        backend=Backend.FASTDP,
        capabilities=CAPABILITIES,
        speed_rank=10,
        loader=lambda: optimize_partition_fastdp,
    )
)
