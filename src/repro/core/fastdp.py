"""Fast DP enumeration core — the ``fastdp`` backend.

A drop-in replacement for the object-based worker DP in
:mod:`repro.core.worker`, selected via
:attr:`repro.config.OptimizerSettings.backend`.  It searches exactly the
same plan space under exactly the same partition constraints and produces
the same cost frontiers and worker statistics; the differential-testing
oracle in :mod:`repro.testing` enforces this equivalence plan-for-plan.

What makes it fast:

* **level-wise bitset enumeration** over the precomputed admissible-mask
  lists of :func:`~repro.core.partitioning.admissible_results_by_size`,
  with the inner bit loop written against raw ``int`` operations
  (``mask & -mask``, ``int.bit_count``) instead of generator helpers;
* **packed flat cost state** — per table set the DP stores plain floats
  (single objective) or tuples-plus-back-pointers (multiple objectives)
  rather than :class:`~repro.plans.plan.Plan` objects, so the inner loop
  allocates no plan nodes, no :class:`~repro.cost.costmodel.JoinCandidate`
  tuples, and no builder closures;
* **dominance pruning that short-circuits on the single-objective case** —
  a scalar ``<`` against the running minimum replaces the
  :class:`~repro.cost.pruning.PruningPolicy` dispatch, and the
  multi-objective path inlines (α-)dominance over the kept frontier;
* **an inlined kernel for the default execution-time metric** that
  reproduces :class:`~repro.cost.metrics.ExecutionTimeMetric` arithmetic
  operation-for-operation (same order of float additions), so costs are
  bit-identical to the legacy backend's.

Plan trees are materialized once, at the end, by walking back-pointers from
the full table set; every intermediate table set costs two dict stores.

Equivalence contract (checked by ``repro.testing`` and
``tests/test_fastdp.py``):

* candidates are generated in the legacy order — table sets by level, inner
  operands in ascending bit order (linear) / ``bushy_operands`` order
  (bushy), stored sub-plans in insertion order, operators in
  ``ALL_JOIN_ALGORITHMS`` order — so order-sensitive tie-breaking and
  α-pruning (α > 1) decisions match the legacy backend exactly;
* all cost arithmetic either calls the same :class:`~repro.cost.metrics`
  methods or replicates them literally;
* :class:`~repro.core.worker.WorkerStats` counters are maintained with the
  legacy semantics (a split is counted only when both operands have stored
  plans; a candidate is "kept" exactly when the legacy pruning would have
  kept it).

Unsupported settings — interesting orders and parametric costs — are not
silently approximated: :func:`supports` reports them and the worker falls
back to the legacy backend.
"""

from __future__ import annotations

import time
from math import inf, log2

from repro.config import OptimizerSettings, PlanSpace
from repro.core.constraints import partition_constraints
from repro.core.partitioning import admissible_results_by_size
from repro.core.worker import (
    PartitionResult,
    WorkerStats,
    _bushy_groups,
    bushy_operands,
    linear_after_masks,
)
from repro.cost.costmodel import CostModel
from repro.cost.metrics import HASH_FACTOR, ExecutionTimeMetric
from repro.cost.pruning import per_level_alpha
from repro.plans.operators import ALL_JOIN_ALGORITHMS
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.query import Query

#: Back-pointer of a join entry: (left mask, left entry index, right mask,
#: right entry index, join algorithm).  Scan entries store the ScanPlan
#: itself.  Single-objective state drops the indices (one entry per mask).


def supports(settings: OptimizerSettings) -> bool:
    """Whether the fast core can run these settings.

    Interesting orders multiply the per-set entries by sort order and
    parametric costs need lower-envelope pruning; both stay on the legacy
    backend (the worker falls back transparently).
    """
    return not settings.consider_orders and not settings.parametric


def _adjacency_masks(query: Query) -> list[int]:
    """Per-table bitmask of join-graph neighbours.

    An equality predicate connects disjoint sets ``L``/``R`` iff some table
    of one side has a neighbour in the other — the O(1)-per-split
    replacement for building the ``predicates_between`` list when only
    operator applicability (hash / sort-merge need an equi predicate) is at
    stake.
    """
    adjacency = [0] * query.n_tables
    for predicate in query.predicates:
        adjacency[predicate.left_table] |= 1 << predicate.right_table
        adjacency[predicate.right_table] |= 1 << predicate.left_table
    return adjacency


def _connected(left_mask: int, right_mask: int, adjacency: list[int]) -> bool:
    """Whether any predicate connects the two disjoint table sets."""
    smaller, other = (
        (left_mask, right_mask)
        if left_mask.bit_count() <= right_mask.bit_count()
        else (right_mask, left_mask)
    )
    while smaller:
        low = smaller & -smaller
        smaller ^= low
        if adjacency[low.bit_length() - 1] & other:
            return True
    return False


def optimize_partition_fastdp(
    query: Query,
    partition_id: int,
    n_partitions: int,
    settings: OptimizerSettings,
) -> PartitionResult:
    """Optimize one plan-space partition with the fast enumeration core.

    Same contract as :func:`repro.core.worker.optimize_partition`; callers
    should go through the worker, which dispatches on
    ``settings.backend`` and falls back to the legacy core for settings
    :func:`supports` rejects.
    """
    if not supports(settings):
        raise ValueError(
            "fastdp does not support interesting orders or parametric costs; "
            "route through repro.core.worker.optimize_partition for fallback"
        )
    started = time.perf_counter()
    n = query.n_tables
    constraints = partition_constraints(
        n, partition_id, n_partitions, settings.plan_space
    )
    stats = WorkerStats(
        partition_id=partition_id,
        n_partitions=n_partitions,
        n_constraints=len(constraints),
    )
    by_size = admissible_results_by_size(n, constraints, settings.plan_space)
    stats.admissible_results = sum(len(masks) for masks in by_size.values())

    cost_model = CostModel(query, settings)
    adjacency = _adjacency_masks(query)
    if settings.is_multi_objective:
        plans = _run_multi(
            query, constraints, by_size, cost_model, adjacency, stats
        )
    else:
        plans = _run_single(
            query, constraints, by_size, cost_model, adjacency, stats
        )
    stats.result_plans = len(plans)
    stats.wall_time_s = time.perf_counter() - started
    return PartitionResult(plans=plans, stats=stats)


# --------------------------------------------------------------------- single


def _run_single(
    query: Query,
    constraints: tuple,
    by_size: dict[int, list[int]],
    cost_model: CostModel,
    adjacency: list[int],
    stats: WorkerStats,
) -> list[Plan]:
    """Single-objective DP: one float and one back-pointer per table set.

    Pruning short-circuits to a strict ``<`` against the running minimum —
    exactly the decisions :class:`~repro.cost.pruning.MinCostPruning` makes
    when fed candidates in the same order (first-generated wins ties).
    """
    n = query.n_tables
    settings = cost_model.settings
    metric = cost_model.metrics[0]
    inline_time = type(metric) is ExecutionTimeMetric
    join_cost = metric.join_cost
    est_rows = cost_model.cardinality.rows
    algos_all = settings.use_all_join_algorithms
    bnl, hash_join, sort_merge = ALL_JOIN_ALGORITHMS
    hash_factor = HASH_FACTOR

    cost: dict[int, float] = {}
    back: dict[int, object] = {}
    rows: dict[int, float] = {}
    scan_cost = [0.0] * n
    card = [0.0] * n
    for table_number in range(n):
        scan = cost_model.scan_plans(table_number)[0]
        mask = 1 << table_number
        cost[mask] = scan.cost[0]
        back[mask] = scan
        rows[mask] = scan.rows
        scan_cost[table_number] = scan.cost[0]
        card[table_number] = scan.rows

    splits = considered = kept = 0
    linear = settings.plan_space is PlanSpace.LINEAR
    if linear:
        after = linear_after_masks(n, constraints)
    else:
        groups = _bushy_groups(n, constraints)

    for size in range(2, n + 1):
        for mask in by_size.get(size, ()):
            best = inf
            best_bp = None
            out_rows = -1.0
            if linear:
                # Admissible splits: peel each bit as the inner operand.
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    inner = low.bit_length() - 1
                    if after[inner] & mask:
                        continue
                    rest = mask ^ low
                    left_cost = cost.get(rest)
                    if left_cost is None:
                        continue
                    splits += 1
                    left_rows = rows[rest]
                    right_rows = card[inner]
                    base = left_cost + scan_cost[inner]
                    equi = algos_all and adjacency[inner] & rest
                    if inline_time:
                        considered += 1
                        candidate = base + left_rows * right_rows
                        if candidate < best:
                            best = candidate
                            best_bp = (rest, low, bnl)
                            kept += 1
                        if equi:
                            considered += 2
                            candidate = base + hash_factor * (
                                left_rows + right_rows
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (rest, low, hash_join)
                                kept += 1
                            operator = left_rows + right_rows
                            operator += left_rows * log2(
                                left_rows if left_rows > 2.0 else 2.0
                            )
                            operator += right_rows * log2(
                                right_rows if right_rows > 2.0 else 2.0
                            )
                            candidate = base + operator
                            if candidate < best:
                                best = candidate
                                best_bp = (rest, low, sort_merge)
                                kept += 1
                    else:
                        if out_rows < 0.0:
                            out_rows = est_rows(mask)
                        right_cost = scan_cost[inner]
                        considered += 1
                        candidate = join_cost(
                            left_cost, right_cost, left_rows, right_rows,
                            out_rows, bnl, False, False,
                        )
                        if candidate < best:
                            best = candidate
                            best_bp = (rest, low, bnl)
                            kept += 1
                        if equi:
                            considered += 2
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, hash_join, False, False,
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (rest, low, hash_join)
                                kept += 1
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, sort_merge, True, True,
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (rest, low, sort_merge)
                                kept += 1
            else:
                for left_mask in bushy_operands(mask, groups):
                    if left_mask == 0 or left_mask == mask:
                        continue
                    right_mask = mask ^ left_mask
                    left_cost = cost.get(left_mask)
                    if left_cost is None:
                        continue
                    right_cost = cost.get(right_mask)
                    if right_cost is None:
                        continue
                    splits += 1
                    left_rows = rows[left_mask]
                    right_rows = rows[right_mask]
                    base = left_cost + right_cost
                    equi = algos_all and _connected(
                        left_mask, right_mask, adjacency
                    )
                    if inline_time:
                        considered += 1
                        candidate = base + left_rows * right_rows
                        if candidate < best:
                            best = candidate
                            best_bp = (left_mask, right_mask, bnl)
                            kept += 1
                        if equi:
                            considered += 2
                            candidate = base + hash_factor * (
                                left_rows + right_rows
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (left_mask, right_mask, hash_join)
                                kept += 1
                            operator = left_rows + right_rows
                            operator += left_rows * log2(
                                left_rows if left_rows > 2.0 else 2.0
                            )
                            operator += right_rows * log2(
                                right_rows if right_rows > 2.0 else 2.0
                            )
                            candidate = base + operator
                            if candidate < best:
                                best = candidate
                                best_bp = (left_mask, right_mask, sort_merge)
                                kept += 1
                    else:
                        if out_rows < 0.0:
                            out_rows = est_rows(mask)
                        considered += 1
                        candidate = join_cost(
                            left_cost, right_cost, left_rows, right_rows,
                            out_rows, bnl, False, False,
                        )
                        if candidate < best:
                            best = candidate
                            best_bp = (left_mask, right_mask, bnl)
                            kept += 1
                        if equi:
                            considered += 2
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, hash_join, False, False,
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (left_mask, right_mask, hash_join)
                                kept += 1
                            candidate = join_cost(
                                left_cost, right_cost, left_rows, right_rows,
                                out_rows, sort_merge, True, True,
                            )
                            if candidate < best:
                                best = candidate
                                best_bp = (left_mask, right_mask, sort_merge)
                                kept += 1
            if best_bp is not None:
                cost[mask] = best
                back[mask] = best_bp
                rows[mask] = out_rows if out_rows >= 0.0 else est_rows(mask)

    stats.splits_considered = splits
    stats.plans_considered = considered
    stats.plans_kept = kept
    stats.table_entries = len(cost)
    stats.stored_plans = len(cost)
    full_mask = query.all_tables_mask
    if full_mask not in back:
        return []
    return [_build_single(full_mask, cost, back, rows, {})]


def _build_single(
    mask: int,
    cost: dict[int, float],
    back: dict[int, object],
    rows: dict[int, float],
    memo: dict[int, Plan],
) -> Plan:
    """Materialize the stored plan for ``mask`` by walking back-pointers."""
    plan = memo.get(mask)
    if plan is not None:
        return plan
    pointer = back[mask]
    if isinstance(pointer, Plan):
        memo[mask] = pointer
        return pointer
    left_mask, right_mask, algorithm = pointer
    plan = JoinPlan(
        mask=mask,
        rows=rows[mask],
        cost=(cost[mask],),
        order=None,
        left=_build_single(left_mask, cost, back, rows, memo),
        right=_build_single(right_mask, cost, back, rows, memo),
        algorithm=algorithm,
    )
    memo[mask] = plan
    return plan


# ---------------------------------------------------------------------- multi


def _run_multi(
    query: Query,
    constraints: tuple,
    by_size: dict[int, list[int]],
    cost_model: CostModel,
    adjacency: list[int],
    stats: WorkerStats,
) -> list[Plan]:
    """Multi-objective DP on flat (cost vector, back-pointer) frontiers.

    Replicates :class:`~repro.cost.pruning.ParetoPruning` decisions — reject
    a candidate some kept entry α-dominates, evict entries the accepted
    candidate exactly dominates, append — over candidates generated in the
    legacy order, so kept frontiers (and their order) match the legacy
    backend even for α > 1, where pruning is order-sensitive.
    """
    n = query.n_tables
    settings = cost_model.settings
    metrics = cost_model.metrics
    metric_joins = tuple(metric.join_cost for metric in metrics)
    est_rows = cost_model.cardinality.rows
    algos_all = settings.use_all_join_algorithms
    bnl, hash_join, sort_merge = ALL_JOIN_ALGORITHMS
    alpha = per_level_alpha(settings.alpha, n)
    exact = alpha == 1.0

    # entries[mask]: list of (cost vector, back-pointer); back-pointer is the
    # ScanPlan for singletons, else (left mask, left index, right mask,
    # right index, algorithm) indexing the operands' finalized entry lists.
    entries: dict[int, list[tuple[tuple[float, ...], object]]] = {}
    rows: dict[int, float] = {}
    card = [0.0] * n
    for table_number in range(n):
        scan = cost_model.scan_plans(table_number)[0]
        mask = 1 << table_number
        entries[mask] = [(scan.cost, scan)]
        rows[mask] = scan.rows
        card[table_number] = scan.rows

    splits = considered = kept = 0
    linear = settings.plan_space is PlanSpace.LINEAR
    if linear:
        after = linear_after_masks(n, constraints)
    else:
        groups = _bushy_groups(n, constraints)

    # Operator schedules in legacy generation order; hash and sort-merge
    # (which sorts both inputs — orders are never tracked here) only when an
    # equality predicate connects the operands.
    equi_operators = (
        (bnl, False),
        (hash_join, False),
        (sort_merge, True),
    )
    bnl_only = ((bnl, False),)

    def consider(mask: int, candidate: tuple[float, ...], pointer: object) -> None:
        """Offer one candidate; mirrors ParetoPruning.consider exactly."""
        nonlocal kept
        entry = entries.get(mask)
        if entry is None:
            entries[mask] = [(candidate, pointer)]
            kept += 1
            return
        if exact:
            for kept_cost, _pointer in entry:
                dominates_candidate = True
                for ours, theirs in zip(kept_cost, candidate):
                    if ours > theirs:
                        dominates_candidate = False
                        break
                if dominates_candidate:
                    return
        else:
            for kept_cost, _pointer in entry:
                dominates_candidate = True
                for ours, theirs in zip(kept_cost, candidate):
                    if ours > alpha * theirs:
                        dominates_candidate = False
                        break
                if dominates_candidate:
                    return
        survivors = []
        for item in entry:
            kept_cost = item[0]
            dominated = True
            for ours, theirs in zip(candidate, kept_cost):
                if ours > theirs:
                    dominated = False
                    break
            if not dominated:
                survivors.append(item)
        survivors.append((candidate, pointer))
        entries[mask] = survivors
        kept += 1

    for size in range(2, n + 1):
        for mask in by_size.get(size, ()):
            out_rows = -1.0
            if linear:
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    inner = low.bit_length() - 1
                    if after[inner] & mask:
                        continue
                    rest = mask ^ low
                    left_entry = entries.get(rest)
                    if left_entry is None:
                        continue
                    splits += 1
                    if out_rows < 0.0:
                        out_rows = est_rows(mask)
                    left_rows = rows[rest]
                    right_rows = card[inner]
                    right_entry = entries[low]
                    operators = (
                        equi_operators
                        if algos_all and adjacency[inner] & rest
                        else bnl_only
                    )
                    for left_index in range(len(left_entry)):
                        left_cost = left_entry[left_index][0]
                        for right_index in range(len(right_entry)):
                            right_cost = right_entry[right_index][0]
                            for algorithm, sorts in operators:
                                considered += 1
                                consider(
                                    mask,
                                    tuple(
                                        join(
                                            left_cost[i], right_cost[i],
                                            left_rows, right_rows, out_rows,
                                            algorithm, sorts, sorts,
                                        )
                                        for i, join in enumerate(metric_joins)
                                    ),
                                    (rest, left_index, low, right_index, algorithm),
                                )
            else:
                for left_mask in bushy_operands(mask, groups):
                    if left_mask == 0 or left_mask == mask:
                        continue
                    right_mask = mask ^ left_mask
                    left_entry = entries.get(left_mask)
                    if left_entry is None:
                        continue
                    right_entry = entries.get(right_mask)
                    if right_entry is None:
                        continue
                    splits += 1
                    if out_rows < 0.0:
                        out_rows = est_rows(mask)
                    left_rows = rows[left_mask]
                    right_rows = rows[right_mask]
                    operators = (
                        equi_operators
                        if algos_all and _connected(left_mask, right_mask, adjacency)
                        else bnl_only
                    )
                    for left_index in range(len(left_entry)):
                        left_cost = left_entry[left_index][0]
                        for right_index in range(len(right_entry)):
                            right_cost = right_entry[right_index][0]
                            for algorithm, sorts in operators:
                                considered += 1
                                consider(
                                    mask,
                                    tuple(
                                        join(
                                            left_cost[i], right_cost[i],
                                            left_rows, right_rows, out_rows,
                                            algorithm, sorts, sorts,
                                        )
                                        for i, join in enumerate(metric_joins)
                                    ),
                                    (
                                        left_mask,
                                        left_index,
                                        right_mask,
                                        right_index,
                                        algorithm,
                                    ),
                                )
            if out_rows >= 0.0 and mask in entries:
                rows[mask] = out_rows

    stats.splits_considered = splits
    stats.plans_considered = considered
    stats.plans_kept = kept
    stats.table_entries = len(entries)
    stats.stored_plans = sum(len(entry) for entry in entries.values())
    full_mask = query.all_tables_mask
    final = entries.get(full_mask)
    if not final:
        return []
    memo: dict[tuple[int, int], Plan] = {}
    return [
        _build_multi(full_mask, index, entries, rows, memo)
        for index in range(len(final))
    ]


def _build_multi(
    mask: int,
    index: int,
    entries: dict[int, list[tuple[tuple[float, ...], object]]],
    rows: dict[int, float],
    memo: dict[tuple[int, int], Plan],
) -> Plan:
    """Materialize entry ``index`` of ``mask`` by walking back-pointers.

    Operand indices were recorded against finalized entry lists (strictly
    smaller table sets are complete before any larger set references them),
    so they resolve unambiguously here.
    """
    key = (mask, index)
    plan = memo.get(key)
    if plan is not None:
        return plan
    cost, pointer = entries[mask][index]
    if isinstance(pointer, Plan):
        memo[key] = pointer
        return pointer
    left_mask, left_index, right_mask, right_index, algorithm = pointer
    plan = JoinPlan(
        mask=mask,
        rows=rows[mask],
        cost=cost,
        order=None,
        left=_build_multi(left_mask, left_index, entries, rows, memo),
        right=_build_multi(right_mask, right_index, entries, rows, memo),
        algorithm=algorithm,
    )
    memo[key] = plan
    return plan
