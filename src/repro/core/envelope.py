"""Breakpoint index over a parametric lower-envelope frontier.

A parametric DP run (:mod:`repro.algorithms.pqo`) returns the *lower
envelope*: one plan optimal for every θ ∈ [0, 1] of the scalarized cost
``(1-θ)·cost[0] + θ·cost[1]``.  The serving layer caches that whole
frontier once per query shape and answers each θ-specific request by
lookup instead of re-optimizing.  This module is the lookup structure:

* :func:`build_envelope_index` extracts the sorted switching θs
  (breakpoints) and the owning plan per segment from a frontier, once, at
  materialization time;
* :meth:`EnvelopeIndex.select` binds a concrete θ in O(log n): bisect the
  breakpoint list to a segment, then compare the segment owner against its
  neighbors under the exact selection rule (the neighbors matter only when
  θ lands on — or within float slack of — a breakpoint).

**Determinism / bit-identity contract.**  θ-binding must pick the *same*
plan no matter where it happens — on a fresh result, on a cached entry in
canonical numbering, on a relabeled result after a network hop — or a
cached answer would not be bit-identical to per-θ optimization.  The
selection key is therefore :func:`theta_selection_key` =
``(scalarized cost, full cost vector)``, which never reads table numbers:
plan costs are invariant under relabeling, and envelope filtering
(:func:`repro.cost.parametric.envelope_filter`) already collapsed
equal-cost duplicates, so the key is decisive wherever cost vectors are
distinct; in the residual duplicate-cost case the *first* plan in frontier
order wins, and frontier order is preserved by remapping and by every wire
codec.  The index stores plan *positions* in that order, so a serialized
index keeps meaning the same plans after a JSON round trip.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Sequence

from repro.cost.parametric import scalarize, switching_points
from repro.plans.plan import Plan

#: The full parameter domain a cached envelope covers.  Recorded in entry
#: provenance; a future drift-invalidation policy can narrow it.
FULL_THETA_DOMAIN: tuple[float, float] = (0.0, 1.0)


def theta_selection_key(cost: Sequence[float], theta: float) -> tuple:
    """The numbering-invariant ordering key for θ-binding (see module doc)."""
    return (scalarize(cost, theta), tuple(cost))


def best_index_at(costs: Sequence[Sequence[float]], theta: float) -> int:
    """Reference rule: position of the θ-optimal cost vector, linear scan.

    ``min`` is stable, so duplicate-cost ties resolve to the first frontier
    position — exactly what :meth:`EnvelopeIndex.select` reproduces.
    """
    if not costs:
        raise ValueError("cannot bind theta over an empty frontier")
    return min(
        range(len(costs)), key=lambda i: theta_selection_key(costs[i], theta)
    )


@dataclass(frozen=True)
class EnvelopeIndex:
    """Sorted breakpoints plus the owning frontier position per segment.

    ``breakpoints`` are the switching θs in (0, 1); ``segments`` has one
    entry per gap between consecutive breakpoints (``len(breakpoints)+1``
    entries), each the index into the frontier's plan list of the plan
    optimal on that open segment.  All values are finite, so the structure
    survives strict JSON bit-identically.
    """

    breakpoints: tuple[float, ...]
    segments: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.segments) != len(self.breakpoints) + 1:
            raise ValueError(
                f"need {len(self.breakpoints) + 1} segment owners for "
                f"{len(self.breakpoints)} breakpoints, got {len(self.segments)}"
            )
        if any(not 0.0 < point < 1.0 for point in self.breakpoints):
            raise ValueError(f"breakpoints must lie in (0, 1): {self.breakpoints}")
        if list(self.breakpoints) != sorted(self.breakpoints):
            raise ValueError(f"breakpoints must be sorted: {self.breakpoints}")

    def select(self, costs: Sequence[Sequence[float]], theta: float) -> int:
        """Position of the θ-optimal plan in ``costs`` — O(log breakpoints).

        Bisecting alone is exact strictly inside a segment; at (or within
        float slack of) a breakpoint two owners tie, so the adjacent
        segments' owners join the candidate set and the selection key
        breaks the tie the same way the linear reference rule does.
        Candidates are compared in ascending position order, preserving
        the stable-``min`` first-position tiebreak.
        """
        segment = bisect_right(self.breakpoints, theta)
        candidates = {self.segments[segment]}
        if segment > 0:
            candidates.add(self.segments[segment - 1])
        if segment + 1 < len(self.segments):
            candidates.add(self.segments[segment + 1])
        return min(
            sorted(candidates),
            key=lambda i: theta_selection_key(costs[i], theta),
        )

    def select_plan(self, plans: Sequence[Plan], theta: float) -> Plan:
        """The θ-optimal plan of a frontier this index was built over."""
        return plans[self.select([plan.cost for plan in plans], theta)]

    # ------------------------------------------------------------------ wire

    def to_wire(self) -> dict[str, Any]:
        """JSON-compatible encoding (all values finite; inverse below).

        Breakpoints ship as-is rather than being recomputed on the far
        side: ``json.dumps``/``loads`` round-trips finite floats exactly
        (shortest-repr), so both ends of a wire hop bind every θ to the
        same segment.
        """
        return {
            "breakpoints": list(self.breakpoints),
            "segments": list(self.segments),
        }

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> "EnvelopeIndex":
        """Rebuild an index from :meth:`to_wire` output."""
        return cls(
            breakpoints=tuple(float(point) for point in data["breakpoints"]),
            segments=tuple(int(index) for index in data["segments"]),
        )


def build_envelope_index(plans: Sequence[Plan]) -> EnvelopeIndex:
    """Extract the breakpoint index from an envelope-filtered frontier.

    Breakpoints are the θs where the scalarized optimum changes identity
    (:func:`repro.cost.parametric.switching_points`); each segment's owner
    is the reference rule evaluated at the segment midpoint, which is exact
    because the optimum's identity is constant on the open segment.
    """
    if not plans:
        raise ValueError("cannot index an empty frontier")
    costs = [plan.cost for plan in plans]
    points = switching_points(costs)
    bounds = [0.0, *points, 1.0]
    segments = tuple(
        best_index_at(costs, (low + high) / 2.0)
        for low, high in zip(bounds, bounds[1:])
    )
    return EnvelopeIndex(breakpoints=tuple(points), segments=segments)
