"""Closed-form complexity counts (paper Section 5) and optimality checks.

The paper's analysis predicts, per worker with ``l`` constraints:

* admissible join results: ``O(2^n * (3/4)^l)`` linear, ``O(2^n * (7/8)^l)``
  bushy (Theorems 2 and 3);
* split work: ``O(n * 2^n * (3/4)^l)`` linear (Theorem 6) and
  ``O(3^n * (21/27)^l)`` bushy (Theorem 7);
* and that no partitioning method in the restricted design space can do
  better than factors 3/4 and 7/8 per worker doubling (Theorems 8 and 9).

This module provides *exact* counts matching the generator in
``repro.core.partitioning`` and the split enumeration in
``repro.core.worker`` — property tests compare them against exhaustive
enumeration — plus a brute-force checker for the Theorem 8/9 design space.
"""

from __future__ import annotations

from itertools import product

from repro.config import PlanSpace
from repro.core.constraints import max_constraints


def _check_args(n_tables: int, n_constraints: int, plan_space: PlanSpace) -> None:
    if n_tables < 1:
        raise ValueError("need at least one table")
    limit = max_constraints(n_tables, plan_space)
    if not 0 <= n_constraints <= limit:
        raise ValueError(
            f"{n_constraints} constraints out of range [0, {limit}] "
            f"for {n_tables} tables in the {plan_space} space"
        )


def admissible_result_count(
    n_tables: int, n_constraints: int, plan_space: PlanSpace
) -> int:
    """Exact number of admissible table sets (including empty and singletons).

    Product over groups: a constrained pair keeps 3 of 4 subsets, a free pair
    4, a constrained triple 7 of 8, a free triple 8, a leftover singleton 2.
    Equals ``len(admissible_join_results(...))`` exactly, and matches the
    asymptotic ``2^n * (3/4)^l`` / ``2^n * (7/8)^l`` of Theorems 2/3.
    """
    _check_args(n_tables, n_constraints, plan_space)
    size = plan_space.group_size
    n_groups = n_tables // size
    leftover = n_tables - size * n_groups
    constrained_factor = 3 if plan_space is PlanSpace.LINEAR else 7
    free_factor = 1 << size
    return (
        constrained_factor**n_constraints
        * free_factor ** (n_groups - n_constraints)
        * (1 << leftover)
    )


def admissible_result_count_at_least_2(
    n_tables: int, n_constraints: int, plan_space: PlanSpace
) -> int:
    """Admissible sets of cardinality >= 2 — the DP's actual iteration count.

    Subtracts the empty set and the admissible singletons.  Singleton
    ``{y}`` (linear) is pruned by a constraint ``x ≺ y`` in the generator,
    so each linear constraint removes one singleton; bushy constraints never
    exclude singletons.
    """
    total = admissible_result_count(n_tables, n_constraints, plan_space)
    if plan_space is PlanSpace.LINEAR:
        singletons = n_tables - n_constraints
    else:
        singletons = n_tables
    return total - singletons - 1


def linear_split_count(n_tables: int, n_constraints: int) -> int:
    """Exact number of splits tried by a linear worker (Theorem 6 quantity).

    A split is a pair ``(U, u)``: an admissible join result ``U`` with
    ``|U| >= 2`` and an inner operand ``u ∈ U`` that no constraint blocks
    from being joined last.  Computed by summing, per table ``u``, the
    number of admissible sets in which ``u`` may be last, via per-group
    products; singleton sets ``{u}`` are excluded.
    """
    _check_args(n_tables, n_constraints, PlanSpace.LINEAR)
    n_groups = n_tables // 2
    leftover = n_tables - 2 * n_groups

    def other_groups_factor(own_group: int) -> int:
        factor = 1
        for group in range(n_groups):
            if group == own_group:
                continue
            factor *= 3 if group < n_constraints else 4
        return factor * (1 << leftover)

    total = 0
    for u in range(n_tables):
        group = u // 2
        if group >= n_groups:
            # Leftover table: any admissible set containing u allows u last.
            own = 1  # the leftover "group" contributes {u}
            factor = 1
            for g in range(n_groups):
                factor *= 3 if g < n_constraints else 4
            count = own * factor
        elif group < n_constraints:
            # Constrained pair with bit-0 direction: first ≺ second; by
            # symmetry the count is direction-independent.
            # u == before: group subset must contain u but not the 'after'
            # table -> exactly {u}.  u == after: admissible subsets containing
            # 'after' must contain 'before' -> exactly the full pair.
            own = 1
            count = own * other_groups_factor(group)
        else:
            # Free pair: subsets containing u: {u} and the pair -> 2.
            own = 2
            count = own * other_groups_factor(group)
        total += count
        # Remove the singleton case U == {u}: it occurs iff {u} alone is an
        # admissible own-group subset and all other groups contribute the
        # empty set.  For a constrained 'after' table the own-group subset
        # containing u is the full pair, so no singleton arises.
        if not (group < n_constraints and u % 2 == 1):
            total -= 1
    return total


def bushy_assignment_count(n_tables: int, n_constraints: int) -> int:
    """Exact total of per-table (left/right/out) assignments (Theorem 7).

    Every way of assigning each table to the left operand, the right operand,
    or "absent", such that no constraint is violated by either operand or by
    their union: an unconstrained triple admits ``3^3 = 27`` local
    assignments, a constrained one ``21``, a leftover table ``3``.  This
    equals ``sum over admissible U of |bushy_operands(U)|`` (degenerate
    operands included), the quantity behind the 21/27 factor.
    """
    _check_args(n_tables, n_constraints, PlanSpace.BUSHY)
    n_groups = n_tables // 3
    leftover = n_tables - 3 * n_groups
    return 21**n_constraints * 27 ** (n_groups - n_constraints) * 3**leftover


def work_reduction_factor(plan_space: PlanSpace) -> float:
    """Per-worker work shrink each time the worker count doubles."""
    return 0.75 if plan_space is PlanSpace.LINEAR else 21.0 / 27.0


def memory_reduction_factor(plan_space: PlanSpace) -> float:
    """Per-worker admissible-set shrink each time the worker count doubles."""
    return 0.75 if plan_space is PlanSpace.LINEAR else 7.0 / 8.0


def best_two_way_partition_factor(plan_space: PlanSpace) -> float:
    """Brute-force verification of Theorems 8 and 9.

    Searches the restricted design space the paper analyzes: divide the
    power set of query tables into the 4 (linear) or 8 (bushy) classes
    defined by membership of 2 (resp. 3) fixed tables, and assign each class
    to one or both of two workers.  A valid assignment must let each worker
    build complete plans (see the theorems' arguments, encoded below) and
    jointly cover the plan space.  Returns the minimum achievable value of
    ``max(worker class count) / total class count`` — the paper proves this
    is 3/4 (linear) and 7/8 (bushy).
    """
    n_classes = 4 if plan_space is PlanSpace.LINEAR else 8
    full_class = n_classes - 1  # the class containing all fixed tables
    best = 1.0
    # Assignment: for each class, a value in {1, 2, 3} = {worker A, worker B,
    # both}.  Classes are indexed by the bitmask of fixed tables present.
    for assignment in product((1, 2, 3), repeat=n_classes):
        workers_a = {c for c in range(n_classes) if assignment[c] & 1}
        workers_b = {c for c in range(n_classes) if assignment[c] & 2}
        if not _covers_plan_space(workers_a, workers_b, plan_space):
            continue
        if full_class not in workers_a or full_class not in workers_b:
            continue
        load = max(len(workers_a), len(workers_b)) / n_classes
        best = min(best, load)
    return best


def _covers_plan_space(
    classes_a: set[int], classes_b: set[int], plan_space: PlanSpace
) -> bool:
    """Whether two workers' class sets jointly cover all plans.

    A plan is covered by a worker iff every intermediate-result class the
    plan uses is assigned to that worker.  We enumerate the class sequences
    plans can produce (projected onto the fixed tables) and require each to
    be a subset of one worker's classes.
    """
    if plan_space is PlanSpace.LINEAR:
        # Left-deep plans add one table at a time; projected onto fixed
        # tables {x, y} (class bits: 1 = x, 2 = y), a plan passes through one
        # of two maximal chains: {} -> {x} -> {x,y} or {} -> {y} -> {x,y}.
        required_chains = [{0, 1, 3}, {0, 2, 3}]
    else:
        # Bushy plans over fixed tables {x, y, z} (bits 1, 2, 4): the classes
        # a plan needs are any antichain-closure; enumerating maximal
        # families is complex, so we enumerate all plans' class *sets* over
        # a 6-table universe instead.
        required_chains = _bushy_required_class_sets()
    for chain in required_chains:
        if not (chain <= classes_a or chain <= classes_b):
            return False
    return True


_BUSHY_CLASS_SETS_CACHE: list[set[int]] | None = None


def _bushy_required_class_sets() -> list[set[int]]:
    """Class-usage sets of all bushy trees over 6 tables, projected on 3.

    Tables 0, 1, 2 are the fixed triple (class bits 1, 2, 4); tables 3-5 are
    "other" tables that make independent subtrees possible.  Enumerates every
    bushy tree over the 6 tables and records which of the 8 classes its
    intermediate results (including the final result, excluding leaves)
    touch, *plus* the classes of its leaf projections that matter (the empty
    class 0 is always required).  The resulting distinct sets drive the
    coverage check of Theorem 9.
    """
    global _BUSHY_CLASS_SETS_CACHE
    if _BUSHY_CLASS_SETS_CACHE is not None:
        return _BUSHY_CLASS_SETS_CACHE
    n = 6
    fixed_mask = 0b000111
    full = (1 << n) - 1

    split_cache: dict[int, list[tuple[frozenset[int], ...]]] = {}

    def class_of(mask: int) -> int:
        return mask & fixed_mask

    def tree_class_sets(mask: int) -> list[frozenset[int]]:
        """All achievable sets of intermediate-result classes for ``mask``."""
        if mask & (mask - 1) == 0:
            return [frozenset()]
        cached = split_cache.get(mask)
        if cached is not None:
            return list(cached)
        results: set[frozenset[int]] = set()
        sub = (mask - 1) & mask
        while sub:
            rest = mask ^ sub
            if sub < rest:  # unordered split; operand order is irrelevant here
                for left_classes in tree_class_sets(sub):
                    for right_classes in tree_class_sets(rest):
                        results.add(
                            left_classes | right_classes | {class_of(mask)}
                        )
            sub = (sub - 1) & mask
        out = sorted(results, key=sorted)
        split_cache[mask] = tuple(out)
        return out

    class_sets = [set(classes) | {0} for classes in tree_class_sets(full)]
    # Keep only maximal sets: a worker covering a maximal class set covers
    # every plan whose class usage is a subset of it, so checking maximal
    # sets is necessary and sufficient for full coverage.
    unique: list[set[int]] = []
    for candidate in sorted(class_sets, key=len, reverse=True):
        if not any(candidate <= existing for existing in unique):
            unique.append(candidate)
    _BUSHY_CLASS_SETS_CACHE = unique
    return unique
