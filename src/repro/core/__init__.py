"""The paper's core contribution: plan-space partitioning and parallel DP."""

from repro.core.constraints import (
    BushyConstraint,
    Constraint,
    LinearConstraint,
    constraint_groups,
    max_constraints,
    max_partitions,
    partition_constraints,
    usable_partitions,
)
from repro.core.partitioning import (
    admissible_join_results,
    admissible_results_by_size,
    is_admissible,
)
from repro.core.worker import PartitionResult, WorkerStats, optimize_partition
from repro.core.serial import optimize_serial
from repro.core.master import MasterResult, optimize_parallel

__all__ = [
    "BushyConstraint",
    "Constraint",
    "LinearConstraint",
    "constraint_groups",
    "max_constraints",
    "max_partitions",
    "partition_constraints",
    "usable_partitions",
    "admissible_join_results",
    "admissible_results_by_size",
    "is_admissible",
    "PartitionResult",
    "WorkerStats",
    "optimize_partition",
    "optimize_serial",
    "MasterResult",
    "optimize_parallel",
]
