"""Heterogeneous worker scheduling (paper Section 4.1, footnote 1).

The paper notes: "If worker nodes are heterogeneous then the number of
partitions treated by a worker should be proportional to its performance."
Because all partitions have exactly the same size (skew-free partitioning),
scheduling reduces to splitting ``m`` equal chunks proportionally to worker
speeds — no knowledge of the query is needed.

:func:`assign_partitions` produces such an assignment (largest-remainder
apportionment, ties to the faster worker, then a greedy rebalance).
:func:`simulate_heterogeneous_run` composes the per-worker simulated time
when each worker processes several partitions sequentially at its own speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.cluster.serialization import plans_bytes, task_bytes
from repro.cluster.simulator import ClusterModel, worker_compute_seconds
from repro.core.master import MasterResult
from repro.query.query import Query


@dataclass(frozen=True)
class WorkerProfile:
    """A worker node with a relative performance factor.

    ``speed`` is relative throughput: a worker with speed 2.0 processes a
    partition in half the time of a speed-1.0 worker.
    """

    name: str
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"speed must be > 0, got {self.speed}")


def assign_partitions(
    n_partitions: int, workers: Sequence[WorkerProfile]
) -> list[list[int]]:
    """Assign partition IDs to workers proportionally to their speeds.

    Every partition is assigned to exactly one worker; each worker's load is
    ``round(m * speed_share)`` up to rounding (largest remainder).  Workers
    may receive zero partitions if they are much slower than the rest.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if not workers:
        raise ValueError("need at least one worker")
    total_speed = sum(worker.speed for worker in workers)
    ideal = [n_partitions * worker.speed / total_speed for worker in workers]
    counts = [int(share) for share in ideal]
    remainders = [share - count for share, count in zip(ideal, counts)]
    missing = n_partitions - sum(counts)
    # Largest remainder first; break ties toward faster workers.
    order = sorted(
        range(len(workers)),
        key=lambda i: (remainders[i], workers[i].speed),
        reverse=True,
    )
    for i in order[:missing]:
        counts[i] += 1
    assignment: list[list[int]] = []
    next_partition = 0
    for count in counts:
        assignment.append(list(range(next_partition, next_partition + count)))
        next_partition += count
    return assignment


def makespan(
    assignment: Sequence[Sequence[int]], workers: Sequence[WorkerProfile]
) -> float:
    """Completion time in partition-units: max over workers of load/speed."""
    return max(
        (len(partitions) / worker.speed)
        for partitions, worker in zip(assignment, workers)
    )


@dataclass
class HeterogeneousTiming:
    """Simulated timing of an MPQ run over heterogeneous workers."""

    assignment: list[list[int]]
    worker_compute_s: list[float]
    dispatch_s: float
    collect_s: float
    network_bytes: int

    @property
    def workers_done_s(self) -> float:
        """When the slowest worker finishes (dispatch + setup excluded here
        are already folded into worker_compute_s by the caller)."""
        return max(self.worker_compute_s, default=0.0)

    @property
    def total_s(self) -> float:
        """End-to-end simulated time."""
        return self.dispatch_s + self.workers_done_s + self.collect_s


def simulate_heterogeneous_run(
    cluster: ClusterModel,
    query: Query,
    result: MasterResult,
    workers: Sequence[WorkerProfile],
) -> HeterogeneousTiming:
    """Compose simulated timing when workers own several partitions each.

    A worker processes its partitions sequentially at its own speed; the
    master sends one task message per *partition* (the IDs must reach their
    owner) and receives one result message per partition, as in the
    homogeneous case.
    """
    assignment = assign_partitions(len(result.partition_results), workers)
    per_task = task_bytes(query)
    dispatch_s = len(result.partition_results) * cluster.network.transfer_seconds(
        per_task
    )
    collect_bytes = [
        plans_bytes(partition.plans) for partition in result.partition_results
    ]
    collect_s = sum(
        cluster.network.transfer_seconds(size) for size in collect_bytes
    )
    compute = []
    for partitions, worker in zip(assignment, workers):
        base = sum(
            worker_compute_seconds(cluster, result.partition_results[pid].stats)
            for pid in partitions
        )
        setup = cluster.task_setup_s if partitions else 0.0
        compute.append(setup + base / worker.speed)
    return HeterogeneousTiming(
        assignment=assignment,
        worker_compute_s=compute,
        dispatch_s=dispatch_s,
        collect_s=collect_s,
        network_bytes=len(result.partition_results) * per_task + sum(collect_bytes),
    )
