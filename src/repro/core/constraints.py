"""Join-order constraints and partition-ID decoding (paper Algorithm 3).

The plan space for a query is divided into ``m = 2^l`` equally sized
partitions by fixing ``l`` binary precedence decisions:

* **linear** (left-deep) plan spaces constrain *pairs* of consecutively
  numbered tables: ``Q_{2i} ≺ Q_{2i+1}`` or its complement — table ``x`` must
  appear before table ``y`` in the join order, which excludes every
  intermediate result containing ``y`` but not ``x``;
* **bushy** plan spaces constrain *triples*: ``Q_{3i} ⪯ Q_{3i+1} | Q_{3i+2}``
  or its complement — following table ``z`` from its leaf to the plan root,
  ``x`` must appear no later than ``y``, which excludes every intermediate
  result containing ``y`` and ``z`` but not ``x``.

Bit ``i`` of the partition ID selects the direction of the ``i``-th
constraint; the ensemble of all IDs covers the full plan space.  Partition
IDs are 0-based here (0 … m-1); the paper numbers them 1 … m.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PlanSpace


@dataclass(frozen=True)
class LinearConstraint:
    """``before ≺ after``: table ``before`` joins earlier than ``after``.

    Excludes intermediate results containing ``after`` but not ``before``.
    """

    before: int
    after: int

    def __post_init__(self) -> None:
        if self.before == self.after:
            raise ValueError("a precedence constraint needs two distinct tables")

    def excludes(self, mask: int) -> bool:
        """Whether the table set ``mask`` is inadmissible under this constraint.

        Singleton sets are never excluded: scans are always constructible
        (the paper treats singletons separately in Algorithm 2).
        """
        if mask & (mask - 1) == 0:
            return False
        return bool(mask & (1 << self.after)) and not mask & (1 << self.before)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.before} ≺ Q{self.after}"


@dataclass(frozen=True)
class BushyConstraint:
    """``x ⪯ y | z``: following ``z`` to the root, ``x`` appears no later than ``y``.

    Excludes intermediate results containing ``y`` and ``z`` but not ``x``.
    """

    x: int
    y: int
    z: int

    def __post_init__(self) -> None:
        if len({self.x, self.y, self.z}) != 3:
            raise ValueError("a bushy constraint needs three distinct tables")

    def excludes(self, mask: int) -> bool:
        """Whether the table set ``mask`` is inadmissible under this constraint."""
        yz = (1 << self.y) | (1 << self.z)
        return mask & yz == yz and not mask & (1 << self.x)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.x} ⪯ Q{self.y} | Q{self.z}"


Constraint = LinearConstraint | BushyConstraint


def max_constraints(n_tables: int, plan_space: PlanSpace) -> int:
    """Maximum number of constraints: one per disjoint pair/triple.

    This is the paper's ``⌊n/2⌋`` for linear and ``⌊n/3⌋`` for bushy spaces.
    """
    if n_tables < 1:
        raise ValueError("need at least one table")
    return n_tables // plan_space.group_size


def max_partitions(n_tables: int, plan_space: PlanSpace) -> int:
    """Maximum degree of parallelism MPQ can exploit (``2^max_constraints``)."""
    return 1 << max_constraints(n_tables, plan_space)


def usable_partitions(n_tables: int, n_workers: int, plan_space: PlanSpace) -> int:
    """Largest power of two ≤ both ``n_workers`` and the space's maximum.

    The paper assumes ``m`` is a power of two and notes that otherwise only a
    power-of-two subset of workers is used.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    cap = min(n_workers, max_partitions(n_tables, plan_space))
    return 1 << (cap.bit_length() - 1)


def constraint_groups(n_tables: int, plan_space: PlanSpace) -> list[tuple[int, ...]]:
    """The disjoint table groups constraints are defined on.

    ``Subsets[Linear]``/``Subsets[Bushy]`` of Algorithm 4: consecutive pairs
    for linear spaces, consecutive triples for bushy spaces.  Leftover tables
    (when ``n`` is not a multiple of the group size) form trailing singleton
    groups that never carry constraints.
    """
    size = plan_space.group_size
    groups = [
        tuple(range(size * i, size * i + size))
        for i in range(n_tables // size)
    ]
    for leftover in range(size * (n_tables // size), n_tables):
        groups.append((leftover,))
    return groups


def _single_constraint(
    plan_space: PlanSpace, group_index: int, precedence: int
) -> Constraint:
    """The paper's ``Constraint[Linear]``/``Constraint[Bushy]`` functions."""
    if plan_space is PlanSpace.LINEAR:
        first, second = 2 * group_index, 2 * group_index + 1
        if precedence == 0:
            return LinearConstraint(before=first, after=second)
        return LinearConstraint(before=second, after=first)
    first, second, third = 3 * group_index, 3 * group_index + 1, 3 * group_index + 2
    if precedence == 0:
        return BushyConstraint(x=first, y=second, z=third)
    return BushyConstraint(x=second, y=first, z=third)


def partition_constraints(
    n_tables: int,
    partition_id: int,
    n_partitions: int,
    plan_space: PlanSpace,
) -> tuple[Constraint, ...]:
    """Decode a partition ID into its constraint set (Algorithm 3).

    ``n_partitions`` must be a power of two no larger than
    :func:`max_partitions`; ``partition_id`` is 0-based.
    """
    if n_partitions < 1 or n_partitions & (n_partitions - 1):
        raise ValueError(f"n_partitions must be a power of two, got {n_partitions}")
    if not 0 <= partition_id < n_partitions:
        raise ValueError(
            f"partition_id must be in [0, {n_partitions}), got {partition_id}"
        )
    n_constraints = n_partitions.bit_length() - 1
    if n_constraints > max_constraints(n_tables, plan_space):
        raise ValueError(
            f"{n_partitions} partitions need {n_constraints} constraints but "
            f"{n_tables} tables admit at most "
            f"{max_constraints(n_tables, plan_space)} in the {plan_space} space"
        )
    return tuple(
        _single_constraint(plan_space, i, (partition_id >> i) & 1)
        for i in range(n_constraints)
    )
