"""Serial dynamic-programming optimization (the single-node baseline).

Running MPQ with a single partition imposes no constraints, so the worker
explores the full plan space in the classical table-set order — the paper
notes that "if we use one worker then MPQ is equivalent to the classical
query optimization algorithms as it treats the same table sets in the same
order".  This module exposes that case directly: it is both the baseline the
paper computes speedups against and the reference answer for tests.
"""

from __future__ import annotations

from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.core.worker import PartitionResult, optimize_partition
from repro.plans.plan import Plan, plan_tie_key
from repro.query.query import Query


def optimize_serial(
    query: Query, settings: OptimizerSettings = DEFAULT_SETTINGS
) -> PartitionResult:
    """Optimize ``query`` with classical (unpartitioned) dynamic programming.

    Equivalent to Selinger's algorithm for linear plan spaces and to
    DP over all subsets (Vance & Maier) for bushy plan spaces; for multiple
    objectives it is the serial multi-objective DP of Trummer & Koch.

    The enumeration core is chosen by ``settings.backend`` through the
    worker's capability registry (the default ``AUTO`` resolves to the
    fastest capable backend); the core that ran is recorded in
    ``result.stats.backend_used``.
    """
    return optimize_partition(query, partition_id=0, n_partitions=1, settings=settings)


def best_plan(result: PartitionResult) -> Plan:
    """The cheapest plan by the first metric, with a deterministic tie rule.

    Ties on the first metric are broken by the remaining cost metrics and
    then by the structural plan signature
    (:func:`repro.plans.plan.plan_tie_key`), *never* by generation order —
    so the selected plan is identical across enumeration backends and
    across any reordering of the result list.
    """
    if not result.plans:
        raise ValueError("optimization produced no plan")
    return min(result.plans, key=plan_tie_key)
