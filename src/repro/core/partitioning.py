"""Admissible join-result generation (paper Algorithm 4).

Constraints restrict which table sets may appear as intermediate join
results.  ``AdmJoinResults`` builds the admissible sets directly — by a
Cartesian product of per-group admissible subsets — instead of filtering all
``2^n`` subsets, so each worker's set-generation work is proportional to its
*own* partition size, not to the full plan space.

Per group, the admissible subsets are:

* an unconstrained pair/triple/singleton: its full power set;
* a linear-constrained pair ``x ≺ y``: the power set minus ``{y}``
  (3 of 4 subsets — the source of the per-constraint 3/4 factor);
* a bushy-constrained triple ``x ⪯ y|z``: the power set minus ``{y, z}``
  (7 of 8 subsets — the per-constraint 7/8 factor).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config import PlanSpace
from repro.core.constraints import (
    Constraint,
    LinearConstraint,
    constraint_groups,
)
from repro.util.bitset import iter_subsets, mask_of, popcount


def group_admissible_subsets(
    group: tuple[int, ...], constraint: Constraint | None
) -> list[int]:
    """``ConstrainedPowerSet``: admissible subsets of one table group.

    ``constraint`` is the (single) constraint defined on this group, if any;
    constraints always live entirely inside one group.
    """
    group_mask = mask_of(group)
    subsets = list(iter_subsets(group_mask))
    if constraint is None:
        return subsets
    if isinstance(constraint, LinearConstraint):
        excluded = 1 << constraint.after
    else:
        excluded = (1 << constraint.y) | (1 << constraint.z)
    return [subset for subset in subsets if subset != excluded]


def _constraints_by_group(
    groups: Sequence[tuple[int, ...]], constraints: Sequence[Constraint]
) -> list[Constraint | None]:
    """Map each group to its constraint (or None)."""
    by_first_table: dict[int, Constraint] = {}
    for constraint in constraints:
        if isinstance(constraint, LinearConstraint):
            first = min(constraint.before, constraint.after)
        else:
            first = min(constraint.x, constraint.y, constraint.z)
        if first in by_first_table:
            raise ValueError(f"multiple constraints on the group of table {first}")
        by_first_table[first] = constraint
    assigned = []
    for group in groups:
        constraint = by_first_table.pop(group[0], None)
        if constraint is not None:
            members = set(group)
            tables = (
                {constraint.before, constraint.after}
                if isinstance(constraint, LinearConstraint)
                else {constraint.x, constraint.y, constraint.z}
            )
            if not tables <= members:
                raise ValueError(
                    f"constraint {constraint} does not fit group {group}"
                )
        assigned.append(constraint)
    if by_first_table:
        stray = next(iter(by_first_table.values()))
        raise ValueError(f"constraint {stray} is not aligned to any group")
    return assigned


def admissible_join_results(
    n_tables: int,
    constraints: Sequence[Constraint],
    plan_space: PlanSpace,
) -> list[int]:
    """All table sets admissible as join results (``AdmJoinResults``).

    Returns bitmasks including the empty set and singletons (exactly the
    Cartesian-product construction of Algorithm 4; the worker ignores sets of
    fewer than two tables).  The full query set is always included: every
    partition can build complete plans.
    """
    groups = constraint_groups(n_tables, plan_space)
    assigned = _constraints_by_group(groups, constraints)
    results = [0]
    for group, constraint in zip(groups, assigned):
        subsets = group_admissible_subsets(group, constraint)
        results = [partial | subset for partial in results for subset in subsets]
    return results


def admissible_results_by_size(
    n_tables: int,
    constraints: Sequence[Constraint],
    plan_space: PlanSpace,
) -> dict[int, list[int]]:
    """Admissible join results indexed by cardinality.

    Algorithm 2 iterates table sets of increasing cardinality ``k``; this is
    the index that makes "retrieve all sets with cardinality k" efficient.
    Sizes 0 and 1 are omitted (handled separately by the DP).
    """
    by_size: dict[int, list[int]] = {k: [] for k in range(2, n_tables + 1)}
    for mask in admissible_join_results(n_tables, constraints, plan_space):
        size = popcount(mask)
        if size >= 2:
            by_size[size].append(mask)
    return by_size


def is_admissible(mask: int, constraints: Sequence[Constraint]) -> bool:
    """Whether a table set survives every constraint (singletons always do)."""
    return not any(constraint.excludes(mask) for constraint in constraints)
