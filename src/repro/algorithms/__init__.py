"""End-to-end optimization algorithms: MPQ, SMA baseline, randomized search."""

from repro.algorithms.mpq import MPQReport, optimize_mpq
from repro.algorithms.sma import SMAReport, optimize_sma
from repro.algorithms.randomized import (
    greedy_operator_ordering,
    iterated_improvement,
    order_cost,
    plan_for_order,
    simulated_annealing,
)
from repro.algorithms.moq import (
    approximation_ratio,
    frontier_summary,
    optimize_multi_objective,
)

__all__ = [
    "MPQReport",
    "optimize_mpq",
    "SMAReport",
    "optimize_sma",
    "greedy_operator_ordering",
    "iterated_improvement",
    "order_cost",
    "plan_for_order",
    "simulated_annealing",
    "approximation_ratio",
    "frontier_summary",
    "optimize_multi_objective",
]
