"""Parametric query optimization (PQO) on top of MPQ.

The paper points out (Sections 2 and 4) that its partitioning scheme applies
unchanged to parametric query optimization — DP variants whose plan costs
depend on unknown parameters (Ganguly, VLDB 1998; Hulgeri & Sudarshan,
VLDB 2003; Ioannidis et al., VLDBJ 1997).  This module realizes that claim:
only the pruning function changes.

The parametric cost model here is linear in one parameter θ ∈ [0, 1]::

    cost(plan, θ) = (1-θ) · execution_time(plan) + θ · output_rows(plan)

Both endpoint metrics are additive, so for every fixed θ the scalarized
problem is a classical DP; keeping the *lower envelope* of cost lines per
table set yields, in a single pass, a plan set containing an optimal plan
for every θ simultaneously.  The master's FinalPrune merges partitions'
envelopes into the global one, exactly as for Pareto frontiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.mpq import MPQReport, optimize_mpq
from repro.cluster.simulator import DEFAULT_CLUSTER, ClusterModel
from repro.config import PARAMETRIC_OBJECTIVES, Backend, OptimizerSettings, PlanSpace
from repro.core.master import PartitionExecutor
from repro.cost.parametric import scalarize, switching_points
from repro.plans.plan import Plan
from repro.query.query import Query


@dataclass
class PQOResult:
    """The parametric-optimal plan set of one query."""

    report: MPQReport

    @property
    def plans(self) -> list[Plan]:
        """Plans on the lower envelope — each optimal for some θ."""
        return self.report.plans

    def best_plan_for(self, theta: float) -> Plan:
        """The cheapest plan at a concrete parameter value."""
        if not self.plans:
            raise ValueError("optimization produced no plan")
        return min(self.plans, key=lambda plan: scalarize(plan.cost, theta))

    def cost_at(self, theta: float) -> float:
        """Scalarized cost of the optimal plan at θ (the envelope value)."""
        return scalarize(self.best_plan_for(theta).cost, theta)

    def switching_thetas(self) -> list[float]:
        """θ values where the optimal plan changes identity."""
        return switching_points([plan.cost for plan in self.plans])


def parametric_settings(
    plan_space: PlanSpace = PlanSpace.LINEAR,
    backend: Backend = Backend.AUTO,
) -> OptimizerSettings:
    """Optimizer settings for one-parameter linear parametric optimization.

    ``backend`` selects the enumeration core; the default ``AUTO`` resolves
    to the fastest backend declaring
    :attr:`repro.core.worker.Capability.PARAMETRIC_COSTS`.
    """
    return OptimizerSettings(
        plan_space=plan_space,
        objectives=PARAMETRIC_OBJECTIVES,
        parametric=True,
        backend=backend,
    )


def optimize_parametric(
    query: Query,
    n_workers: int = 1,
    plan_space: PlanSpace = PlanSpace.LINEAR,
    cluster: ClusterModel = DEFAULT_CLUSTER,
    executor: PartitionExecutor | None = None,
    backend: Backend = Backend.AUTO,
) -> PQOResult:
    """Find plans covering every parameter value, in parallel via MPQ."""
    report = optimize_mpq(
        query, n_workers, parametric_settings(plan_space, backend),
        cluster, executor,
    )
    return PQOResult(report=report)
