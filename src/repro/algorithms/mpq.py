"""MPQ — massively parallel query optimization, end to end.

Thin composition of the core pieces: run Algorithm 1 (master + workers) on
an executor, then attach the simulated-cluster timing and network accounting
that the paper's figures report.  This is the main entry point library users
call; ``repro.optimize`` re-exports it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.simulator import (
    DEFAULT_CLUSTER,
    ClusterModel,
    SimulatedTiming,
    simulate_mpq_run,
)
from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.core.master import MasterResult, PartitionExecutor, optimize_parallel
from repro.plans.plan import Plan
from repro.query.query import Query


@dataclass
class MPQReport:
    """Everything one MPQ run produces: plans, per-partition stats, timing."""

    result: MasterResult
    simulated: SimulatedTiming
    settings: OptimizerSettings

    @property
    def best(self) -> Plan:
        """Cheapest plan by the first metric."""
        return self.result.best

    @property
    def plans(self) -> list[Plan]:
        """All returned plans (singleton, or the Pareto frontier)."""
        return self.result.plans

    @property
    def n_partitions(self) -> int:
        """Partitions actually used (largest supported power of two)."""
        return self.result.n_partitions

    @property
    def backend_used(self) -> str:
        """The enumeration backend that ran the worker DP (observability).

        With ``Backend.AUTO`` this reports what AUTO resolved to — the only
        way to tell an intended fastdp run from a routing surprise.
        """
        return self.result.backend_used

    @property
    def simulated_time_ms(self) -> float:
        """Simulated end-to-end optimization time (paper's "Time" axis)."""
        return self.simulated.total_ms

    @property
    def max_worker_time_ms(self) -> float:
        """Simulated slowest-worker compute time (paper's "W-Time" axis)."""
        return self.simulated.max_worker_compute_s * 1e3

    @property
    def network_bytes(self) -> int:
        """Total network traffic (paper's "Network (bytes)" axis)."""
        return self.simulated.network_bytes

    @property
    def max_worker_memory_relations(self) -> int:
        """Peak per-worker memotable entries (paper's "Memory (relations)")."""
        return self.result.max_worker_table_entries


def optimize_mpq(
    query: Query,
    n_workers: int,
    settings: OptimizerSettings = DEFAULT_SETTINGS,
    cluster: ClusterModel = DEFAULT_CLUSTER,
    executor: PartitionExecutor | None = None,
) -> MPQReport:
    """Optimize ``query`` with MPQ over ``n_workers`` workers.

    ``executor`` selects how partition tasks physically run (serial loop by
    default; see :mod:`repro.cluster.executors`); ``cluster`` parameterizes
    the simulated shared-nothing timing attached to the report.
    """
    result = optimize_parallel(query, n_workers, settings, executor)
    simulated = simulate_mpq_run(cluster, query, result)
    return MPQReport(result=result, simulated=simulated, settings=settings)
