"""SMA — the fine-grained shared-memory-style baseline (paper Section 6.1).

The paper compares MPQ against "an algorithm representing the fine-grained
approaches to parallelizing query optimization proposed so far" [Han et al.
2008, 2009]: a central master assigns *individual table sets* to workers,
round by round over result cardinality, and partial plans (memotable
entries) must be visible to all workers.

On a shared-nothing architecture that design implies, per cardinality level:

1. the master sends each worker the list of table sets it must solve;
2. workers compute best plans for their sets — using the memotable built in
   earlier rounds, which they can only have if it was *shipped* to them;
3. workers return their new entries; the master broadcasts the merged delta
   to every worker for the next round.

This module emulates exactly that: the DP itself runs in-process (producing
the same optimal plans as serial DP — an invariant under test), while the
per-worker operation counts and the per-round message sizes drive the same
simulated cluster model MPQ uses.  The memotable broadcast makes traffic
O(2^n · m) bytes — the hundreds of megabytes the paper reports — and the
per-round barriers add 2·(n-1) communication rounds, versus MPQ's one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.network import NetworkAccountant
from repro.cluster.serialization import (
    memo_entries_bytes,
    query_bytes,
    sma_task_bytes,
)
from repro.cluster.simulator import DEFAULT_CLUSTER, ClusterModel
from repro.config import DEFAULT_SETTINGS, OptimizerSettings, PlanSpace
from repro.cost.costmodel import CostModel
from repro.cost.pruning import PlanTable, make_pruning
from repro.plans.plan import Plan
from repro.query.query import Query
from repro.util.bitset import bits, iter_proper_nonempty_subsets


@dataclass
class SMARoundStats:
    """Instrumentation of one cardinality level (one task round)."""

    size: int
    n_sets: int
    #: Costed join candidates, per worker.
    worker_plans_considered: list[int]
    #: New memotable plans produced this round (shipped to everyone).
    new_entries: int
    round_bytes: int
    round_seconds: float


@dataclass
class SMAReport:
    """Result and accounting of one SMA run."""

    plans: list[Plan]
    n_workers: int
    rounds: list[SMARoundStats] = field(repr=False, default_factory=list)
    network_bytes: int = 0
    network_messages: int = 0
    simulated_seconds: float = 0.0
    #: Memotable size every worker must hold (entries) — SMA shares it all.
    memotable_entries: int = 0
    wall_time_s: float = 0.0

    @property
    def best(self) -> Plan:
        """Cheapest plan by the first metric."""
        if not self.plans:
            raise ValueError("optimization produced no plan")
        return min(self.plans, key=lambda plan: plan.cost[0])

    @property
    def simulated_time_ms(self) -> float:
        """Simulated end-to-end optimization time in milliseconds."""
        return self.simulated_seconds * 1e3


def _level_masks(n_tables: int, size: int) -> list[int]:
    """All table sets of the given cardinality, in ascending mask order."""
    # Gosper's hack: iterate k-subsets of an n-set in increasing mask order.
    masks = []
    mask = (1 << size) - 1
    limit = 1 << n_tables
    while mask < limit:
        masks.append(mask)
        low = mask & -mask
        ripple = mask + low
        mask = ripple | (((mask ^ ripple) >> 2) // low)
    return masks


def optimize_sma(
    query: Query,
    n_workers: int,
    settings: OptimizerSettings = DEFAULT_SETTINGS,
    cluster: ClusterModel = DEFAULT_CLUSTER,
) -> SMAReport:
    """Optimize ``query`` with the fine-grained SMA baseline.

    Produces the same optimal plans as serial DP; the report's traffic and
    simulated time reflect the shared-memotable, multi-round coordination
    pattern described above.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    started = time.perf_counter()
    n = query.n_tables
    cost_model = CostModel(query, settings)
    pruning = make_pruning(settings, n_tables=n)
    accountant = NetworkAccountant(model=cluster.network)
    report = SMAReport(plans=[], n_workers=n_workers)

    table: PlanTable = {}
    for table_number in range(n):
        for scan in cost_model.scan_plans(table_number):
            pruning.consider(table, scan.mask, scan.cost, scan.order, lambda s=scan: s)

    # Initial statistics distribution: the master sends the query (with
    # statistics) to every worker, as it does for MPQ.
    stats_bytes = query_bytes(query)
    elapsed = accountant.send_many([stats_bytes] * n_workers)

    stored_plans = sum(len(entry) for entry in table.values())
    for size in range(2, n + 1):
        level = _level_masks(n, size)
        # Round-robin assignment of table sets to workers (the paper's
        # master hands out "specific pairs of join operands" — we batch per
        # level, which favours SMA).
        assignments: list[list[int]] = [[] for _ in range(n_workers)]
        for index, mask in enumerate(level):
            assignments[index % n_workers].append(mask)

        # 1. Task dispatch: one message per worker naming its sets.
        round_seconds = accountant.send_many(
            [sma_task_bytes(len(sets)) for sets in assignments]
        )
        round_seconds += cluster.task_setup_s

        # 2. Workers solve their sets (emulated in-process, ops counted).
        worker_ops = []
        for sets in assignments:
            ops = 0
            for mask in sets:
                ops += _solve_set(mask, table, cost_model, pruning, settings)
            worker_ops.append(ops)
        round_seconds += max(worker_ops, default=0) * cluster.seconds_per_plan

        # 3. Result collection + memotable broadcast for the next round.
        new_stored = sum(len(entry) for entry in table.values())
        new_entries = new_stored - stored_plans
        stored_plans = new_stored
        collect = accountant.send_many(
            [
                memo_entries_bytes(_entries_of(assignments[w], table))
                for w in range(n_workers)
            ]
        )
        broadcast = 0.0
        if size < n and n_workers > 1:
            broadcast = accountant.send_many(
                [memo_entries_bytes(new_entries)] * n_workers
            )
        round_seconds += collect + broadcast

        report.rounds.append(
            SMARoundStats(
                size=size,
                n_sets=len(level),
                worker_plans_considered=worker_ops,
                new_entries=new_entries,
                round_bytes=0,  # filled below from the accountant delta
                round_seconds=round_seconds,
            )
        )
        elapsed += round_seconds

    # Final answer travels to the master once more (already counted above as
    # the last collection); expose the plans.
    report.plans = list(table.get(query.all_tables_mask, []))
    report.network_bytes = accountant.total_bytes
    report.network_messages = accountant.n_messages
    report.simulated_seconds = elapsed
    report.memotable_entries = len(table)
    report.wall_time_s = time.perf_counter() - started
    _fill_round_bytes(report)
    return report


def _entries_of(masks: list[int], table: PlanTable) -> int:
    """Stored plans for the given table sets (a worker's round output)."""
    return sum(len(table.get(mask, ())) for mask in masks)


def _solve_set(
    mask: int,
    table: PlanTable,
    cost_model: CostModel,
    pruning,
    settings: OptimizerSettings,
) -> int:
    """Find best plans for one table set; returns costed-candidate count."""
    ops = 0
    if settings.plan_space is PlanSpace.LINEAR:
        for inner in bits(mask):
            rest = mask ^ (1 << inner)
            left_plans = table.get(rest)
            if left_plans is None:
                continue
            right_plans = table[1 << inner]
            ops += _consider(left_plans, right_plans, mask, table, cost_model, pruning)
    else:
        for left_mask in iter_proper_nonempty_subsets(mask):
            left_plans = table.get(left_mask)
            right_plans = table.get(mask ^ left_mask)
            if left_plans is None or right_plans is None:
                continue
            ops += _consider(left_plans, right_plans, mask, table, cost_model, pruning)
    return ops


def _consider(
    left_plans: list[Plan],
    right_plans: list[Plan],
    mask: int,
    table: PlanTable,
    cost_model: CostModel,
    pruning,
) -> int:
    ops = 0
    for left in left_plans:
        for right in right_plans:
            for candidate in cost_model.join_candidates(left, right):
                ops += 1
                pruning.consider(
                    table,
                    mask,
                    candidate.cost,
                    candidate.order,
                    lambda l=left, r=right, c=candidate: cost_model.build_join(l, r, c),
                )
    return ops


def _fill_round_bytes(report: SMAReport) -> None:
    """Attribute total bytes to rounds proportionally to their messages.

    Round-level byte attribution is informational (plots use the total); an
    exact per-round split would require interleaving the accountant, which
    obscures the main flow.
    """
    total_rounds = len(report.rounds)
    if total_rounds == 0:
        return
    per_round = report.network_bytes // total_rounds
    for round_stats in report.rounds:
        round_stats.round_bytes = per_round
