"""Randomized join-order search: iterated improvement and simulated annealing.

The paper contrasts its DP parallelization with randomized algorithms
(Swami 1989; Ioannidis & Kang 1990), which are "easier to parallelize" but
offer no optimality guarantee.  These implementations serve as that
reference point: they search the left-deep order space by local moves and
are useful both as baselines in examples and to quantify how far heuristic
plans can be from the DP optimum.

For a fixed left-deep join order (and with interesting orders disabled) the
optimal operator choice of each join is independent of the others, so
:func:`plan_for_order` — greedy per-join operator selection — yields the
cheapest plan with that order.  The search therefore only needs to explore
the ``n!`` order space.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.cost.costmodel import CostModel
from repro.plans.plan import Plan
from repro.query.query import Query


def plan_for_order(
    order: Sequence[int], cost_model: CostModel
) -> Plan:
    """Cheapest left-deep plan realizing the given join order.

    Picks, at every join, the applicable operator with minimal first-metric
    cost — optimal for additive cost composition without interesting orders.
    """
    if not order:
        raise ValueError("join order must name at least one table")
    current = min(
        cost_model.scan_plans(order[0]), key=lambda plan: plan.cost[0]
    )
    for table_number in order[1:]:
        scan = min(
            cost_model.scan_plans(table_number), key=lambda plan: plan.cost[0]
        )
        candidates = cost_model.join_candidates(current, scan)
        cheapest = min(candidates, key=lambda candidate: candidate.cost[0])
        current = cost_model.build_join(current, scan, cheapest)
    return current


def order_cost(order: Sequence[int], cost_model: CostModel) -> float:
    """First-metric cost of the cheapest plan with the given join order."""
    return plan_for_order(order, cost_model).cost[0]


def _random_neighbour(
    order: list[int], rng: random.Random
) -> list[int]:
    """Swap two random positions (the classic join-order move)."""
    neighbour = list(order)
    i, j = rng.sample(range(len(order)), 2)
    neighbour[i], neighbour[j] = neighbour[j], neighbour[i]
    return neighbour


def greedy_operator_ordering(
    query: Query,
    settings: OptimizerSettings = DEFAULT_SETTINGS,
) -> Plan:
    """GOO (Fegaras): repeatedly join the pair with the smallest result.

    A deterministic bushy heuristic: maintain a forest of plans, and at each
    step join the two roots whose join result has minimal estimated
    cardinality (cheapest operator for that pair).  O(n^3) and often good,
    but — like all heuristics the paper contrasts DP against — without any
    optimality guarantee.
    """
    cost_model = CostModel(query, settings)
    forest: list[Plan] = [
        min(cost_model.scan_plans(t), key=lambda plan: plan.cost[0])
        for t in range(query.n_tables)
    ]
    while len(forest) > 1:
        best_pair: tuple[int, int] | None = None
        best_rows = float("inf")
        for i in range(len(forest)):
            for j in range(i + 1, len(forest)):
                rows = cost_model.cardinality.rows(
                    forest[i].mask | forest[j].mask
                )
                if rows < best_rows:
                    best_rows = rows
                    best_pair = (i, j)
        assert best_pair is not None
        i, j = best_pair
        left, right = forest[i], forest[j]
        candidate = min(
            cost_model.join_candidates(left, right),
            key=lambda c: c.cost[0],
        )
        joined = cost_model.build_join(left, right, candidate)
        forest = [
            plan for k, plan in enumerate(forest) if k not in (i, j)
        ]
        forest.append(joined)
    return forest[0]


def iterated_improvement(
    query: Query,
    settings: OptimizerSettings = DEFAULT_SETTINGS,
    n_restarts: int = 10,
    max_moves_without_gain: int = 50,
    seed: int = 0,
) -> Plan:
    """Iterated improvement: random restarts of randomized hill climbing."""
    if n_restarts < 1:
        raise ValueError("need at least one restart")
    rng = random.Random(seed)
    cost_model = CostModel(query, settings)
    best: Plan | None = None
    for _ in range(n_restarts):
        order = list(range(query.n_tables))
        rng.shuffle(order)
        current_cost = order_cost(order, cost_model)
        stale = 0
        while stale < max_moves_without_gain:
            neighbour = _random_neighbour(order, rng)
            neighbour_cost = order_cost(neighbour, cost_model)
            if neighbour_cost < current_cost:
                order, current_cost = neighbour, neighbour_cost
                stale = 0
            else:
                stale += 1
        plan = plan_for_order(order, cost_model)
        if best is None or plan.cost[0] < best.cost[0]:
            best = plan
    assert best is not None
    return best


def simulated_annealing(
    query: Query,
    settings: OptimizerSettings = DEFAULT_SETTINGS,
    initial_temperature: float | None = None,
    cooling: float = 0.95,
    moves_per_temperature: int = 20,
    min_temperature_ratio: float = 1e-4,
    seed: int = 0,
) -> Plan:
    """Simulated annealing over left-deep join orders (Ioannidis & Kang)."""
    if not 0.0 < cooling < 1.0:
        raise ValueError(f"cooling must be in (0, 1), got {cooling}")
    rng = random.Random(seed)
    cost_model = CostModel(query, settings)
    order = list(range(query.n_tables))
    rng.shuffle(order)
    current_cost = order_cost(order, cost_model)
    best_order, best_cost = list(order), current_cost
    temperature = (
        initial_temperature if initial_temperature is not None else current_cost * 0.1
    )
    floor = max(temperature * min_temperature_ratio, 1e-12)
    while temperature > floor:
        for _ in range(moves_per_temperature):
            neighbour = _random_neighbour(order, rng)
            neighbour_cost = order_cost(neighbour, cost_model)
            delta = neighbour_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                order, current_cost = neighbour, neighbour_cost
                if current_cost < best_cost:
                    best_order, best_cost = list(order), current_cost
        temperature *= cooling
    return plan_for_order(best_order, cost_model)
