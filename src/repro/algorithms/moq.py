"""Multi-objective query optimization helpers (paper Sections 4/6, Figure 4-5).

MPQ handles multiple cost metrics by swapping the pruning function — the
worker DP is untouched.  This module provides the convenience entry point
with the paper's two metrics (execution time, buffer space) and the α
parameter of the approximate pruning scheme, plus frontier-quality measures
used by Table 1 and by tests.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms.mpq import MPQReport, optimize_mpq
from repro.cluster.simulator import DEFAULT_CLUSTER, ClusterModel
from repro.config import MULTI_OBJECTIVE, Backend, OptimizerSettings, PlanSpace
from repro.core.master import PartitionExecutor
from repro.plans.plan import Plan
from repro.query.query import Query


def optimize_multi_objective(
    query: Query,
    n_workers: int,
    alpha: float = 10.0,
    plan_space: PlanSpace = PlanSpace.LINEAR,
    cluster: ClusterModel = DEFAULT_CLUSTER,
    executor: PartitionExecutor | None = None,
    backend: Backend = Backend.AUTO,
) -> MPQReport:
    """MPQ with the paper's two cost metrics and α-approximate pruning.

    The default ``alpha=10`` matches the paper's setting "unless noted
    otherwise"; the returned report's ``plans`` approximate the set of
    Pareto-optimal plans within guarantee factor α.  ``backend`` selects
    the enumeration core (default: the fastest capable one).
    """
    settings = OptimizerSettings(
        plan_space=plan_space,
        objectives=MULTI_OBJECTIVE,
        alpha=alpha,
        backend=backend,
    )
    return optimize_mpq(query, n_workers, settings, cluster, executor)


def approximation_ratio(
    frontier: Sequence[Plan] | Sequence[tuple[float, ...]],
    reference: Sequence[Plan] | Sequence[tuple[float, ...]],
) -> float:
    """Worst-case factor by which ``frontier`` misses ``reference``.

    For every reference cost vector, find the approximating frontier vector
    minimizing the maximal per-component ratio; return the maximum over the
    reference set.  A frontier produced with pruning factor α must achieve a
    ratio ≤ α (the paper's near-optimality guarantee); an exact frontier
    achieves 1.0.
    """
    reference_costs = [_cost_of(item) for item in reference]
    frontier_costs = [_cost_of(item) for item in frontier]
    if not reference_costs:
        raise ValueError("reference frontier is empty")
    if not frontier_costs:
        raise ValueError("candidate frontier is empty")
    worst = 1.0
    for target in reference_costs:
        best_for_target = min(
            max(
                achieved / max(wanted, 1e-300)
                for achieved, wanted in zip(candidate, target)
            )
            for candidate in frontier_costs
        )
        worst = max(worst, best_for_target)
    return worst


def frontier_summary(plans: Sequence[Plan]) -> str:
    """One-line-per-plan rendering of a Pareto frontier, sorted by metric 0."""
    ordered = sorted(plans, key=lambda plan: plan.cost[0])
    lines = [
        "  " + "  ".join(f"{value:>12.4g}" for value in plan.cost)
        for plan in ordered
    ]
    return "\n".join(lines)


def _cost_of(item: Plan | tuple[float, ...]) -> tuple[float, ...]:
    if isinstance(item, Plan):
        return item.cost
    return tuple(item)
