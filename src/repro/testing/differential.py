"""Cross-algorithm differential-testing oracle.

The only safe way to rewrite the DP hot path is an oracle that proves the
rewrite plan-for-plan equivalent to what it replaces.  This module compares
the Pareto frontier of final plans produced by independent enumeration
*backends* for the same query and settings:

* ``"legacy"`` — the object-based worker DP (:mod:`repro.core.worker`);
* ``"fastdp"`` — the flat bitset core (:mod:`repro.core.fastdp`);
* ``"vecdp"`` — the array-native numpy core (:mod:`repro.core.vecdp`);
  needs numpy, and declares only plain and multi-objective optimization,
  so sweeps include it for exactly those feature sets;
* ``"exhaustive"`` — brute-force enumeration of the *entire* plan space
  (:mod:`repro.core.exhaustive`), ground truth for small queries;
* any callable ``(query, settings) -> iterable of cost vectors`` — useful
  for testing the oracle itself, or for vetting a future backend.

Frontiers are compared exactly (the backends are required to perform the
same float arithmetic, not merely be "close").  On a mismatch the oracle
does what a counterexample reporter should: it *shrinks*, re-running the
disagreeing backends on induced sub-queries to find a minimal offending
table subset, and raises a :class:`FrontierMismatch` that names the subset,
the shrunken query, and every backend's frontier on it — the analogue of a
provenance explanation for "why do these optimizers diverge?".

For parametric settings frontiers are canonicalized with the *lower
envelope* instead of Pareto dominance: the DP keeps exactly the plans
optimal for some θ, which is a strict subset of the Pareto frontier, so the
comparable signature is the envelope of each backend's returned cost lines.

The oracle also verifies *routing*: a named DP backend must actually run —
``WorkerStats.backend_used`` is checked against the requested backend and a
:class:`BackendRoutingError` is raised on any silent substitution, so "zero
legacy fallbacks" is a property the sweeps enforce, not an assumption.

Typical use::

    from repro.testing import assert_equivalent_frontiers
    assert_equivalent_frontiers(query, settings)          # raises on divergence

    from repro.testing import run_differential_oracle
    outcome = run_differential_oracle(n_queries=200, seed=0)
    assert not outcome.failures

    # Include interesting orders and parametric costs in the sweep:
    run_differential_oracle(n_queries=200, features=("plain", "orders", "parametric"))

Adding a new backend safely: register an
:class:`repro.core.worker.EnumerationBackend` declaring its capabilities
(or pass a plain callable here), then add it to the ``backends`` tuple of
the property tests in ``tests/test_differential.py`` — the oracle takes
care of the rest.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.config import (
    PARAMETRIC_OBJECTIVES,
    Backend,
    Objective,
    OptimizerSettings,
    PlanSpace,
)
from repro.core.exhaustive import iter_bushy_plans, iter_leftdeep_plans
from repro.core.serial import optimize_serial
from repro.cost.costmodel import CostModel
from repro.cost.parametric import envelope_filter
from repro.cost.pareto import pareto_filter
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind, Query

#: A frontier signature: the exact Pareto frontier as a sorted tuple of
#: cost vectors.  Two backends are equivalent on a query iff their
#: signatures are equal (bitwise — no tolerance).
FrontierSignature = tuple[tuple[float, ...], ...]

#: A backend is a registered name or a callable yielding final-plan cost
#: vectors for ``(query, settings)``.
BackendSpec = str | Callable[[Query, OptimizerSettings], Iterable[Sequence[float]]]

#: Exhaustive enumeration is exponential; refuse sizes where it would
#: silently take minutes.  (n! orders for linear, n!·Catalan(n-1) trees
#: for bushy, times up to 3^(n-1) operator choices.)
EXHAUSTIVE_MAX_TABLES = {PlanSpace.LINEAR: 6, PlanSpace.BUSHY: 5}


class BackendRoutingError(AssertionError):
    """A named DP backend did not actually run the request.

    Raised when ``WorkerStats.backend_used`` disagrees with the backend the
    oracle asked for — the observable form of a silent fallback, which would
    make a differential comparison vacuous (both sides running the same
    core trivially agree).
    """


def _dp_cost_vectors(
    query: Query, settings: OptimizerSettings, backend: Backend
) -> list[tuple[float, ...]]:
    result = optimize_serial(query, settings.replace(backend=backend))
    if result.stats.backend_used != backend.value:
        raise BackendRoutingError(
            f"requested backend {backend.value!r} but "
            f"{result.stats.backend_used!r} ran {query.name!r}"
        )
    return [plan.cost for plan in result.plans]


def _legacy_backend(query: Query, settings: OptimizerSettings):
    return _dp_cost_vectors(query, settings, Backend.LEGACY)


def _fastdp_backend(query: Query, settings: OptimizerSettings):
    return _dp_cost_vectors(query, settings, Backend.FASTDP)


def _vecdp_backend(query: Query, settings: OptimizerSettings):
    return _dp_cost_vectors(query, settings, Backend.VECDP)


def _exhaustive_backend(query: Query, settings: OptimizerSettings):
    if settings.alpha != 1.0:
        raise ValueError(
            "the exhaustive backend yields the exact frontier; comparing it "
            "against an alpha-approximate DP (alpha != 1) is not meaningful"
        )
    limit = EXHAUSTIVE_MAX_TABLES[settings.plan_space]
    if query.n_tables > limit:
        raise ValueError(
            f"exhaustive enumeration capped at {limit} tables for the "
            f"{settings.plan_space} space; got {query.n_tables}"
        )
    cost_model = CostModel(query, settings)
    if settings.plan_space is PlanSpace.LINEAR:
        plans = iter_leftdeep_plans(query, cost_model)
    else:
        plans = iter_bushy_plans(query, cost_model)
    return [plan.cost for plan in plans]


_NAMED_BACKENDS: dict[str, Callable[[Query, OptimizerSettings], Iterable]] = {
    "legacy": _legacy_backend,
    "fastdp": _fastdp_backend,
    "vecdp": _vecdp_backend,
    "exhaustive": _exhaustive_backend,
}

#: Default comparison set: both DP cores plus ground truth.
DEFAULT_BACKENDS: tuple[BackendSpec, ...] = ("legacy", "fastdp", "exhaustive")


def _resolve(spec: BackendSpec) -> tuple[str, Callable]:
    if callable(spec):
        return getattr(spec, "__name__", "custom"), spec
    try:
        return spec, _NAMED_BACKENDS[spec]
    except KeyError:
        raise ValueError(
            f"unknown backend {spec!r}; known: {sorted(_NAMED_BACKENDS)}"
        ) from None


def _canonical_signature(
    vectors: Iterable[Sequence[float]], settings: OptimizerSettings
) -> FrontierSignature:
    """Canonicalize a backend's final cost vectors into a comparable set.

    Pareto filtering for ordinary (single/multi-objective) settings; for
    parametric settings the *lower envelope*, because the parametric DP
    keeps exactly the θ-optimal plans — a strict subset of the Pareto
    frontier — and the exhaustive backend's full plan list must be reduced
    by the same rule to compare meaningfully.
    """
    if settings.parametric:
        flat = [tuple(vector) for vector in vectors]
        return tuple(sorted(flat[index] for index in envelope_filter(flat)))
    return tuple(sorted(pareto_filter(vectors)))


def frontier(
    query: Query, settings: OptimizerSettings, backend: BackendSpec
) -> FrontierSignature:
    """The canonical frontier of ``backend``'s final plans, sorted.

    For the DP backends the returned plans already form the frontier when
    ``alpha == 1``; applying :func:`_canonical_signature` uniformly also
    canonicalizes the exhaustive backend's full plan list and de-duplicates
    equal-cost plans, so signatures compare exactly.
    """
    _name, runner = _resolve(backend)
    return _canonical_signature(runner(query, settings), settings)


class FrontierMismatch(AssertionError):
    """Raised when backends disagree; carries the minimal counterexample.

    Attributes:
        query: the query the disagreement was first observed on.
        settings: the optimizer settings used.
        frontiers: backend name -> frontier signature on the full query.
        minimal_tables: table numbers (in ``query``'s numbering) of a
            1-minimal subset on which the backends still disagree — removing
            any single table makes them agree.
        minimal_query: the induced sub-query over ``minimal_tables``.
        minimal_frontiers: backend name -> frontier on ``minimal_query``.
    """

    def __init__(
        self,
        query: Query,
        settings: OptimizerSettings,
        frontiers: dict[str, FrontierSignature],
        minimal_tables: tuple[int, ...],
        minimal_query: Query,
        minimal_frontiers: dict[str, FrontierSignature],
    ) -> None:
        self.query = query
        self.settings = settings
        self.frontiers = frontiers
        self.minimal_tables = minimal_tables
        self.minimal_query = minimal_query
        self.minimal_frontiers = minimal_frontiers
        lines = [
            f"backends disagree on {query.name!r} "
            f"({query.n_tables} tables, {settings.plan_space} space, "
            f"objectives={[o.value for o in settings.objectives]}, "
            f"alpha={settings.alpha})",
            f"minimal offending table subset: {list(minimal_tables)} "
            f"-> {minimal_query.describe()}",
        ]
        for name, signature in minimal_frontiers.items():
            lines.append(f"  {name:>12}: {_format_frontier(signature)}")
        super().__init__("\n".join(lines))


def _format_frontier(signature: FrontierSignature, limit: int = 6) -> str:
    shown = ", ".join(
        "(" + ", ".join(f"{value:.6g}" for value in vector) + ")"
        for vector in signature[:limit]
    )
    extra = len(signature) - limit
    return f"[{shown}{f', … +{extra} more' if extra > 0 else ''}]"


def induced_subquery(query: Query, keep: Sequence[int]) -> Query:
    """The sub-query over the given tables, renumbered consecutively.

    Keeps every predicate whose endpoints both survive (selectivities
    unchanged).  The induced join graph may be disconnected — that is fine,
    cross products are part of the plan space.
    """
    keep = tuple(sorted(keep))
    if not keep:
        raise ValueError("cannot induce a sub-query on zero tables")
    renumber = {old: new for new, old in enumerate(keep)}
    tables = tuple(query.tables[old] for old in keep)
    predicates = tuple(
        dataclasses.replace(
            predicate,
            left_table=renumber[predicate.left_table],
            right_table=renumber[predicate.right_table],
        )
        for predicate in query.predicates
        if predicate.left_table in renumber and predicate.right_table in renumber
    )
    name = f"{query.name}[{','.join(str(t) for t in keep)}]"
    return Query(tables=tables, predicates=predicates, name=name)


def _frontiers_disagree(
    query: Query, settings: OptimizerSettings, resolved: list[tuple[str, Callable]]
) -> dict[str, FrontierSignature] | None:
    """All backends' frontiers if they disagree, else None."""
    frontiers = {
        name: _canonical_signature(runner(query, settings), settings)
        for name, runner in resolved
    }
    reference = next(iter(frontiers.values()))
    if all(signature == reference for signature in frontiers.values()):
        return None
    return frontiers


def _shrink(
    query: Query,
    settings: OptimizerSettings,
    resolved: list[tuple[str, Callable]],
) -> tuple[tuple[int, ...], Query, dict[str, FrontierSignature]]:
    """Greedy delta-debugging: drop tables while the disagreement persists.

    Returns a 1-minimal subset (removing any single further table makes the
    backends agree), the induced sub-query, and the frontiers on it.
    """
    current = tuple(range(query.n_tables))
    current_query = query
    current_frontiers = _frontiers_disagree(query, settings, resolved)
    assert current_frontiers is not None
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for drop in current:
            candidate = tuple(t for t in current if t != drop)
            candidate_query = induced_subquery(query, candidate)
            frontiers = _frontiers_disagree(candidate_query, settings, resolved)
            if frontiers is not None:
                current = candidate
                current_query = candidate_query
                current_frontiers = frontiers
                shrunk = True
                break
    return current, current_query, current_frontiers


def assert_equivalent_frontiers(
    query: Query,
    settings: OptimizerSettings | None = None,
    backends: Sequence[BackendSpec] = DEFAULT_BACKENDS,
    minimize: bool = True,
) -> dict[str, FrontierSignature]:
    """Assert every backend produces the same Pareto frontier for ``query``.

    Returns the (identical) frontiers by backend name on success.  On
    divergence raises :class:`FrontierMismatch`; with ``minimize`` (the
    default) the mismatch carries a 1-minimal offending table subset found
    by re-running the backends on induced sub-queries.
    """
    if settings is None:
        settings = OptimizerSettings()
    if len(backends) < 2:
        raise ValueError("need at least two backends to compare")
    resolved = [_resolve(spec) for spec in backends]
    names = [name for name, _runner in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate backend names in {names}")
    frontiers = _frontiers_disagree(query, settings, resolved)
    if frontiers is None:
        reference = frontier(query, settings, backends[0])
        return {name: reference for name in names}
    if minimize:
        tables, minimal_query, minimal_frontiers = _shrink(
            query, settings, resolved
        )
    else:
        tables = tuple(range(query.n_tables))
        minimal_query, minimal_frontiers = query, frontiers
    raise FrontierMismatch(
        query, settings, frontiers, tables, minimal_query, minimal_frontiers
    )


# ------------------------------------------------------------------ the oracle


#: Objective vectors the random oracle cycles through (1, 2, and 3 metrics).
ORACLE_OBJECTIVE_SETS: tuple[tuple[Objective, ...], ...] = (
    (Objective.EXECUTION_TIME,),
    (Objective.EXECUTION_TIME, Objective.BUFFER_SPACE),
    (
        Objective.EXECUTION_TIME,
        Objective.BUFFER_SPACE,
        Objective.OUTPUT_ROWS,
    ),
)

#: Query-class features a sweep can cycle through.  ``plain`` is classical
#: optimization under the cycled objective sets; ``orders`` switches on
#: interesting-order tracking (over clustered tables, so sorted scans
#: exist); ``parametric`` optimizes the one-parameter cost function over
#: :data:`~repro.config.PARAMETRIC_OBJECTIVES` (the objective-set dimension
#: is fixed by definition there).
ORACLE_FEATURES: tuple[str, ...] = ("plain", "orders", "parametric")


@dataclass
class OracleOutcome:
    """What a random differential sweep observed."""

    cases_run: int = 0
    #: One entry per disagreeing case (empty means full agreement).
    failures: list[FrontierMismatch] = field(default_factory=list)
    #: Human-readable description of each case run (query name + settings).
    case_log: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every case agreed across all backends."""
        return not self.failures


def run_differential_oracle(
    n_queries: int = 200,
    seed: int = 0,
    table_range: tuple[int, int] = (3, 5),
    kinds: Sequence[JoinGraphKind] = tuple(JoinGraphKind),
    objective_sets: Sequence[tuple[Objective, ...]] = ORACLE_OBJECTIVE_SETS,
    plan_spaces: Sequence[PlanSpace] = (PlanSpace.LINEAR, PlanSpace.BUSHY),
    backends: Sequence[BackendSpec] = DEFAULT_BACKENDS,
    features: Sequence[str] = ("plain",),
    fail_fast: bool = False,
) -> OracleOutcome:
    """Sweep seeded random queries through :func:`assert_equivalent_frontiers`.

    Query shapes cycle deterministically through ``kinds`` × sizes ×
    ``objective_sets`` × ``plan_spaces`` × ``features`` (seeded by
    ``seed``), so a failing case reproduces from the same arguments.  Sizes
    respect :data:`EXHAUSTIVE_MAX_TABLES` whenever the exhaustive backend is
    in the comparison set.  ``features`` selects query classes from
    :data:`ORACLE_FEATURES` — ``orders`` cases generate clustered tables so
    sorted scans participate, and ``parametric`` cases fix the objective
    vector to :data:`~repro.config.PARAMETRIC_OBJECTIVES`.
    """
    rng = random.Random(seed)
    low, high = table_range
    if low > high:
        raise ValueError(f"table_range low {low} exceeds high {high}")
    for feature in features:
        if feature not in ORACLE_FEATURES:
            raise ValueError(
                f"unknown feature {feature!r}; known: {list(ORACLE_FEATURES)}"
            )
    include_exhaustive = "exhaustive" in backends
    if include_exhaustive:
        for plan_space in plan_spaces:
            limit = EXHAUSTIVE_MAX_TABLES[plan_space]
            if low > limit:
                raise ValueError(
                    f"table_range low bound {low} exceeds the exhaustive "
                    f"backend's cap of {limit} tables for the "
                    f"{plan_space} space; lower the bound or drop "
                    "'exhaustive' from backends"
                )
    outcome = OracleOutcome()
    for index in range(n_queries):
        # Mixed-radix counter over (kind, objectives, plan space, feature):
        # every len(kinds)·len(objective_sets)·len(plan_spaces)·len(features)
        # consecutive cases cover the full cross product — no pair of
        # dimensions can lock in phase the way parallel modular counters
        # would.
        kind = kinds[index % len(kinds)]
        objectives = objective_sets[(index // len(kinds)) % len(objective_sets)]
        plan_space = plan_spaces[
            (index // (len(kinds) * len(objective_sets))) % len(plan_spaces)
        ]
        feature = features[
            (index // (len(kinds) * len(objective_sets) * len(plan_spaces)))
            % len(features)
        ]
        cap = high
        if include_exhaustive:
            cap = min(cap, EXHAUSTIVE_MAX_TABLES[plan_space])
        n_tables = rng.randint(low, max(low, cap))
        if feature == "orders":
            settings = OptimizerSettings(
                plan_space=plan_space,
                objectives=objectives,
                consider_orders=True,
            )
        elif feature == "parametric":
            settings = OptimizerSettings(
                plan_space=plan_space,
                objectives=PARAMETRIC_OBJECTIVES,
                parametric=True,
            )
        else:
            settings = OptimizerSettings(
                plan_space=plan_space, objectives=objectives
            )
        query = SteinbrunnGenerator(
            seed=rng.randrange(1 << 30),
            clustered_tables=feature == "orders",
        ).query(n_tables, kind, name=f"oracle-{index}-{kind.value}-{n_tables}")
        outcome.case_log.append(
            f"{query.name}: space={plan_space.value} "
            f"objectives={[o.value for o in settings.objectives]} "
            f"feature={feature}"
        )
        try:
            assert_equivalent_frontiers(query, settings, backends)
        except FrontierMismatch as mismatch:
            outcome.failures.append(mismatch)
            if fail_fast:
                outcome.cases_run = index + 1
                raise
        outcome.cases_run = index + 1
    return outcome
