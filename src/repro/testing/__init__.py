"""Differential-testing infrastructure for the enumeration backends.

Public surface of the oracle that guards hot-path rewrites: see
:mod:`repro.testing.differential` for the full story, and the "Enumeration
backends" section of the README for how to vet a new backend.
"""

from repro.testing.differential import (
    DEFAULT_BACKENDS,
    EXHAUSTIVE_MAX_TABLES,
    ORACLE_FEATURES,
    ORACLE_OBJECTIVE_SETS,
    BackendRoutingError,
    FrontierMismatch,
    FrontierSignature,
    OracleOutcome,
    assert_equivalent_frontiers,
    frontier,
    induced_subquery,
    run_differential_oracle,
)

__all__ = [
    "DEFAULT_BACKENDS",
    "EXHAUSTIVE_MAX_TABLES",
    "ORACLE_FEATURES",
    "ORACLE_OBJECTIVE_SETS",
    "BackendRoutingError",
    "FrontierMismatch",
    "FrontierSignature",
    "OracleOutcome",
    "assert_equivalent_frontiers",
    "frontier",
    "induced_subquery",
    "run_differential_oracle",
]
