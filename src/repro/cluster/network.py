"""Network model: per-message latency plus bandwidth-limited transfer.

The paper highlights "high network latency and task assignment overheads" as
the defining difficulty of the cluster scenario.  The model here is the
standard α-β (latency-bandwidth) model: transferring ``b`` bytes costs
``latency + b / bandwidth`` seconds.  An accountant accumulates total bytes
and message counts — the quantity plotted as "Network (bytes)" in every
figure of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NetworkModel:
    """α-β network cost model.

    Defaults approximate the paper's cluster: gigabit-class Ethernet with
    sub-millisecond application-level latency per message.
    """

    latency_s: float = 5e-4
    bandwidth_bytes_per_s: float = 125_000_000.0  # 1 Gbit/s

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth must be > 0, got {self.bandwidth_bytes_per_s}"
            )

    def transfer_seconds(self, n_bytes: int) -> float:
        """Time to deliver one message of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError(f"message size must be >= 0, got {n_bytes}")
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_s


@dataclass
class NetworkAccountant:
    """Accumulates traffic for one optimization run."""

    model: NetworkModel = field(default_factory=NetworkModel)
    total_bytes: int = 0
    n_messages: int = 0

    def send(self, n_bytes: int) -> float:
        """Record one message; returns its transfer time in seconds."""
        self.total_bytes += n_bytes
        self.n_messages += 1
        return self.model.transfer_seconds(n_bytes)

    def send_many(self, sizes: list[int]) -> float:
        """Record a sequence of messages sent back-to-back; returns total time."""
        return sum(self.send(size) for size in sizes)
