"""Network model and the real wire: framing for the out-of-process gateway.

The paper highlights "high network latency and task assignment overheads" as
the defining difficulty of the cluster scenario.  Two layers live here:

* the **α-β (latency-bandwidth) model**: transferring ``b`` bytes costs
  ``latency + b / bandwidth`` seconds.  An accountant accumulates total
  bytes and message counts — the quantity plotted as "Network (bytes)" in
  every figure of the paper;
* the **length-prefixed frame codec** the networked gateway actually speaks
  (:mod:`repro.service.server` / :mod:`repro.service.net`): one frame is a
  4-byte big-endian payload length followed by that many bytes of strict
  standard JSON (no bare ``NaN``/``Infinity`` tokens — non-finite floats
  travel as the sentinel strings of
  :func:`repro.cluster.serialization.float_to_wire`, so any JSON parser in
  any language can be a peer).  Readers enforce a frame-size bound before
  allocating, reject non-standard constants, and distinguish a clean EOF
  (``None``) from a torn frame (:class:`FrameError`) so a server never
  hangs on — or trusts — a half-written message.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any

#: Refuse frames beyond this size (default 32 MiB): a corrupt or hostile
#: length prefix must not make a peer allocate gigabytes.
DEFAULT_MAX_FRAME_BYTES = 32 * 1024 * 1024

_FRAME_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """A frame violated the protocol: torn, malformed JSON, or non-standard."""


class OversizedFrameError(FrameError):
    """A frame's declared length exceeds the permitted maximum."""


def _reject_constant(token: str) -> float:
    """Strict-JSON hook: bare ``NaN``/``Infinity`` tokens are a protocol error."""
    raise FrameError(
        f"non-standard JSON constant {token!r} on the wire; non-finite "
        "floats must travel as float_to_wire sentinel strings"
    )


def encode_frame(
    payload: dict[str, Any], max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Encode one message as a length-prefixed strict-JSON frame."""
    body = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode()
    if len(body) > max_frame_bytes:
        raise OversizedFrameError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return _FRAME_HEADER.pack(len(body)) + body


def decode_frame_payload(body: bytes) -> dict[str, Any]:
    """Decode a frame body; raises :class:`FrameError` on malformed input."""
    try:
        payload = json.loads(body, parse_constant=_reject_constant)
    except json.JSONDecodeError as error:
        raise FrameError(f"malformed frame payload: {error}") from error
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _recv_exactly(sock: socket.socket, n_bytes: int) -> bytes | None:
    """Read exactly ``n_bytes`` from a blocking socket.

    Returns ``None`` on EOF before the first byte (a clean close between
    frames); raises :class:`FrameError` on EOF mid-read (a torn frame).
    """
    chunks: list[bytes] = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise FrameError(
                f"peer closed mid-frame ({n_bytes - remaining} of {n_bytes} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(
    sock: socket.socket,
    payload: dict[str, Any],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Send one frame on a blocking socket."""
    sock.sendall(encode_frame(payload, max_frame_bytes))


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Receive one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > max_frame_bytes:
        raise OversizedFrameError(
            f"peer announced a {length}-byte frame; limit is {max_frame_bytes}"
        )
    body = _recv_exactly(sock, length) if length else b""
    if body is None:
        raise FrameError("peer closed between frame header and body")
    return decode_frame_payload(body)


async def read_frame(reader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns the decoded payload, or ``None`` on a clean EOF between frames.
    Raises :class:`OversizedFrameError` before reading an over-limit body
    and :class:`FrameError` on a torn header/body or malformed JSON.
    """
    import asyncio

    try:
        header = await reader.readexactly(_FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameError(
            f"peer closed mid-header ({len(error.partial)} of "
            f"{_FRAME_HEADER.size} bytes)"
        ) from error
    (length,) = _FRAME_HEADER.unpack(header)
    if length > max_frame_bytes:
        raise OversizedFrameError(
            f"peer announced a {length}-byte frame; limit is {max_frame_bytes}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            f"peer closed mid-frame ({len(error.partial)} of {length} bytes)"
        ) from error
    return decode_frame_payload(body)


@dataclass(frozen=True)
class NetworkModel:
    """α-β network cost model.

    Defaults approximate the paper's cluster: gigabit-class Ethernet with
    sub-millisecond application-level latency per message.
    """

    latency_s: float = 5e-4
    bandwidth_bytes_per_s: float = 125_000_000.0  # 1 Gbit/s

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth must be > 0, got {self.bandwidth_bytes_per_s}"
            )

    def transfer_seconds(self, n_bytes: int) -> float:
        """Time to deliver one message of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError(f"message size must be >= 0, got {n_bytes}")
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_s


@dataclass
class NetworkAccountant:
    """Accumulates traffic for one optimization run."""

    model: NetworkModel = field(default_factory=NetworkModel)
    total_bytes: int = 0
    n_messages: int = 0

    def send(self, n_bytes: int) -> float:
        """Record one message; returns its transfer time in seconds."""
        self.total_bytes += n_bytes
        self.n_messages += 1
        return self.model.transfer_seconds(n_bytes)

    def send_many(self, sizes: list[int]) -> float:
        """Record a sequence of messages sent back-to-back; returns total time."""
        return sum(self.send(size) for size in sizes)
