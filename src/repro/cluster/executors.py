"""Execution back-ends for running partition tasks.

The master (:mod:`repro.core.master`) is generic over *how* partition tasks
run; these executors provide the options:

* :class:`SerialPartitionExecutor` — run partitions one after another in this
  process.  The default; deterministic, and the basis for simulated-cluster
  timing (per-partition work is counted, wall-clock is composed afterwards).
* :class:`ThreadPoolPartitionExecutor` — thread-based concurrency.  Python's
  GIL serializes the DP's bytecode, so this demonstrates API shape rather
  than speedup (the repro-band note about the GIL made explicit).
* :class:`ProcessPoolPartitionExecutor` — genuine parallelism via
  ``multiprocessing``; each partition task is shipped (pickled) to another
  process, which mirrors a real shared-nothing deployment: the child rebuilds
  cost model and pruning from ``(query, settings)`` and shares no state.
"""

from __future__ import annotations

import concurrent.futures

# Imported eagerly: referencing it lazily inside an ``except`` clause would
# itself raise AttributeError (masking the real error) whenever
# ``concurrent.futures.process`` had not been imported yet — e.g. a serial
# executor raising before any process pool was ever created.
from concurrent.futures.process import BrokenProcessPool

from repro.config import OptimizerSettings
from repro.core.worker import PartitionResult, optimize_partition
from repro.query.query import Query


def _run_partition_task(
    args: tuple[Query, int, int, OptimizerSettings],
) -> PartitionResult:
    """Module-level task entry point (must be picklable for process pools)."""
    query, partition_id, n_partitions, settings = args
    return optimize_partition(query, partition_id, n_partitions, settings)


class RetryingPartitionExecutor:
    """Fault tolerance: re-run failed partition tasks on a fallback path.

    MPQ's coarse-grained decomposition makes recovery trivial — a partition
    task is a pure function of ``(query, partition_id, m, settings)``, so a
    crashed worker's task can simply be resubmitted (to the pool, or inline
    as a last resort) without touching any other worker.  The paper's
    single-round protocol means there is no partial state to reconcile.

    Wraps any inner executor; if the inner executor raises, every partition
    is retried individually up to ``max_attempts`` times, falling back to
    in-process execution on the final attempt.
    """

    def __init__(self, inner: object | None = None, max_attempts: int = 3) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self._inner = inner
        self._max_attempts = max_attempts
        #: Number of per-partition task *resubmissions* performed — each
        #: partition task re-run beyond its first submission counts once, so
        #: a wholesale inner-executor failure that re-runs all ``m`` tasks
        #: contributes ``m``, not 1.
        self.retries = 0

    def map_partitions(
        self, query: Query, n_partitions: int, settings: OptimizerSettings
    ) -> list[PartitionResult]:
        if self._inner is not None:
            try:
                return self._inner.map_partitions(query, n_partitions, settings)
            except Exception:
                # The whole batch failed: every partition task is resubmitted
                # (inline below), so the counter advances by one per task.
                self.retries += n_partitions
        results = []
        for partition_id in range(n_partitions):
            results.append(self._run_one(query, partition_id, n_partitions, settings))
        return results

    def _run_one(
        self,
        query: Query,
        partition_id: int,
        n_partitions: int,
        settings: OptimizerSettings,
    ) -> PartitionResult:
        last_error: Exception | None = None
        for attempt in range(self._max_attempts):
            try:
                return optimize_partition(query, partition_id, n_partitions, settings)
            except Exception as error:
                last_error = error
                # Only a failure that is followed by another attempt is a
                # resubmission; the final attempt's failure propagates.
                if attempt + 1 < self._max_attempts:
                    self.retries += 1
        assert last_error is not None
        raise last_error


class SerialPartitionExecutor:
    """Run all partitions sequentially in the calling process."""

    def map_partitions(
        self, query: Query, n_partitions: int, settings: OptimizerSettings
    ) -> list[PartitionResult]:
        return [
            optimize_partition(query, partition_id, n_partitions, settings)
            for partition_id in range(n_partitions)
        ]


class ThreadPoolPartitionExecutor:
    """Run partitions on a thread pool (concurrency, not parallelism)."""

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers

    def map_partitions(
        self, query: Query, n_partitions: int, settings: OptimizerSettings
    ) -> list[PartitionResult]:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self._max_workers
        ) as pool:
            futures = [
                pool.submit(optimize_partition, query, pid, n_partitions, settings)
                for pid in range(n_partitions)
            ]
            return [future.result() for future in futures]


class ProcessPoolPartitionExecutor:
    """Run partitions on separate processes (true shared-nothing workers).

    Each task's payload is exactly what the paper's master ships: the query
    (with statistics), the partition ID, the partition count, and the
    optimizer settings.  Results come back as complete partition-optimal
    plans — one round of communication, as in Algorithm 1.

    A fresh pool is created (and torn down) per ``map_partitions`` call —
    faithful to a one-shot optimization, but the wrong shape for a service
    optimizing a stream of queries; see
    :class:`PersistentProcessPoolExecutor`.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers

    def map_partitions(
        self, query: Query, n_partitions: int, settings: OptimizerSettings
    ) -> list[PartitionResult]:
        tasks = [
            (query, partition_id, n_partitions, settings)
            for partition_id in range(n_partitions)
        ]
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self._max_workers
        ) as pool:
            return list(pool.map(_run_partition_task, tasks))


class PersistentProcessPoolExecutor:
    """Process-pool executor whose workers stay warm across queries.

    Per-query pool startup costs hundreds of milliseconds — acceptable for
    one optimization, ruinous for a service.  This executor creates its pool
    lazily on first use and reuses it for every subsequent call, so a stream
    of queries pays the fork/spawn tax once.  :meth:`submit_partitions`
    additionally exposes the underlying futures, letting
    :meth:`~repro.service.OptimizerService.optimize_batch` interleave
    partition tasks from *many* concurrent queries onto the one pool instead
    of serializing query-by-query.

    Observability counters: ``pools_started`` (how many times worker
    processes were actually spawned — 1 for a healthy service lifetime) and
    ``tasks_run`` (partition tasks dispatched).  If the pool breaks (a
    worker was killed), it is discarded and rebuilt once per call — the same
    pure-task property that powers :class:`RetryingPartitionExecutor`.

    Use as a context manager, or call :meth:`close` when done; a finalizer
    also shuts the pool down if the executor is garbage collected.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        #: Times a pool of worker processes was (re)started.
        self.pools_started = 0
        #: Partition tasks dispatched over this executor's lifetime.
        self.tasks_run = 0

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._max_workers
            )
            self.pools_started += 1
        return self._pool

    def submit_partitions(
        self, query: Query, n_partitions: int, settings: OptimizerSettings
    ) -> list[concurrent.futures.Future]:
        """Submit all partition tasks for one query; return their futures.

        Does not block: callers batching several queries submit them all
        first, then gather, so every warm worker stays busy throughout.
        """
        pool = self._ensure_pool()
        self.tasks_run += n_partitions
        return [
            pool.submit(
                _run_partition_task, (query, partition_id, n_partitions, settings)
            )
            for partition_id in range(n_partitions)
        ]

    def map_partitions(
        self, query: Query, n_partitions: int, settings: OptimizerSettings
    ) -> list[PartitionResult]:
        try:
            return [
                future.result()
                for future in self.submit_partitions(query, n_partitions, settings)
            ]
        except BrokenProcessPool:
            self.close()
            return [
                future.result()
                for future in self.submit_partitions(query, n_partitions, settings)
            ]

    def close(self) -> None:
        """Shut the worker pool down; the next use starts a fresh one."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "PersistentProcessPoolExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()
