"""Shared-nothing cluster substrate: bytes, network, timing, executors."""

from repro.cluster.serialization import (
    MEMO_ENTRY_BYTES,
    PLAN_NODE_BYTES,
    TASK_HEADER_BYTES,
    memo_entries_bytes,
    plan_bytes,
    plans_bytes,
    query_bytes,
    task_bytes,
)
from repro.cluster.network import NetworkAccountant, NetworkModel
from repro.cluster.simulator import (
    DEFAULT_CLUSTER,
    ClusterModel,
    SimulatedTiming,
    simulate_mpq_run,
    worker_compute_seconds,
)
from repro.cluster.executors import (
    PersistentProcessPoolExecutor,
    ProcessPoolPartitionExecutor,
    RetryingPartitionExecutor,
    SerialPartitionExecutor,
    ThreadPoolPartitionExecutor,
)

__all__ = [
    "MEMO_ENTRY_BYTES",
    "PLAN_NODE_BYTES",
    "TASK_HEADER_BYTES",
    "memo_entries_bytes",
    "plan_bytes",
    "plans_bytes",
    "query_bytes",
    "task_bytes",
    "NetworkAccountant",
    "NetworkModel",
    "DEFAULT_CLUSTER",
    "ClusterModel",
    "SimulatedTiming",
    "simulate_mpq_run",
    "worker_compute_seconds",
    "PersistentProcessPoolExecutor",
    "ProcessPoolPartitionExecutor",
    "RetryingPartitionExecutor",
    "SerialPartitionExecutor",
    "ThreadPoolPartitionExecutor",
]
