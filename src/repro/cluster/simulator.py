"""Shared-nothing cluster timing model.

The substitution for the paper's 100-node Spark cluster (see DESIGN.md):
worker DP runs are executed in-process and *instrumented*; this module
composes their counted operations with a network and task-overhead model
into simulated wall-clock time, the quantity the paper's "Time (ms)" axes
report.

Composition for one MPQ run (Algorithm 1's structure):

1. the master serially sends one task per worker (time linear in ``m``,
   Theorem 5);
2. each worker starts after its task arrives plus a fixed task-setup
   overhead (Spark executor task launch), then computes for
   ``counted ops x per-op cost`` seconds;
3. the master serially receives one result message per worker;
4. the master performs the final pruning pass (linear in returned plans).

Per-op costs default to Java-like magnitudes so simulated times land in the
paper's ranges; they are explicit parameters, not hidden calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import NetworkAccountant, NetworkModel
from repro.cluster.serialization import plans_bytes, task_bytes
from repro.core.master import MasterResult
from repro.core.worker import WorkerStats
from repro.query.query import Query


@dataclass(frozen=True)
class ClusterModel:
    """Tunable constants of the simulated shared-nothing cluster."""

    network: NetworkModel = field(default_factory=NetworkModel)
    #: Per-task scheduling/launch overhead (Spark-like, dominates tiny tasks).
    task_setup_s: float = 0.05
    #: Cost of one costed join candidate in the DP inner loop.
    seconds_per_plan: float = 1e-6
    #: Cost of preparing one operand split (hashing, lookups).
    seconds_per_split: float = 5e-7
    #: Cost of generating/indexing one admissible join result.
    seconds_per_result: float = 5e-7
    #: Master-side cost per plan during final pruning.
    master_seconds_per_plan: float = 1e-6

    def __post_init__(self) -> None:
        for name in (
            "task_setup_s",
            "seconds_per_plan",
            "seconds_per_split",
            "seconds_per_result",
            "master_seconds_per_plan",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


#: Model instance used when none is supplied.
DEFAULT_CLUSTER = ClusterModel()


def worker_compute_seconds(cluster: ClusterModel, stats: WorkerStats) -> float:
    """Simulated DP time of one worker from its operation counters."""
    return (
        stats.plans_considered * cluster.seconds_per_plan
        + stats.splits_considered * cluster.seconds_per_split
        + stats.admissible_results * cluster.seconds_per_result
    )


@dataclass
class SimulatedTiming:
    """Simulated wall-clock decomposition of one parallel optimization."""

    #: Master's serial task-dispatch time.
    dispatch_s: float
    #: Slowest worker's finish time measured from optimization start
    #: (dispatch offset + task setup + compute) — the paper's "W-Time" is
    #: :attr:`max_worker_compute_s`, the compute component alone.
    workers_done_s: float
    #: Master's serial result-collection time.
    collect_s: float
    #: Master's final pruning time.
    master_prune_s: float
    #: Total bytes sent over the network (both directions).
    network_bytes: int
    #: Number of network messages.
    network_messages: int
    #: Per-worker simulated compute seconds.
    worker_compute_s: list[float]

    @property
    def max_worker_compute_s(self) -> float:
        """Maximal per-worker optimization time ("W-Time" in Figures 2/5)."""
        return max(self.worker_compute_s, default=0.0)

    @property
    def total_s(self) -> float:
        """End-to-end simulated optimization time (the figures' "Time")."""
        return self.workers_done_s + self.collect_s + self.master_prune_s

    @property
    def total_ms(self) -> float:
        """Total simulated time in milliseconds (the paper's unit)."""
        return self.total_s * 1e3


def simulate_mpq_run(
    cluster: ClusterModel, query: Query, result: MasterResult
) -> SimulatedTiming:
    """Compose simulated timing for a completed MPQ run."""
    accountant = NetworkAccountant(model=cluster.network)
    per_task_bytes = task_bytes(query)

    # Phase 1: serial dispatch.  Worker i can start once tasks 0..i are sent.
    dispatch_offsets = []
    elapsed = 0.0
    for _ in result.partition_results:
        elapsed += accountant.send(per_task_bytes)
        dispatch_offsets.append(elapsed)
    dispatch_s = elapsed

    # Phase 2: workers run independently; no communication (the paper's key
    # property).  Finish time = dispatch offset + setup + compute.
    computes = [
        worker_compute_seconds(cluster, partition.stats)
        for partition in result.partition_results
    ]
    workers_done_s = max(
        (
            offset + cluster.task_setup_s + compute
            for offset, compute in zip(dispatch_offsets, computes)
        ),
        default=0.0,
    )

    # Phase 3: serial collection of one result message per worker.
    collect_s = accountant.send_many(
        [plans_bytes(partition.plans) for partition in result.partition_results]
    )

    # Phase 4: final pruning over all returned plans.
    n_returned = sum(len(partition.plans) for partition in result.partition_results)
    master_prune_s = n_returned * cluster.master_seconds_per_plan

    return SimulatedTiming(
        dispatch_s=dispatch_s,
        workers_done_s=workers_done_s,
        collect_s=collect_s,
        master_prune_s=master_prune_s,
        network_bytes=accountant.total_bytes,
        network_messages=accountant.n_messages,
        worker_compute_s=computes,
    )
