"""Serialization for optimizer objects: byte-size model and wire codecs.

Two layers live here:

* a **deterministic byte-size model** (the original role of this module):
  the paper's implementation sends serialized Java objects between master
  and workers, and its network plots measure the resulting byte counts.  We
  model those sizes with Java-serialization-like constants — what matters
  for reproducing the paper's traffic series is that sizes are
  *proportional to object counts*, with realistic constants.  All sizing
  functions return integer byte counts and are pure;

* **actual wire codecs** for the objects the persistent plan-cache tier and
  the out-of-process gateway ship between processes: plan trees (including
  interesting orders and parametric cost vectors — a serialized frontier is
  just a list of plans), optimizer settings, and simulated run timings.
  Encoding is **strict standard JSON**: finite floats survive
  bit-identically because Python's ``repr``-based float formatting is
  shortest-round-trip exact, and *non-finite* floats — parametric envelopes
  legitimately use ``±inf`` sentinels — are encoded as the sentinel strings
  ``"inf"``/``"-inf"`` (:func:`float_to_wire`) rather than the bare
  ``Infinity`` token ``json.dumps`` would otherwise emit, which is not JSON
  and which a non-Python peer or strict parser rejects.  ``NaN`` is
  rejected outright: a NaN cardinality or cost is never meaningful, and
  encoding one would only smuggle corruption across a process boundary.
  The codecs are pure functions of their input and never import
  service-layer types — the cache-entry codec composing them lives in
  :mod:`repro.service.tiers`, the service-result codec in
  :mod:`repro.service.net`.
"""

from __future__ import annotations

import math
from typing import Any

from repro.config import Backend, Objective, OptimizerSettings, PlanSpace
from repro.plans.operators import JoinAlgorithm, ScanAlgorithm
from repro.plans.orders import SortOrder
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.query import Query

#: Fixed overhead of any serialized message (stream header, class descriptor).
MESSAGE_HEADER_BYTES = 64

#: Per-table payload: name, cardinality, per-column statistics.
PER_TABLE_BYTES = 48

#: Per-predicate payload: endpoints, columns, selectivity.
PER_PREDICATE_BYTES = 40

#: Task envelope: partition ID and partition count (two longs + object header).
TASK_HEADER_BYTES = 24

#: One serialized plan node: operator tag, table-set mask, cardinality,
#: child references (Java object overhead included).
PLAN_NODE_BYTES = 32

#: Extra bytes per cost-metric value attached to a plan.
PER_METRIC_BYTES = 8

#: One memotable entry shipped by the fine-grained (SMA) algorithm: table-set
#: key, best cost, cardinality, and the two sub-plan references.
MEMO_ENTRY_BYTES = 48

#: Table-set identifier inside an SMA task-assignment message.
SET_ID_BYTES = 8


def query_bytes(query: Query) -> int:
    """Serialized size of a query including its per-query statistics."""
    return (
        MESSAGE_HEADER_BYTES
        + PER_TABLE_BYTES * query.n_tables
        + PER_PREDICATE_BYTES * len(query.predicates)
    )


def task_bytes(query: Query) -> int:
    """Master-to-worker MPQ task: the query plus the partition envelope."""
    return query_bytes(query) + TASK_HEADER_BYTES


def plan_node_count(plan: Plan) -> int:
    """Number of operator nodes in a plan tree (2n - 1 for n tables)."""
    if isinstance(plan, ScanPlan):
        return 1
    assert isinstance(plan, JoinPlan)
    return 1 + plan_node_count(plan.left) + plan_node_count(plan.right)


def plan_bytes(plan: Plan) -> int:
    """Serialized size of one complete plan (nodes plus its cost vector)."""
    return (
        MESSAGE_HEADER_BYTES
        + PLAN_NODE_BYTES * plan_node_count(plan)
        + PER_METRIC_BYTES * len(plan.cost)
    )


def plans_bytes(plans: list[Plan]) -> int:
    """Worker-to-master result message: all partition-optimal plans.

    A worker returning an empty result still sends a header-only message.
    """
    if not plans:
        return MESSAGE_HEADER_BYTES
    per_plan = sum(
        PLAN_NODE_BYTES * plan_node_count(plan) + PER_METRIC_BYTES * len(plan.cost)
        for plan in plans
    )
    return MESSAGE_HEADER_BYTES + per_plan


def memo_entries_bytes(n_entries: int) -> int:
    """Size of a memotable delta of ``n_entries`` stored plans (SMA traffic)."""
    if n_entries < 0:
        raise ValueError(f"entry count must be >= 0, got {n_entries}")
    if n_entries == 0:
        return 0
    return MESSAGE_HEADER_BYTES + MEMO_ENTRY_BYTES * n_entries


def sma_task_bytes(n_sets: int) -> int:
    """Size of an SMA per-round task assignment naming ``n_sets`` table sets."""
    if n_sets < 0:
        raise ValueError(f"set count must be >= 0, got {n_sets}")
    return TASK_HEADER_BYTES + SET_ID_BYTES * n_sets


# ----------------------------------------------------------------- wire codecs


#: Sentinel strings carrying the two meaningful non-finite floats across
#: the wire as valid standard JSON.
_FLOAT_SENTINELS = {"inf": math.inf, "-inf": -math.inf}


def float_to_wire(value: float) -> float | str:
    """Encode one float as a standard-JSON-safe value.

    Finite floats pass through unchanged (and round-trip bit-identically
    through ``json``); ``±inf`` becomes the sentinel string ``"inf"`` /
    ``"-inf"``.  ``NaN`` raises ``ValueError`` — no optimizer quantity
    (cardinality, cost, timing) is meaningfully NaN, so shipping one would
    only propagate corruption.
    """
    value = float(value)
    if math.isnan(value):
        raise ValueError("NaN cannot be encoded on the wire; refusing")
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def float_from_wire(value: Any) -> float:
    """Inverse of :func:`float_to_wire`.

    Also tolerates *reading* bare non-finite floats (Python's ``json``
    parses legacy ``Infinity`` tokens from logs written before sentinel
    encoding existed), but still rejects NaN from any source.
    """
    if isinstance(value, str):
        try:
            return _FLOAT_SENTINELS[value]
        except KeyError:
            raise ValueError(f"unknown float sentinel {value!r}") from None
    result = float(value)
    if math.isnan(result):
        raise ValueError("NaN on the wire; record is corrupt")
    return result


def order_to_wire(order: SortOrder | None) -> list | None:
    """Wire form of a sort order: ``[table, column]``, or ``None``."""
    if order is None:
        return None
    return [order.table, order.column]


def order_from_wire(data: list | None) -> SortOrder | None:
    """Inverse of :func:`order_to_wire`."""
    if data is None:
        return None
    table, column = data
    return SortOrder(table=int(table), column=str(column))


def plan_to_wire(plan: Plan) -> dict[str, Any]:
    """JSON-compatible encoding of a plan tree, lossless.

    Unlike :func:`repro.query.io.plan_to_dict` (human-facing explain
    output), this encoding round-trips *exactly*: masks, float
    cardinalities and cost vectors, operator algorithms, and sort orders
    are all preserved, so ``plan_from_wire(plan_to_wire(p)) == p`` for any
    plan of any query class (plain, interesting orders, parametric).
    """
    common: dict[str, Any] = {
        "mask": plan.mask,
        "rows": float_to_wire(plan.rows),
        "cost": [float_to_wire(value) for value in plan.cost],
        "order": order_to_wire(plan.order),
    }
    if isinstance(plan, ScanPlan):
        return {"op": "scan", "table": plan.table, "alg": plan.algorithm.value, **common}
    assert isinstance(plan, JoinPlan)
    return {
        "op": "join",
        "alg": plan.algorithm.value,
        "left": plan_to_wire(plan.left),
        "right": plan_to_wire(plan.right),
        **common,
    }


def plan_from_wire(data: dict[str, Any]) -> Plan:
    """Rebuild a plan tree from :func:`plan_to_wire` output.

    Raises ``ValueError`` on malformed input — a persistent cache decoding
    a corrupt record must fail loudly, not serve a half-built plan.
    """
    try:
        common = {
            "mask": int(data["mask"]),
            "rows": float_from_wire(data["rows"]),
            "cost": tuple(float_from_wire(value) for value in data["cost"]),
            "order": order_from_wire(data["order"]),
        }
        if data["op"] == "scan":
            return ScanPlan(
                table=int(data["table"]),
                algorithm=ScanAlgorithm(data["alg"]),
                **common,
            )
        if data["op"] == "join":
            return JoinPlan(
                left=plan_from_wire(data["left"]),
                right=plan_from_wire(data["right"]),
                algorithm=JoinAlgorithm(data["alg"]),
                **common,
            )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed plan record: {error!r}") from error
    raise ValueError(f"unknown plan operator {data.get('op')!r}")


def plans_to_wire(plans: list[Plan]) -> list[dict[str, Any]]:
    """Encode a plan list — a Pareto or parametric lower-envelope frontier.

    Frontier order is meaningful (backends pin it; golden tests assert it)
    and is preserved verbatim.
    """
    return [plan_to_wire(plan) for plan in plans]


def plans_from_wire(data: list[dict[str, Any]]) -> list[Plan]:
    """Inverse of :func:`plans_to_wire`, preserving frontier order."""
    return [plan_from_wire(item) for item in data]


def settings_to_wire(settings: OptimizerSettings) -> dict[str, Any]:
    """JSON-compatible encoding of an :class:`OptimizerSettings` value.

    The networked gateway ships settings with every request — a shard
    server rebuilds the exact frozen value, so fingerprints computed on
    either side of the wire agree.
    """
    return {
        "plan_space": settings.plan_space.value,
        "objectives": [objective.value for objective in settings.objectives],
        "alpha": float_to_wire(settings.alpha),
        "consider_orders": settings.consider_orders,
        "use_all_join_algorithms": settings.use_all_join_algorithms,
        "parametric": settings.parametric,
        "backend": settings.backend.value,
        # θ is a request parameter, not part of the optimization problem;
        # shipped so a shard server binds the right plan, omitted when
        # unset so pre-parametric peers keep decoding these records.
        **({"theta": settings.theta} if settings.theta is not None else {}),
    }


def settings_from_wire(data: dict[str, Any]) -> OptimizerSettings:
    """Inverse of :func:`settings_to_wire`; raises ``ValueError`` when malformed."""
    try:
        return OptimizerSettings(
            plan_space=PlanSpace(data["plan_space"]),
            objectives=tuple(Objective(value) for value in data["objectives"]),
            alpha=float_from_wire(data["alpha"]),
            consider_orders=bool(data["consider_orders"]),
            use_all_join_algorithms=bool(data["use_all_join_algorithms"]),
            parametric=bool(data["parametric"]),
            backend=Backend(data["backend"]),
            theta=(
                float(data["theta"]) if data.get("theta") is not None else None
            ),
        )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed settings record: {error!r}") from error


def timing_to_wire(timing: Any) -> dict[str, Any]:
    """Encode a :class:`~repro.cluster.simulator.SimulatedTiming`.

    Typed as ``Any`` to keep this module import-light (the simulator
    imports *this* module for its byte model); the field set is pinned by
    the round-trip tests.
    """
    return {
        "dispatch_s": timing.dispatch_s,
        "workers_done_s": timing.workers_done_s,
        "collect_s": timing.collect_s,
        "master_prune_s": timing.master_prune_s,
        "network_bytes": timing.network_bytes,
        "network_messages": timing.network_messages,
        "worker_compute_s": list(timing.worker_compute_s),
    }


def timing_from_wire(data: dict[str, Any]) -> Any:
    """Inverse of :func:`timing_to_wire`."""
    from repro.cluster.simulator import SimulatedTiming

    return SimulatedTiming(
        dispatch_s=float(data["dispatch_s"]),
        workers_done_s=float(data["workers_done_s"]),
        collect_s=float(data["collect_s"]),
        master_prune_s=float(data["master_prune_s"]),
        network_bytes=int(data["network_bytes"]),
        network_messages=int(data["network_messages"]),
        worker_compute_s=[float(value) for value in data["worker_compute_s"]],
    )


# ------------------------------------------------------------ cache snapshots

#: Identity of a shipped cache snapshot — deliberately the same format tag
#: as the :class:`~repro.service.tiers.DiskTier` log header, because a
#: snapshot frame carries exactly the log's ``put`` records: what lands on
#: disk and what crosses the wire are one codec, so rebalancing ships warm
#: state a restarted shard could equally have recovered from its own log.
SNAPSHOT_FORMAT = "repro-plan-cache"
SNAPSHOT_VERSION = 1


def snapshot_to_wire(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Wrap cache ``put`` records as a self-identifying snapshot payload.

    ``records`` are :class:`~repro.service.tiers.DiskTier` log records
    (``{"t": "put", "k": <fingerprint>, "entry": <entry wire form>}``), the
    exact lines :meth:`~repro.service.tiers.DiskTier.export_snapshot`
    writes after its header.
    """
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "records": records,
    }


def snapshot_from_wire(data: dict[str, Any]) -> list[dict[str, Any]]:
    """Validate and unwrap :func:`snapshot_to_wire` output.

    Raises ``ValueError`` on a foreign format, an unknown version, or a
    malformed record — an importing shard must reject a bad shipment
    whole rather than merge half of it into its cache.
    """
    if not isinstance(data, dict) or data.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"not a plan-cache snapshot (format {data.get('format')!r})"
            if isinstance(data, dict)
            else f"not a plan-cache snapshot (payload {type(data).__name__})"
        )
    if data.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {data.get('version')!r} "
            f"(this peer speaks {SNAPSHOT_VERSION})"
        )
    records = data.get("records")
    if not isinstance(records, list):
        raise ValueError("snapshot payload has no record list")
    for record in records:
        if (
            not isinstance(record, dict)
            or record.get("t") != "put"
            or not isinstance(record.get("k"), str)
            or not isinstance(record.get("entry"), dict)
        ):
            raise ValueError(f"malformed snapshot record: {record!r}")
    return records
