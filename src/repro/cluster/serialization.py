"""Deterministic byte-size model for objects sent over the network.

The paper's implementation sends serialized Java objects between master and
workers; its network plots measure the resulting byte counts.  We model
those sizes with Java-serialization-like constants: what matters for
reproducing the paper's traffic series is that sizes are *proportional to
object counts* — a query costs O(n) bytes, a plan O(n) bytes, and an SMA
memotable delta O(entries) bytes — with realistic constants.

All functions return integer byte counts and are pure.
"""

from __future__ import annotations

from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.query import Query

#: Fixed overhead of any serialized message (stream header, class descriptor).
MESSAGE_HEADER_BYTES = 64

#: Per-table payload: name, cardinality, per-column statistics.
PER_TABLE_BYTES = 48

#: Per-predicate payload: endpoints, columns, selectivity.
PER_PREDICATE_BYTES = 40

#: Task envelope: partition ID and partition count (two longs + object header).
TASK_HEADER_BYTES = 24

#: One serialized plan node: operator tag, table-set mask, cardinality,
#: child references (Java object overhead included).
PLAN_NODE_BYTES = 32

#: Extra bytes per cost-metric value attached to a plan.
PER_METRIC_BYTES = 8

#: One memotable entry shipped by the fine-grained (SMA) algorithm: table-set
#: key, best cost, cardinality, and the two sub-plan references.
MEMO_ENTRY_BYTES = 48

#: Table-set identifier inside an SMA task-assignment message.
SET_ID_BYTES = 8


def query_bytes(query: Query) -> int:
    """Serialized size of a query including its per-query statistics."""
    return (
        MESSAGE_HEADER_BYTES
        + PER_TABLE_BYTES * query.n_tables
        + PER_PREDICATE_BYTES * len(query.predicates)
    )


def task_bytes(query: Query) -> int:
    """Master-to-worker MPQ task: the query plus the partition envelope."""
    return query_bytes(query) + TASK_HEADER_BYTES


def plan_node_count(plan: Plan) -> int:
    """Number of operator nodes in a plan tree (2n - 1 for n tables)."""
    if isinstance(plan, ScanPlan):
        return 1
    assert isinstance(plan, JoinPlan)
    return 1 + plan_node_count(plan.left) + plan_node_count(plan.right)


def plan_bytes(plan: Plan) -> int:
    """Serialized size of one complete plan (nodes plus its cost vector)."""
    return (
        MESSAGE_HEADER_BYTES
        + PLAN_NODE_BYTES * plan_node_count(plan)
        + PER_METRIC_BYTES * len(plan.cost)
    )


def plans_bytes(plans: list[Plan]) -> int:
    """Worker-to-master result message: all partition-optimal plans.

    A worker returning an empty result still sends a header-only message.
    """
    if not plans:
        return MESSAGE_HEADER_BYTES
    per_plan = sum(
        PLAN_NODE_BYTES * plan_node_count(plan) + PER_METRIC_BYTES * len(plan.cost)
        for plan in plans
    )
    return MESSAGE_HEADER_BYTES + per_plan


def memo_entries_bytes(n_entries: int) -> int:
    """Size of a memotable delta of ``n_entries`` stored plans (SMA traffic)."""
    if n_entries < 0:
        raise ValueError(f"entry count must be >= 0, got {n_entries}")
    if n_entries == 0:
        return 0
    return MESSAGE_HEADER_BYTES + MEMO_ENTRY_BYTES * n_entries


def sma_task_bytes(n_sets: int) -> int:
    """Size of an SMA per-round task assignment naming ``n_sets`` table sets."""
    if n_sets < 0:
        raise ValueError(f"set count must be >= 0, got {n_sets}")
    return TASK_HEADER_BYTES + SET_ID_BYTES * n_sets
