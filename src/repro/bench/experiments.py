"""One driver per table/figure of the paper's evaluation (Section 6).

Every function takes a scale name (``ci``/``default``/``paper``), runs the
corresponding experiment on Steinbrunn-generated queries, and returns a
result object whose ``format()`` prints the same rows/series the paper
reports.  ``python -m repro.bench <experiment> [--scale NAME]`` drives them
from the command line.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.algorithms.moq import approximation_ratio  # noqa: F401 (re-export)
from repro.algorithms.mpq import optimize_mpq
from repro.bench.harness import ScalingSeries, mpq_scaling, sma_scaling
from repro.bench.workloads import SCALES, TABLE1_ALPHAS, ExperimentScale, worker_counts
from repro.cluster.simulator import ClusterModel, worker_compute_seconds
from repro.config import (
    MULTI_OBJECTIVE,
    OptimizerSettings,
    PlanSpace,
)
from repro.core.constraints import max_partitions
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind


def _scale(name: str) -> ExperimentScale:
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")


def _queries(n_tables: int, count: int, kind: JoinGraphKind = JoinGraphKind.STAR, seed: int = 7):
    return SteinbrunnGenerator(seed + n_tables).queries(count, n_tables, kind)


@dataclass
class FigureResult:
    """A figure's series plus context for the report."""

    figure: str
    title: str
    series: list[ScalingSeries] = field(default_factory=list)
    notes: str = ""

    def format(self) -> str:
        lines = [f"== {self.figure}: {self.title}"]
        if self.notes:
            lines.append(self.notes)
        for series in self.series:
            lines.append(series.format())
        return "\n".join(lines)


def fig1(scale_name: str = "default", cluster: ClusterModel | None = None) -> FigureResult:
    """Figure 1: MPQ vs SMA, single objective — time and network vs workers."""
    scale = _scale(scale_name)
    cluster = cluster if cluster is not None else scale.cluster()
    result = FigureResult(
        figure="Figure 1",
        title="MPQ vs SMA (single objective): time and network vs workers",
        notes=f"scale={scale.name}; medians over {scale.queries_per_point} queries",
    )
    configs = [(PlanSpace.LINEAR, n) for n in scale.fig1_linear] + [
        (PlanSpace.BUSHY, n) for n in scale.fig1_bushy
    ]
    for plan_space, n_tables in configs:
        settings = OptimizerSettings(plan_space=plan_space)
        queries = _queries(n_tables, scale.queries_per_point)
        counts = worker_counts(min(scale.max_workers, 128))
        sma_counts = [w for w in counts if w <= scale.max_sma_workers]
        label = f"{plan_space.value} {n_tables}"
        result.series.append(
            mpq_scaling(f"MPQ {label}", queries, counts, settings, cluster)
        )
        result.series.append(
            sma_scaling(f"SMA {label}", queries, sma_counts, settings, cluster)
        )
    return result


def fig2(scale_name: str = "default", cluster: ClusterModel | None = None) -> FigureResult:
    """Figure 2: MPQ scaling, single objective — time/W-time/memory/network."""
    scale = _scale(scale_name)
    cluster = cluster if cluster is not None else scale.cluster()
    result = FigureResult(
        figure="Figure 2",
        title="MPQ scaling (single objective, larger search spaces)",
        notes=f"scale={scale.name}; medians over {scale.queries_per_point} queries",
    )
    configs = [(PlanSpace.LINEAR, n) for n in scale.fig2_linear] + [
        (PlanSpace.BUSHY, n) for n in scale.fig2_bushy
    ]
    for plan_space, n_tables in configs:
        settings = OptimizerSettings(plan_space=plan_space)
        queries = _queries(n_tables, scale.queries_per_point)
        limit = min(scale.max_workers, max_partitions(n_tables, plan_space), 128)
        counts = worker_counts(limit)
        result.series.append(
            mpq_scaling(
                f"MPQ {plan_space.value} {n_tables}", queries, counts, settings, cluster
            )
        )
    return result


def fig3(scale_name: str = "default", cluster: ClusterModel | None = None) -> FigureResult:
    """Figure 3: join-graph structure has negligible impact on DP time."""
    scale = _scale(scale_name)
    cluster = cluster if cluster is not None else scale.cluster()
    result = FigureResult(
        figure="Figure 3",
        title="Join graph structure (chain/star/cycle) vs optimization time",
        notes=f"scale={scale.name}; medians over {scale.queries_per_point} queries",
    )
    kinds = (JoinGraphKind.CHAIN, JoinGraphKind.STAR, JoinGraphKind.CYCLE)
    settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
    sweep = [w for w in (2, 16, min(scale.max_workers, 128)) if w >= 2]
    for n_tables in scale.fig3_sma:
        for kind in kinds:
            queries = _queries(n_tables, scale.queries_per_point, kind)
            counts = [w for w in sweep if w <= scale.max_sma_workers]
            result.series.append(
                sma_scaling(
                    f"SMA {n_tables} tables / {kind.value}",
                    queries,
                    counts,
                    settings,
                    cluster,
                )
            )
    for n_tables in scale.fig3_mpq:
        for kind in kinds:
            queries = _queries(n_tables, scale.queries_per_point, kind)
            result.series.append(
                mpq_scaling(
                    f"MPQ {n_tables} tables / {kind.value}",
                    queries,
                    sweep,
                    settings,
                    cluster,
                )
            )
    return result


def fig4(scale_name: str = "default", cluster: ClusterModel | None = None) -> FigureResult:
    """Figure 4: multi-objective MPQ vs SMA — time and network vs workers."""
    scale = _scale(scale_name)
    cluster = cluster if cluster is not None else scale.cluster()
    result = FigureResult(
        figure="Figure 4",
        title="MPQ vs SMA (two cost metrics, alpha=10): time and network",
        notes=f"scale={scale.name}; medians over {scale.queries_per_point} queries",
    )
    configs = [(PlanSpace.LINEAR, n) for n in scale.fig4_linear] + [
        (PlanSpace.BUSHY, n) for n in scale.fig4_bushy
    ]
    for plan_space, n_tables in configs:
        settings = OptimizerSettings(
            plan_space=plan_space, objectives=MULTI_OBJECTIVE, alpha=10.0
        )
        queries = _queries(n_tables, scale.queries_per_point)
        counts = worker_counts(min(scale.max_workers, 128))
        sma_counts = [w for w in counts if w <= scale.max_sma_workers]
        label = f"{plan_space.value} {n_tables}"
        result.series.append(
            mpq_scaling(f"MPQ MO {label}", queries, counts, settings, cluster)
        )
        result.series.append(
            sma_scaling(f"SMA MO {label}", queries, sma_counts, settings, cluster)
        )
    return result


def fig5(scale_name: str = "default", cluster: ClusterModel | None = None) -> FigureResult:
    """Figure 5: multi-objective MPQ scaling (linear plan spaces)."""
    scale = _scale(scale_name)
    cluster = cluster if cluster is not None else scale.cluster()
    result = FigureResult(
        figure="Figure 5",
        title="MPQ scaling with two cost metrics (alpha=10, linear plans)",
        notes=f"scale={scale.name}; medians over {scale.queries_per_point} queries",
    )
    for n_tables in scale.fig5_linear:
        settings = OptimizerSettings(
            plan_space=PlanSpace.LINEAR, objectives=MULTI_OBJECTIVE, alpha=10.0
        )
        queries = _queries(n_tables, scale.queries_per_point)
        limit = min(scale.max_workers, max_partitions(n_tables, PlanSpace.LINEAR), 256)
        counts = worker_counts(limit)
        result.series.append(
            mpq_scaling(f"MPQ MO linear {n_tables}", queries, counts, settings, cluster)
        )
    return result


@dataclass
class Table1Result:
    """Minimal parallelism to reach precision α within a time budget."""

    budgets_s: tuple[float, ...]
    tables: tuple[int, ...]
    alphas: tuple[float, ...]
    #: (budget, n_tables, alpha) -> minimal workers, or None for infeasible.
    entries: dict[tuple[float, int, float], int | None] = field(default_factory=dict)
    notes: str = ""

    def format(self) -> str:
        header = f"{'budget_s':>9} {'tables':>7} " + " ".join(
            f"a={alpha:<5g}" for alpha in self.alphas
        )
        lines = [
            "== Table 1: minimal parallelism for precision alpha within a budget",
            self.notes,
            header,
        ]
        for budget in self.budgets_s:
            for n_tables in self.tables:
                cells = []
                for alpha in self.alphas:
                    value = self.entries.get((budget, n_tables, alpha))
                    cells.append(f"{value if value is not None else 'inf':>7}")
                lines.append(f"{budget:>9g} {n_tables:>7d} " + " ".join(cells))
        return "\n".join(lines)


def table1(scale_name: str = "default", cluster: ClusterModel | None = None) -> Table1Result:
    """Table 1: for each (budget, size, α) the minimal worker count.

    For every query size and α we sweep the worker counts once, recording
    median simulated optimization time; each budget then reads its minimal
    sufficient worker count off the same sweep (∞ when even the maximum
    tried fails) — exactly how the paper's table is assembled.
    """
    scale = _scale(scale_name)
    cluster = cluster if cluster is not None else scale.cluster()
    result = Table1Result(
        budgets_s=scale.table1_budgets_s,
        tables=scale.table1_tables,
        alphas=TABLE1_ALPHAS,
        notes=(
            f"scale={scale.name}; linear plans, two metrics; medians over "
            f"{scale.queries_per_point} queries; workers up to {scale.max_workers}"
        ),
    )
    for n_tables in scale.table1_tables:
        queries = _queries(n_tables, scale.queries_per_point)
        limit = min(scale.max_workers, max_partitions(n_tables, PlanSpace.LINEAR))
        counts = worker_counts(limit)
        for alpha in TABLE1_ALPHAS:
            settings = OptimizerSettings(
                plan_space=PlanSpace.LINEAR, objectives=MULTI_OBJECTIVE, alpha=alpha
            )
            median_times: dict[int, float] = {}
            for workers in counts:
                times = [
                    optimize_mpq(query, workers, settings, cluster).simulated.total_s
                    for query in queries
                ]
                median_times[workers] = statistics.median(times)
            for budget in scale.table1_budgets_s:
                minimal: int | None = None
                for workers in counts:
                    if median_times[workers] <= budget:
                        minimal = workers
                        break
                result.entries[(budget, n_tables, alpha)] = minimal
    return result


@dataclass
class SpeedupRow:
    """One speedup measurement (paper Section 6.2 text)."""

    plan_space: PlanSpace
    objectives: str
    n_tables: int
    workers: int
    serial_compute_s: float
    parallel_total_s: float

    @property
    def speedup(self) -> float:
        """Serial worker-only time over parallel time including overheads."""
        return self.serial_compute_s / self.parallel_total_s


@dataclass
class SpeedupResult:
    """Speedups of MPQ at the maximal supported parallelism."""

    rows: list[SpeedupRow] = field(default_factory=list)
    notes: str = ""

    def format(self) -> str:
        lines = [
            "== Speedups vs serial DP (paper Section 6.2 text)",
            self.notes,
            f"{'space':>7} {'obj':>6} {'tables':>7} {'workers':>8} "
            f"{'serial_s':>10} {'parallel_s':>11} {'speedup':>8}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.plan_space.value:>7} {row.objectives:>6} {row.n_tables:>7d} "
                f"{row.workers:>8d} {row.serial_compute_s:>10.3f} "
                f"{row.parallel_total_s:>11.3f} {row.speedup:>8.2f}"
            )
        return "\n".join(lines)


def speedups(scale_name: str = "default", cluster: ClusterModel | None = None) -> SpeedupResult:
    """Speedup of MPQ at maximal parallelism over serial optimization.

    Follows the paper's definition: the baseline is the single-worker run
    *without* master computation and communication overheads; the parallel
    time *includes* them.
    """
    scale = _scale(scale_name)
    cluster = cluster if cluster is not None else scale.cluster()
    result = SpeedupResult(
        notes=f"scale={scale.name}; medians over {scale.queries_per_point} queries"
    )
    single = [
        (PlanSpace.LINEAR, n, OptimizerSettings(plan_space=PlanSpace.LINEAR))
        for n in scale.speedup_linear
    ] + [
        (PlanSpace.BUSHY, n, OptimizerSettings(plan_space=PlanSpace.BUSHY))
        for n in scale.speedup_bushy
    ]
    multi = [
        (
            PlanSpace.LINEAR,
            n,
            OptimizerSettings(
                plan_space=PlanSpace.LINEAR, objectives=MULTI_OBJECTIVE, alpha=10.0
            ),
        )
        for n in scale.fig5_linear
    ]
    for plan_space, n_tables, settings in single + multi:
        queries = _queries(n_tables, scale.queries_per_point)
        workers = min(scale.max_workers, max_partitions(n_tables, plan_space))
        serial_times, parallel_times = [], []
        for query in queries:
            serial_report = optimize_mpq(query, 1, settings, cluster)
            serial_times.append(
                worker_compute_seconds(
                    cluster, serial_report.result.partition_results[0].stats
                )
            )
            parallel_report = optimize_mpq(query, workers, settings, cluster)
            parallel_times.append(parallel_report.simulated.total_s)
        result.rows.append(
            SpeedupRow(
                plan_space=plan_space,
                objectives="multi" if settings.is_multi_objective else "single",
                n_tables=n_tables,
                workers=workers,
                serial_compute_s=statistics.median(serial_times),
                parallel_total_s=statistics.median(parallel_times),
            )
        )
    return result
