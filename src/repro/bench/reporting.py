"""ASCII rendering of scaling figures (log-log charts, paper-style).

The paper's figures plot medians on log axes against the worker count.
:func:`log_chart` renders the same picture in plain text so experiment
reports (EXPERIMENTS.md, CLI output) can show *shape* at a glance::

    time_ms vs workers (log-log)
    1.2e+02 |A
            |  A
            |     A  B
    ...

Each series gets a letter; points landing on the same cell share it
(later series win).  Pure string generation, no plotting dependency.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.bench.harness import ScalingPoint, ScalingSeries

#: Value selectors a chart can plot.
VALUE_GETTERS: dict[str, Callable[[ScalingPoint], float]] = {
    "time_ms": lambda point: point.time_ms,
    "worker_time_ms": lambda point: point.worker_time_ms,
    "memory_relations": lambda point: point.memory_relations,
    "network_bytes": lambda point: point.network_bytes,
}


def _log(value: float) -> float:
    return math.log10(max(value, 1e-12))


def log_chart(
    series_list: Sequence[ScalingSeries],
    value: str = "time_ms",
    height: int = 12,
    width: int = 60,
) -> str:
    """Render series as a log-log ASCII chart with a legend."""
    getter = VALUE_GETTERS.get(value)
    if getter is None:
        raise ValueError(
            f"unknown value {value!r}; choose from {sorted(VALUE_GETTERS)}"
        )
    if height < 2 or width < 8:
        raise ValueError("chart too small")
    points = [
        (series_index, point.workers, getter(point))
        for series_index, series in enumerate(series_list)
        for point in series.points
    ]
    if not points:
        raise ValueError("no data points to chart")

    min_x = _log(min(workers for _, workers, _ in points))
    max_x = _log(max(workers for _, workers, _ in points))
    min_y = _log(min(val for _, _, val in points))
    max_y = _log(max(val for _, _, val in points))
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for series_index, workers, val in points:
        column = round((_log(workers) - min_x) / span_x * (width - 1))
        row = round((max_y - _log(val)) / span_y * (height - 1))
        grid[row][column] = chr(ord("A") + series_index % 26)

    top_label = f"{10 ** max_y:.3g}"
    bottom_label = f"{10 ** min_y:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    lines = [f"{value} vs workers (log-log)"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    min_workers = min(workers for _, workers, _ in points)
    max_workers = max(workers for _, workers, _ in points)
    lines.append(
        f"{' ' * label_width}  workers: {min_workers} .. {max_workers}"
    )
    for series_index, series in enumerate(series_list):
        letter = chr(ord("A") + series_index % 26)
        lines.append(f"{' ' * label_width}  {letter} = {series.label}")
    return "\n".join(lines)


def chart_figure(
    series_list: Sequence[ScalingSeries],
    values: Sequence[str] = ("time_ms", "network_bytes"),
) -> str:
    """Render several charts for one figure, as the paper's panels."""
    return "\n\n".join(log_chart(series_list, value) for value in values)
