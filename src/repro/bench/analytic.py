"""Analytic (closed-form) scaling series at the paper's original sizes.

Pure-Python DP cannot execute 24-table queries in reasonable time, but the
paper's own analysis (Section 5) makes execution unnecessary for predicting
the *scaling series*: per-worker work and memory are exact functions of
``(n, l)`` given by Theorems 2/3/6/7, and the counting module computes them
exactly (property-tested against enumeration in ``tests/test_counting.py``).

This module composes those counts with the cluster model into predicted
Figure 2 series for the paper's query sizes (Linear 20/24, Bushy 15/18,
workers 1…128).  The only workload-dependent quantity is how many *costed
candidates* each split yields (operator applicability); it is measured on a
small executed query and carried over — everything else is exact.

Single-objective only: multi-objective per-set frontier sizes have no closed
form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import ScalingPoint, ScalingSeries
from repro.cluster.serialization import (
    MESSAGE_HEADER_BYTES,
    PER_METRIC_BYTES,
    PER_PREDICATE_BYTES,
    PER_TABLE_BYTES,
    PLAN_NODE_BYTES,
    TASK_HEADER_BYTES,
)
from repro.cluster.simulator import DEFAULT_CLUSTER, ClusterModel
from repro.config import OptimizerSettings, PlanSpace
from repro.core.constraints import max_partitions
from repro.core.counting import (
    admissible_result_count_at_least_2,
    bushy_assignment_count,
    linear_split_count,
)
from repro.core.serial import optimize_serial
from repro.query.generator import SteinbrunnGenerator


@dataclass(frozen=True)
class AnalyticWorkerModel:
    """Exact per-worker counters for one ``(n, l, space)`` configuration."""

    n_tables: int
    n_constraints: int
    plan_space: PlanSpace

    @property
    def admissible_results(self) -> int:
        """Join results of cardinality >= 2 per worker (Theorems 2/3)."""
        return admissible_result_count_at_least_2(
            self.n_tables, self.n_constraints, self.plan_space
        )

    @property
    def splits_considered(self) -> int:
        """Operand pairs tried per worker (Theorems 6/7)."""
        if self.plan_space is PlanSpace.LINEAR:
            return linear_split_count(self.n_tables, self.n_constraints)
        return bushy_splits_executed(self.n_tables, self.n_constraints)


def bushy_splits_executed(n_tables: int, n_constraints: int) -> int:
    """Exact non-degenerate splits the bushy worker tries.

    The closed-form assignment count includes, per admissible join result,
    the two degenerate operands (empty and full) and counts the empty set
    and singletons; subtracting those yields exactly the worker's
    ``splits_considered`` counter.
    """
    assignments = bushy_assignment_count(n_tables, n_constraints)
    at_least_2 = admissible_result_count_at_least_2(
        n_tables, n_constraints, PlanSpace.BUSHY
    )
    # 1 assignment for the empty set, 2 per singleton, 2 degenerates per
    # admissible result of cardinality >= 2.
    return assignments - 1 - 2 * n_tables - 2 * at_least_2


def measure_candidates_per_split(
    plan_space: PlanSpace, probe_tables: int = 8, seed: int = 97
) -> float:
    """Measure costed candidates per split on a small executed query.

    Operator applicability (hash/sort-merge need an equi-predicate) is the
    only workload-dependent part of the work model; for star queries it is
    stable across sizes, so a small probe transfers to paper-scale queries.
    """
    query = SteinbrunnGenerator(seed).query(probe_tables)
    settings = OptimizerSettings(plan_space=plan_space)
    stats = optimize_serial(query, settings).stats
    return stats.plans_considered / stats.splits_considered


def _star_task_bytes(n_tables: int) -> int:
    """task_bytes for an n-table star query, without building the query."""
    return (
        MESSAGE_HEADER_BYTES
        + PER_TABLE_BYTES * n_tables
        + PER_PREDICATE_BYTES * (n_tables - 1)
        + TASK_HEADER_BYTES
    )


def _plan_message_bytes(n_tables: int, n_metrics: int = 1) -> int:
    """plans_bytes for one complete plan of an n-table query."""
    return (
        MESSAGE_HEADER_BYTES
        + PLAN_NODE_BYTES * (2 * n_tables - 1)
        + PER_METRIC_BYTES * n_metrics
    )


def predict_point(
    n_tables: int,
    workers: int,
    plan_space: PlanSpace,
    cluster: ClusterModel = DEFAULT_CLUSTER,
    candidates_per_split: float | None = None,
) -> ScalingPoint:
    """Predict one Figure 2 data point from closed forms.

    ``workers`` must be a power of two within the space's maximum.
    """
    if workers & (workers - 1):
        raise ValueError(f"workers must be a power of two, got {workers}")
    if workers > max_partitions(n_tables, plan_space):
        raise ValueError(
            f"{workers} workers exceed the maximum for {n_tables} tables"
        )
    if candidates_per_split is None:
        candidates_per_split = measure_candidates_per_split(plan_space)
    n_constraints = workers.bit_length() - 1
    model = AnalyticWorkerModel(n_tables, n_constraints, plan_space)
    splits = model.splits_considered
    results = model.admissible_results
    candidates = splits * candidates_per_split
    compute_s = (
        candidates * cluster.seconds_per_plan
        + splits * cluster.seconds_per_split
        + results * cluster.seconds_per_result
    )
    task = _star_task_bytes(n_tables)
    plan_msg = _plan_message_bytes(n_tables)
    dispatch_s = workers * cluster.network.transfer_seconds(task)
    collect_s = workers * cluster.network.transfer_seconds(plan_msg)
    total_s = (
        dispatch_s
        + cluster.task_setup_s
        + compute_s
        + collect_s
        + workers * cluster.master_seconds_per_plan
    )
    # Memory counts singletons too (the worker stores scan plans).
    memory = results + n_tables
    return ScalingPoint(
        workers=workers,
        time_ms=total_s * 1e3,
        worker_time_ms=compute_s * 1e3,
        memory_relations=memory,
        network_bytes=workers * (task + plan_msg),
    )


def predict_series(
    n_tables: int,
    plan_space: PlanSpace,
    max_workers: int = 128,
    cluster: ClusterModel = DEFAULT_CLUSTER,
    candidates_per_split: float | None = None,
) -> ScalingSeries:
    """Predicted Figure 2 series for one query size."""
    if candidates_per_split is None:
        candidates_per_split = measure_candidates_per_split(plan_space)
    points = []
    workers = 1
    limit = min(max_workers, max_partitions(n_tables, plan_space))
    while workers <= limit:
        points.append(
            predict_point(
                n_tables, workers, plan_space, cluster, candidates_per_split
            )
        )
        workers *= 2
    return ScalingSeries(
        label=f"analytic {plan_space.value} {n_tables}", points=points
    )


def paper_scale_fig2(
    cluster: ClusterModel = DEFAULT_CLUSTER,
) -> list[ScalingSeries]:
    """Predicted Figure 2 series at the paper's original query sizes."""
    series = []
    linear_cps = measure_candidates_per_split(PlanSpace.LINEAR)
    bushy_cps = measure_candidates_per_split(PlanSpace.BUSHY, probe_tables=7)
    for n_tables in (20, 24):
        series.append(
            predict_series(
                n_tables, PlanSpace.LINEAR, 128, cluster, linear_cps
            )
        )
    for n_tables in (15, 18):
        series.append(
            predict_series(n_tables, PlanSpace.BUSHY, 128, cluster, bushy_cps)
        )
    return series
