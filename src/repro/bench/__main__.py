"""Command-line driver: ``python -m repro.bench <experiment> [--scale NAME]``.

Experiments: fig1 fig2 fig3 fig4 fig5 table1 speedups all.
Scales: ci (seconds), default (minutes), paper (the original sizes).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments

_EXPERIMENTS = {
    "fig1": experiments.fig1,
    "fig2": experiments.fig2,
    "fig3": experiments.fig3,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "table1": experiments.table1,
    "speedups": experiments.speedups,
}


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their paper-style reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=("ci", "default", "paper"),
        help="workload scale (default: 'default'; 'paper' may take hours)",
    )
    args = parser.parse_args(argv)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        result = _EXPERIMENTS[name](args.scale)
        elapsed = time.perf_counter() - started
        print(result.format())
        print(f"[{name} completed in {elapsed:.1f}s wall-clock]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
