"""Compare two recorded experiment logs (regression checking).

After a change to the optimizer or the cluster model, re-run an experiment
and diff it against the previous log::

    from repro.bench.compare import compare_logs
    print(compare_logs(old_text, new_text))

Matching is by (block, series label, worker count); differences are reported
as ratios so scale-free regressions stand out.  Network bytes and memory
must match *exactly* for a pure-performance change — they are deterministic
counts — so any drift there is flagged as structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.logparse import extract_blocks, parse_series


@dataclass
class SeriesDelta:
    """Differences for one (block, series) pair."""

    block: str
    label: str
    #: worker count -> (old, new) simulated time in ms.
    time_changes: dict[int, tuple[float, float]] = field(default_factory=dict)
    #: worker counts where deterministic counters (memory/network) diverged.
    structural_changes: list[int] = field(default_factory=list)
    only_in_old: list[int] = field(default_factory=list)
    only_in_new: list[int] = field(default_factory=list)

    @property
    def worst_time_ratio(self) -> float:
        """Largest new/old time ratio (1.0 when nothing changed)."""
        ratios = [
            new / old
            for old, new in self.time_changes.values()
            if old > 0
        ]
        return max(ratios, default=1.0)

    def is_clean(self, tolerance: float = 0.05) -> bool:
        """No structural drift and all times within ``tolerance``."""
        if self.structural_changes or self.only_in_old or self.only_in_new:
            return False
        return all(
            abs(new / old - 1.0) <= tolerance
            for old, new in self.time_changes.values()
            if old > 0
        )


def compare_logs(old_text: str, new_text: str) -> list[SeriesDelta]:
    """Structured comparison of two experiment logs."""
    old_blocks = extract_blocks(old_text)
    new_blocks = extract_blocks(new_text)
    deltas: list[SeriesDelta] = []
    for block_name in sorted(set(old_blocks) & set(new_blocks)):
        old_series = {s.label: s for s in parse_series(old_blocks[block_name])}
        new_series = {s.label: s for s in parse_series(new_blocks[block_name])}
        for label in sorted(set(old_series) | set(new_series)):
            delta = SeriesDelta(block=block_name, label=label)
            old = old_series.get(label)
            new = new_series.get(label)
            if old is None or new is None:
                deltas.append(delta)
                continue
            old_points = {p.workers: p for p in old.points}
            new_points = {p.workers: p for p in new.points}
            delta.only_in_old = sorted(set(old_points) - set(new_points))
            delta.only_in_new = sorted(set(new_points) - set(old_points))
            for workers in sorted(set(old_points) & set(new_points)):
                a, b = old_points[workers], new_points[workers]
                delta.time_changes[workers] = (a.time_ms, b.time_ms)
                if (
                    a.network_bytes != b.network_bytes
                    or a.memory_relations != b.memory_relations
                ):
                    delta.structural_changes.append(workers)
            deltas.append(delta)
    return deltas


def format_comparison(deltas: list[SeriesDelta], tolerance: float = 0.05) -> str:
    """Human-readable comparison report; clean series are summarized."""
    lines = []
    clean = 0
    for delta in deltas:
        if delta.is_clean(tolerance):
            clean += 1
            continue
        lines.append(f"{delta.block} / {delta.label}:")
        if delta.structural_changes:
            lines.append(
                f"  STRUCTURAL drift at workers {delta.structural_changes} "
                f"(memory or network counts changed)"
            )
        if delta.only_in_old:
            lines.append(f"  dropped worker counts: {delta.only_in_old}")
        if delta.only_in_new:
            lines.append(f"  added worker counts: {delta.only_in_new}")
        for workers, (old, new) in sorted(delta.time_changes.items()):
            if old > 0 and abs(new / old - 1.0) > tolerance:
                lines.append(
                    f"  workers={workers}: time {old:.2f} -> {new:.2f} ms "
                    f"(x{new / old:.2f})"
                )
    lines.append(
        f"{clean}/{len(deltas)} series unchanged within "
        f"{tolerance:.0%} time tolerance"
    )
    return "\n".join(lines)
