"""Parsing of experiment report logs back into structured series.

The experiment drivers print fixed-width series tables; this module parses
them back into :class:`~repro.bench.harness.ScalingSeries` so that reports
(EXPERIMENTS.md assembly, chart rendering, regression comparisons) can be
built from recorded logs without re-running hours of sweeps.
"""

from __future__ import annotations

import re
import statistics

from repro.bench.harness import ScalingPoint, ScalingSeries

#: A series data row: workers, time, worker time, memory, network.
ROW_RE = re.compile(r"^\s*(\d+)\s+([\d.]+)\s+([\d.]+)\s+(\d+)\s+(\d+)\s*$")


def extract_blocks(text: str) -> dict[str, str]:
    """Split a log into experiment blocks keyed by their ``== `` header.

    A block runs from its header to the matching ``[... completed ...]``
    marker (or the next header / end of text).
    """
    blocks: dict[str, str] = {}
    current_key: str | None = None
    current_lines: list[str] = []

    def flush() -> None:
        nonlocal current_key, current_lines
        if current_key is not None:
            blocks[current_key] = "\n".join(current_lines).rstrip()
        current_key = None
        current_lines = []

    for line in text.splitlines():
        if line.startswith("== "):
            flush()
            current_key = line[3:].split(":")[0].strip()
            current_lines = [line]
        elif line.startswith("[") and "completed" in line:
            flush()
        elif current_key is not None:
            current_lines.append(line)
    flush()
    return blocks


def parse_series(block: str) -> list[ScalingSeries]:
    """Parse the ``-- label`` series tables out of one report block."""
    series_list: list[ScalingSeries] = []
    label: str | None = None
    points: list[ScalingPoint] = []

    def flush() -> None:
        nonlocal label, points
        if label is not None:
            series_list.append(ScalingSeries(label=label, points=points))
        label = None
        points = []

    for line in block.splitlines():
        if line.startswith("-- "):
            flush()
            label = line[3:].strip()
            continue
        match = ROW_RE.match(line)
        if match and label is not None:
            workers, time_ms, w_time, memory, network = match.groups()
            points.append(
                ScalingPoint(
                    workers=int(workers),
                    time_ms=float(time_ms),
                    worker_time_ms=float(w_time),
                    memory_relations=float(memory),
                    network_bytes=float(network),
                )
            )
    flush()
    return series_list


def doubling_factors(series: ScalingSeries, attribute: str) -> list[float]:
    """Successive ratios ``value(2w) / value(w)`` along a series."""
    values = {point.workers: getattr(point, attribute) for point in series.points}
    factors = []
    for workers, value in sorted(values.items()):
        doubled = values.get(workers * 2)
        if doubled is not None and value > 0:
            factors.append(doubled / value)
    return factors


def summarize_factors(series_list: list[ScalingSeries], attribute: str) -> str:
    """One line per series: median per-doubling factor of ``attribute``."""
    lines = []
    for series in series_list:
        factors = doubling_factors(series, attribute)
        if factors:
            lines.append(
                f"  {series.label}: median x{statistics.median(factors):.3f} "
                f"per worker doubling"
            )
    return "\n".join(lines)


def network_ratio_summary(series_list: list[ScalingSeries]) -> str:
    """SMA-vs-MPQ byte ratios at the largest shared worker count."""
    by_label = {series.label: series for series in series_list}
    lines = []
    for label, series in by_label.items():
        if not label.startswith("MPQ"):
            continue
        sma = by_label.get(label.replace("MPQ", "SMA"))
        if sma is None:
            continue
        shared = sorted(
            set(series.network_by_workers()) & set(sma.network_by_workers())
        )
        if not shared:
            continue
        at = shared[-1]
        ratio = sma.network_by_workers()[at] / series.network_by_workers()[at]
        lines.append(
            f"  {label.replace('MPQ ', '')}: SMA ships x{ratio:.1f} the bytes "
            f"of MPQ at {at} workers"
        )
    return "\n".join(lines)
