"""Experiment harness regenerating every table and figure of the paper."""

from repro.bench.harness import (
    ScalingPoint,
    ScalingSeries,
    mpq_scaling,
    run_mpq_point,
    run_sma_point,
    sma_scaling,
)
from repro.bench.workloads import ExperimentScale, SCALES
from repro.bench.experiments import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    speedups,
    table1,
)
from repro.bench.analytic import paper_scale_fig2, predict_point, predict_series
from repro.bench.reporting import chart_figure, log_chart
from repro.bench.traffic import (
    TenantProfile,
    TrafficProfile,
    TrafficRequest,
    generate_traffic,
    replay_async,
    replay_threaded,
    unique_fingerprints,
)

__all__ = [
    "TenantProfile",
    "TrafficProfile",
    "TrafficRequest",
    "generate_traffic",
    "replay_async",
    "replay_threaded",
    "unique_fingerprints",
    "ScalingPoint",
    "ScalingSeries",
    "mpq_scaling",
    "run_mpq_point",
    "run_sma_point",
    "sma_scaling",
    "ExperimentScale",
    "SCALES",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "speedups",
    "table1",
    "paper_scale_fig2",
    "predict_point",
    "predict_series",
    "chart_figure",
    "log_chart",
]
