"""Seeded multi-tenant optimizer traffic: generation and replay.

Serving-layer behavior — batching windows filling up, admission control
rejecting, tenants contending — only shows under traffic whose *shape*
resembles production: a few fingerprints dominating (Zipf popularity),
requests arriving in bursts rather than a smooth stream, several tenants of
very different intensity, and a mix of optimization features (plain,
interesting-orders, parametric) keyed to different cache entries.  This
module generates exactly that shape **deterministically**: the same
:class:`TrafficProfile` always produces the same schedule, so a soak test
that replays it asserts exact counter values, and a benchmark replays the
identical request stream against two serving stacks.

A schedule is a plain list of :class:`TrafficRequest` values ordered by
arrival offset; :func:`replay_threaded` drives it through the threaded
:class:`~repro.service.gateway.ShardedOptimizerGateway` with a herd of
client threads, and :func:`replay_async` drives the identical schedule
through an :class:`~repro.service.aio.AsyncOptimizerGateway` with a herd of
client tasks, honoring ``retry_after_s`` on admission rejections.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from dataclasses import dataclass, field

import random

from repro.config import PARAMETRIC_OBJECTIVES, OptimizerSettings
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind, Query
from repro.service.fingerprint import fingerprint
from repro.service.service import ServiceResult

#: The optimizer-feature mix a serving tier sees: each feature is a distinct
#: ``OptimizerSettings`` value, hence a distinct fingerprint per query.
FEATURE_SETTINGS: dict[str, OptimizerSettings] = {
    "plain": OptimizerSettings(),
    "orders": OptimizerSettings(consider_orders=True),
    "parametric": OptimizerSettings(
        objectives=PARAMETRIC_OBJECTIVES, parametric=True
    ),
}


def settings_for(feature: str) -> OptimizerSettings:
    """The :class:`OptimizerSettings` a feature name stands for."""
    try:
        return FEATURE_SETTINGS[feature]
    except KeyError:
        raise ValueError(
            f"unknown feature {feature!r}; choose from {sorted(FEATURE_SETTINGS)}"
        ) from None


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's share of the traffic stream."""

    name: str
    #: Relative traffic intensity (probability weight per request).
    weight: float = 1.0


@dataclass(frozen=True)
class TrafficProfile:
    """Everything that determines a generated schedule, seed included.

    The defaults make a small, fast profile suitable for tier-1 soak tests;
    benchmarks scale ``n_requests``/``n_unique``/``tables`` up explicitly.
    """

    n_requests: int = 128
    #: Size of the unique query pool that Zipf popularity ranks over.
    n_unique: int = 12
    tables: tuple[int, int] = (4, 6)
    kinds: tuple[JoinGraphKind, ...] = (
        JoinGraphKind.STAR,
        JoinGraphKind.CHAIN,
        JoinGraphKind.CYCLE,
    )
    #: Zipf skew ``s``: rank ``r`` is drawn with weight ``1 / r**s``.
    zipf_skew: float = 1.2
    tenants: tuple[TenantProfile, ...] = (
        TenantProfile("alpha", weight=4.0),  # the hot tenant
        TenantProfile("beta", weight=2.0),
        TenantProfile("gamma", weight=1.0),
    )
    #: Feature mix as (name, weight) pairs over :data:`FEATURE_SETTINGS`.
    features: tuple[tuple[str, float], ...] = (
        ("plain", 0.6),
        ("orders", 0.25),
        ("parametric", 0.15),
    )
    #: Worker counts requested by clients (fingerprints hash the *resolved*
    #: partition count, so distinct requests here may still share entries).
    workers: tuple[int, ...] = (2, 4, 8)
    #: Bursty arrivals: bursts of ~``burst_mean`` requests with
    #: ``intra_gap_ms`` mean spacing, separated by ``inter_gap_ms`` lulls.
    burst_mean: float = 8.0
    intra_gap_ms: float = 0.05
    inter_gap_ms: float = 2.0
    #: θ values drawn (uniformly) for parametric-feature requests.  Empty
    #: (default) leaves parametric requests unbound — the pre-envelope
    #: behavior — so existing seeded schedules replay unchanged; a non-empty
    #: tuple makes each parametric request ask for a concrete θ, exercising
    #: the serve-from-envelope path.
    parametric_thetas: tuple[float, ...] = ()
    seed: int = 0


@dataclass(frozen=True)
class TrafficRequest:
    """One scheduled arrival."""

    #: Arrival offset from replay start, seconds (non-decreasing in a schedule).
    at_s: float
    tenant: str
    query: Query
    feature: str
    n_workers: int
    #: Popularity rank of the query in the profile's pool (0 = hottest).
    rank: int
    #: θ binding for a parametric request (``None`` = unbound).  θ is not
    #: part of the fingerprint, so requests differing only in θ share one
    #: cache entry — the envelope — by design.
    theta: float | None = None

    @property
    def settings(self) -> OptimizerSettings:
        """The settings this request optimizes under."""
        base = settings_for(self.feature)
        if self.theta is None:
            return base
        return base.replace(theta=self.theta)


def generate_traffic(profile: TrafficProfile = TrafficProfile()) -> list[TrafficRequest]:
    """Generate the deterministic schedule a profile describes.

    The query pool is generated first (so pool contents depend only on the
    seed and pool parameters), then popularity, tenant, feature, worker
    count, and arrival gaps are drawn per request from one seeded stream.
    """
    if profile.n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if profile.n_unique < 1:
        raise ValueError("n_unique must be >= 1")
    for feature, __ in profile.features:
        settings_for(feature)  # validate early

    rng = random.Random(profile.seed)
    generator = SteinbrunnGenerator(profile.seed, clustered_tables=True)
    low, high = profile.tables
    pool = [
        generator.query(rng.randint(low, high), rng.choice(profile.kinds))
        for __ in range(profile.n_unique)
    ]

    ranks = list(range(profile.n_unique))
    rank_weights = [1.0 / (rank + 1) ** profile.zipf_skew for rank in ranks]
    tenant_names = [tenant.name for tenant in profile.tenants]
    tenant_weights = [tenant.weight for tenant in profile.tenants]
    feature_names = [name for name, __ in profile.features]
    feature_weights = [weight for __, weight in profile.features]

    schedule: list[TrafficRequest] = []
    at_s = 0.0
    burst_left = 0
    for __ in range(profile.n_requests):
        if burst_left <= 0:
            at_s += rng.expovariate(1.0) * profile.inter_gap_ms / 1e3
            burst_left = 1 + int(rng.expovariate(1.0 / max(profile.burst_mean, 1e-9)))
        else:
            at_s += rng.expovariate(1.0) * profile.intra_gap_ms / 1e3
        burst_left -= 1
        rank = rng.choices(ranks, weights=rank_weights)[0]
        feature = rng.choices(feature_names, weights=feature_weights)[0]
        theta = (
            rng.choice(profile.parametric_thetas)
            if feature == "parametric" and profile.parametric_thetas
            else None
        )
        schedule.append(
            TrafficRequest(
                at_s=at_s,
                tenant=rng.choices(tenant_names, weights=tenant_weights)[0],
                query=pool[rank],
                feature=feature,
                n_workers=rng.choice(profile.workers),
                rank=rank,
                theta=theta,
            )
        )
    return schedule


def unique_fingerprints(schedule: list[TrafficRequest]) -> set[str]:
    """The distinct cache keys a schedule touches.

    Distinct ``(query, feature, workers)`` combinations can still collide —
    worker counts that resolve to the same partition count share a
    fingerprint by design — so tests assert DP-run counts against this, not
    against naive tuple counting.
    """
    return {
        fingerprint(request.query, request.settings, request.n_workers)
        for request in schedule
    }


def latency_percentiles(
    values_ms: list[float], points: tuple[float, ...] = (50, 90, 99)
) -> dict[str, float]:
    """Nearest-rank percentiles of a latency sample, in milliseconds.

    Nearest-rank: the p-th percentile of N ordered values is the value at
    rank ``ceil(p/100 * N)`` (1-based), i.e. index ``ceil(p/100 * N) - 1``.
    """
    ordered = sorted(values_ms)
    if not ordered:
        return {f"p{point:g}": 0.0 for point in points}
    return {
        f"p{point:g}": ordered[
            min(
                len(ordered) - 1,
                max(0, math.ceil(len(ordered) * point / 100.0) - 1),
            )
        ]
        for point in points
    }


@dataclass
class ReplayReport:
    """What a replay observed, aligned with the schedule order."""

    results: list[ServiceResult]
    latencies_ms: list[float]
    wall_s: float
    #: Admission rejections that were retried (async replay only).
    retries: int = 0
    clients: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def throughput_qps(self) -> float:
        """Completed requests per second of replay wall time."""
        return len(self.results) / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentiles(self, points: tuple[float, ...] = (50, 90, 99)) -> dict[str, float]:
        """Latency percentiles in milliseconds, nearest-rank."""
        return latency_percentiles(self.latencies_ms, points)


def _client_slices(schedule: list[TrafficRequest], n_clients: int) -> list[list[int]]:
    """Round-robin schedule indices over clients, preserving arrival order."""
    slices: list[list[int]] = [[] for __ in range(n_clients)]
    for index in range(len(schedule)):
        slices[index % n_clients].append(index)
    return slices


def replay_threaded(
    gateway,
    schedule: list[TrafficRequest],
    n_clients: int = 8,
    paced: bool = False,
) -> ReplayReport:
    """Drive a schedule through a threaded gateway with a client-thread herd.

    Each client thread submits its round-robin slice of the schedule in
    arrival order via ``gateway.optimize``.  With ``paced=True`` a client
    sleeps until each request's ``at_s`` offset; the default replays as fast
    as the gateway allows (the throughput-measurement mode).
    """
    results: list[ServiceResult | None] = [None] * len(schedule)
    latencies: list[float] = [0.0] * len(schedule)
    errors: list[BaseException | None] = [None] * n_clients
    barrier = threading.Barrier(n_clients + 1)

    def client(indices: list[int], slot: int) -> None:
        barrier.wait()
        started = time.perf_counter()
        try:
            for index in indices:
                request = schedule[index]
                if paced:
                    delay = request.at_s - (time.perf_counter() - started)
                    if delay > 0:
                        time.sleep(delay)
                begin = time.perf_counter()
                results[index] = gateway.optimize(
                    request.query, request.settings, request.n_workers
                )
                latencies[index] = (time.perf_counter() - begin) * 1e3
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors[slot] = error

    threads = [
        threading.Thread(target=client, args=(indices, slot))
        for slot, indices in enumerate(_client_slices(schedule, n_clients))
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    for error in errors:
        if error is not None:
            raise error
    assert all(result is not None for result in results)
    return ReplayReport(
        results=results,  # type: ignore[arg-type]
        latencies_ms=latencies,
        wall_s=wall_s,
        clients=n_clients,
    )


async def replay_async(
    agateway,
    schedule: list[TrafficRequest],
    n_clients: int = 8,
    paced: bool = False,
    max_attempts: int = 200,
) -> ReplayReport:
    """Drive a schedule through the async gateway with a client-task herd.

    The same round-robin slicing as :func:`replay_threaded`, so the two
    replays are comparable request-for-request.  Admission rejections
    (:class:`~repro.service.aio.GatewayOverloadedError`) are honored: the
    client sleeps the advertised ``retry_after_s`` and resubmits, up to
    ``max_attempts`` per request; retries are counted in the report.
    """
    from repro.service.aio import GatewayOverloadedError

    results: list[ServiceResult | None] = [None] * len(schedule)
    latencies: list[float] = [0.0] * len(schedule)
    retries = 0
    loop = asyncio.get_running_loop()
    started = loop.time()

    async def client(indices: list[int]) -> None:
        nonlocal retries
        for index in indices:
            request = schedule[index]
            if paced:
                delay = request.at_s - (loop.time() - started)
                if delay > 0:
                    await asyncio.sleep(delay)
            begin = loop.time()
            for attempt in range(max_attempts):
                try:
                    results[index] = await agateway.optimize(
                        request.query,
                        request.settings,
                        request.n_workers,
                        tenant=request.tenant,
                    )
                    break
                except GatewayOverloadedError as rejection:
                    retries += 1
                    if attempt == max_attempts - 1:
                        raise
                    await asyncio.sleep(rejection.retry_after_s)
            latencies[index] = (loop.time() - begin) * 1e3

    await asyncio.gather(
        *[client(indices) for indices in _client_slices(schedule, n_clients)]
    )
    wall_s = loop.time() - started
    assert all(result is not None for result in results)
    return ReplayReport(
        results=results,  # type: ignore[arg-type]
        latencies_ms=latencies,
        wall_s=wall_s,
        retries=retries,
        clients=n_clients,
    )
