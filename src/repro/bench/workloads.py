"""Experiment scales: paper-sized workloads and scaled-down defaults.

Pure Python executes the DP roughly two orders of magnitude slower per
operation than the paper's Java implementation, so the default scales shrink
query sizes while preserving every qualitative property (who wins, scaling
factors per worker doubling, crossover positions).  The ``paper`` scale runs
the original sizes — expect minutes to hours.  DESIGN.md documents this
substitution.

Scale semantics:

* ``ci`` — seconds; used by the pytest benchmark suite.
* ``default`` — a few minutes; used to produce EXPERIMENTS.md.
* ``paper`` — the paper's original query sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import NetworkModel
from repro.cluster.simulator import ClusterModel


@dataclass(frozen=True)
class ExperimentScale:
    """Query sizes and repetition counts for one experiment scale."""

    name: str
    #: Queries per data point (the paper uses 20).
    queries_per_point: int
    #: Figure 1 sizes: [(linear sizes), (bushy sizes)].
    fig1_linear: tuple[int, ...]
    fig1_bushy: tuple[int, ...]
    #: Figure 2 sizes.
    fig2_linear: tuple[int, ...]
    fig2_bushy: tuple[int, ...]
    #: Figure 3: SMA sizes and MPQ sizes.
    fig3_sma: tuple[int, ...]
    fig3_mpq: tuple[int, ...]
    #: Figure 4 sizes (multi-objective): linear and bushy.
    fig4_linear: tuple[int, ...]
    fig4_bushy: tuple[int, ...]
    #: Figure 5 sizes (multi-objective scaling, linear).
    fig5_linear: tuple[int, ...]
    #: Table 1 query sizes and simulated-time budgets (seconds).
    table1_tables: tuple[int, ...]
    table1_budgets_s: tuple[float, ...]
    #: Speedup-experiment sizes: (linear, bushy) query sizes.
    speedup_linear: tuple[int, ...]
    speedup_bushy: tuple[int, ...]
    #: Cap on the worker counts swept.
    max_workers: int = 128
    #: Worker cap for SMA sweeps (its cost explodes in worker count).
    max_sma_workers: int = 128
    #: Per-task setup overhead of the simulated cluster (seconds).  Scaled
    #: down together with the query sizes so that the compute-to-overhead
    #: ratio matches the paper's regime (their large queries run minutes
    #: against ~100 ms Spark task overheads).
    task_setup_s: float = 0.05
    #: Per-message network latency of the simulated cluster (seconds).
    latency_s: float = 5e-4

    def cluster(self) -> ClusterModel:
        """The simulated cluster matched to this scale's query sizes."""
        return ClusterModel(
            network=NetworkModel(latency_s=self.latency_s),
            task_setup_s=self.task_setup_s,
        )


SCALES: dict[str, ExperimentScale] = {
    "ci": ExperimentScale(
        name="ci",
        queries_per_point=2,
        fig1_linear=(6, 8),
        fig1_bushy=(6, 8),
        fig2_linear=(10, 12),
        fig2_bushy=(8, 9),
        fig3_sma=(6, 8),
        fig3_mpq=(8,),
        fig4_linear=(6, 8),
        fig4_bushy=(6,),
        fig5_linear=(8, 10),
        table1_tables=(6, 8, 10),
        table1_budgets_s=(0.004, 0.008, 0.03),
        speedup_linear=(10,),
        speedup_bushy=(8,),
        max_workers=32,
        max_sma_workers=16,
        task_setup_s=0.002,
        latency_s=5e-5,
    ),
    "default": ExperimentScale(
        name="default",
        queries_per_point=3,
        fig1_linear=(8, 12),
        fig1_bushy=(6, 9),
        fig2_linear=(12, 14),
        fig2_bushy=(9, 12),
        fig3_sma=(8, 10),
        fig3_mpq=(10, 12),
        fig4_linear=(8, 10),
        fig4_bushy=(6, 9),
        fig5_linear=(10, 12, 14),
        table1_tables=(8, 10, 12),
        table1_budgets_s=(0.01, 0.04, 0.2),
        speedup_linear=(12, 14),
        speedup_bushy=(9, 12),
        max_workers=128,
        max_sma_workers=64,
        task_setup_s=0.005,
        latency_s=1e-4,
    ),
    "paper": ExperimentScale(
        name="paper",
        queries_per_point=20,
        fig1_linear=(8, 16),
        fig1_bushy=(9, 15),
        fig2_linear=(20, 24),
        fig2_bushy=(15, 18),
        fig3_sma=(8, 12),
        fig3_mpq=(12,),
        fig4_linear=(10,),
        fig4_bushy=(9,),
        fig5_linear=(16, 18, 20),
        table1_tables=(14, 16, 18, 20),
        table1_budgets_s=(10.0, 30.0, 60.0),
        speedup_linear=(20, 24),
        speedup_bushy=(15, 18),
        max_workers=256,
        max_sma_workers=128,
    ),
}


#: α values of Table 1 (identical at every scale — the paper's grid).
TABLE1_ALPHAS: tuple[float, ...] = (1.01, 1.05, 1.25, 1.5, 2.0, 5.0, 10.0)


def worker_counts(limit: int, start: int = 1) -> list[int]:
    """Powers of two from ``start`` to ``limit`` inclusive."""
    counts = []
    workers = start
    while workers <= limit:
        counts.append(workers)
        workers *= 2
    return counts
