"""Sweep helpers: run MPQ/SMA over worker counts and summarize medians.

The paper's figures plot, per worker count, the median over twenty random
queries of: optimization time, maximal worker time, maximal worker memory
(in relations), and network bytes.  These helpers produce exactly those
series from any list of queries.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from collections.abc import Sequence

from repro.algorithms.mpq import optimize_mpq
from repro.algorithms.sma import optimize_sma
from repro.cluster.simulator import DEFAULT_CLUSTER, ClusterModel
from repro.config import OptimizerSettings
from repro.query.query import Query


@dataclass(frozen=True)
class ScalingPoint:
    """Medians at one worker count."""

    workers: int
    time_ms: float
    worker_time_ms: float
    memory_relations: float
    network_bytes: float
    #: Median number of plans returned to the master (Pareto frontier size).
    result_plans: float = 1.0

    def as_row(self) -> str:
        """Fixed-width row used by the reporting tables."""
        return (
            f"{self.workers:>8d} {self.time_ms:>12.2f} {self.worker_time_ms:>12.2f} "
            f"{self.memory_relations:>12.0f} {self.network_bytes:>14.0f}"
        )


@dataclass
class ScalingSeries:
    """One labeled line of a scaling figure."""

    label: str
    points: list[ScalingPoint]

    HEADER = (
        f"{'workers':>8} {'time_ms':>12} {'w_time_ms':>12} "
        f"{'memory_rel':>12} {'network_B':>14}"
    )

    def format(self) -> str:
        """Paper-style series table."""
        lines = [f"-- {self.label}", self.HEADER]
        lines.extend(point.as_row() for point in self.points)
        return "\n".join(lines)

    def time_by_workers(self) -> dict[int, float]:
        """Worker count -> median time, for assertions and summaries."""
        return {point.workers: point.time_ms for point in self.points}

    def network_by_workers(self) -> dict[int, float]:
        """Worker count -> median network bytes."""
        return {point.workers: point.network_bytes for point in self.points}

    def memory_by_workers(self) -> dict[int, float]:
        """Worker count -> median worker memory (relations)."""
        return {point.workers: point.memory_relations for point in self.points}


def run_mpq_point(
    queries: Sequence[Query],
    workers: int,
    settings: OptimizerSettings,
    cluster: ClusterModel = DEFAULT_CLUSTER,
) -> ScalingPoint:
    """Median MPQ measurements over ``queries`` at one worker count."""
    times, worker_times, memories, networks, frontier = [], [], [], [], []
    for query in queries:
        report = optimize_mpq(query, workers, settings, cluster)
        times.append(report.simulated_time_ms)
        worker_times.append(report.max_worker_time_ms)
        memories.append(report.max_worker_memory_relations)
        networks.append(report.network_bytes)
        frontier.append(len(report.plans))
    return ScalingPoint(
        workers=workers,
        time_ms=statistics.median(times),
        worker_time_ms=statistics.median(worker_times),
        memory_relations=statistics.median(memories),
        network_bytes=statistics.median(networks),
        result_plans=statistics.median(frontier),
    )


def run_sma_point(
    queries: Sequence[Query],
    workers: int,
    settings: OptimizerSettings,
    cluster: ClusterModel = DEFAULT_CLUSTER,
) -> ScalingPoint:
    """Median SMA measurements over ``queries`` at one worker count."""
    times, networks, memories, frontier = [], [], [], []
    for query in queries:
        report = optimize_sma(query, workers, settings, cluster)
        times.append(report.simulated_time_ms)
        networks.append(report.network_bytes)
        memories.append(report.memotable_entries)
        frontier.append(len(report.plans))
    return ScalingPoint(
        workers=workers,
        time_ms=statistics.median(times),
        worker_time_ms=statistics.median(times),
        memory_relations=statistics.median(memories),
        network_bytes=statistics.median(networks),
        result_plans=statistics.median(frontier),
    )


def mpq_scaling(
    label: str,
    queries: Sequence[Query],
    worker_counts: Sequence[int],
    settings: OptimizerSettings,
    cluster: ClusterModel = DEFAULT_CLUSTER,
) -> ScalingSeries:
    """MPQ scaling series over the given worker counts."""
    points = [
        run_mpq_point(queries, workers, settings, cluster)
        for workers in worker_counts
    ]
    return ScalingSeries(label=label, points=points)


def sma_scaling(
    label: str,
    queries: Sequence[Query],
    worker_counts: Sequence[int],
    settings: OptimizerSettings,
    cluster: ClusterModel = DEFAULT_CLUSTER,
) -> ScalingSeries:
    """SMA scaling series over the given worker counts."""
    points = [
        run_sma_point(queries, workers, settings, cluster)
        for workers in worker_counts
    ]
    return ScalingSeries(label=label, points=points)
