"""Immutable query plan trees.

Plans follow the paper's model (Section 3): ``Scan(q)`` for a base table and
``Join(p_L, p_R)`` with an outer (left) and inner (right) operand.  A plan is
*left-deep* iff the right operand of every join is a scan; everything else is
*bushy*.

Every plan node carries the derived properties the optimizer needs:

* ``mask`` — bitmask of joined table numbers;
* ``rows`` — estimated output cardinality;
* ``cost`` — a tuple of cost-metric values (one entry per objective);
* ``order`` — the :class:`~repro.plans.orders.SortOrder` of the output, if any.

Plan objects are created exclusively by a cost model (``repro.cost``), which
guarantees the derived fields are consistent.  As noted in the paper's space
analysis, each DP plan is just two pointers to sub-plans plus O(1) fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plans.operators import JoinAlgorithm, ScanAlgorithm
from repro.plans.orders import SortOrder


@dataclass(frozen=True)
class Plan:
    """Base class for plan nodes; use :class:`ScanPlan` or :class:`JoinPlan`."""

    mask: int
    rows: float
    cost: tuple[float, ...]
    order: SortOrder | None

    @property
    def n_tables(self) -> int:
        """Number of base tables joined by this plan."""
        return self.mask.bit_count()

    def is_left_deep(self) -> bool:
        """Whether every join's inner operand is a single-table scan."""
        raise NotImplementedError

    def pretty(self, table_names: tuple[str, ...] | None = None) -> str:
        """Multi-line indented rendering of the plan tree."""
        lines: list[str] = []
        self._pretty_into(lines, 0, table_names)
        return "\n".join(lines)

    def _pretty_into(
        self, lines: list[str], depth: int, table_names: tuple[str, ...] | None
    ) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class ScanPlan(Plan):
    """Scan of a single base table (the paper's ``Scan(q)``)."""

    table: int
    algorithm: ScanAlgorithm = ScanAlgorithm.FULL_SCAN

    def is_left_deep(self) -> bool:
        return True

    def _pretty_into(
        self, lines: list[str], depth: int, table_names: tuple[str, ...] | None
    ) -> None:
        name = table_names[self.table] if table_names else f"T{self.table}"
        lines.append(
            f"{'  ' * depth}Scan[{self.algorithm.value}] {name} "
            f"(rows={self.rows:.0f})"
        )


@dataclass(frozen=True)
class JoinPlan(Plan):
    """Join of two sub-plans (the paper's ``Join(p_L, p_R)``).

    ``left`` is the outer operand, ``right`` the inner operand.
    """

    left: Plan
    right: Plan
    algorithm: JoinAlgorithm = JoinAlgorithm.BLOCK_NESTED_LOOP

    def is_left_deep(self) -> bool:
        return isinstance(self.right, ScanPlan) and self.left.is_left_deep()

    def join_order(self) -> tuple[int, ...]:
        """For left-deep plans: the join order as a table-number sequence.

        The sequence lists tables in the order they are joined (outermost
        first).  Raises ``ValueError`` for bushy plans, whose shape cannot be
        captured by a sequence (Section 3).
        """
        if not self.is_left_deep():
            raise ValueError("join_order() is only defined for left-deep plans")
        order: list[int] = []
        node: Plan = self
        while isinstance(node, JoinPlan):
            assert isinstance(node.right, ScanPlan)
            order.append(node.right.table)
            node = node.left
        assert isinstance(node, ScanPlan)
        order.append(node.table)
        order.reverse()
        return tuple(order)

    def _pretty_into(
        self, lines: list[str], depth: int, table_names: tuple[str, ...] | None
    ) -> None:
        order = f", order={self.order}" if self.order else ""
        lines.append(
            f"{'  ' * depth}Join[{self.algorithm.value}] "
            f"(rows={self.rows:.0f}, cost={_fmt_cost(self.cost)}{order})"
        )
        self.left._pretty_into(lines, depth + 1, table_names)
        self.right._pretty_into(lines, depth + 1, table_names)


def _fmt_cost(cost: tuple[float, ...]) -> str:
    return "(" + ", ".join(f"{value:.3g}" for value in cost) + ")"


def plan_signature(plan: Plan) -> tuple:
    """A total, backend-independent ordering key for a plan's *structure*.

    Encodes the tree in preorder: ``(0, table, scan algorithm)`` for scans,
    ``(1, join algorithm, left signature, right signature)`` for joins.
    Two plans compare equal under this key iff they are structurally
    identical (same tree shape, operand order, tables, and operators), so
    sorting by ``(cost, plan_signature(plan))`` is a deterministic total
    order no matter which enumeration backend — or generation order —
    produced the plans.  See :func:`plan_tie_key`.
    """
    if isinstance(plan, ScanPlan):
        return (0, plan.table, plan.algorithm.value)
    assert isinstance(plan, JoinPlan)
    return (
        1,
        plan.algorithm.value,
        plan_signature(plan.left),
        plan_signature(plan.right),
    )


def plan_tie_key(plan: Plan) -> tuple:
    """Sort key implementing the documented cross-backend tie rule.

    "Best plan" selection orders plans by

    1. the first cost metric (the optimization objective),
    2. the remaining cost metrics, lexicographically,
    3. the structural :func:`plan_signature`.

    Generation order — which differs between the legacy and fastdp
    enumeration cores when several plans share the optimal cost — never
    participates, so every backend (and any shuffling of partition results)
    selects the same plan.
    """
    return (plan.cost[0], plan.cost, plan_signature(plan))


def plan_join_count(plan: Plan) -> int:
    """Number of join operators in the plan tree."""
    if isinstance(plan, ScanPlan):
        return 0
    assert isinstance(plan, JoinPlan)
    return 1 + plan_join_count(plan.left) + plan_join_count(plan.right)


def plan_depth(plan: Plan) -> int:
    """Height of the plan tree (a scan has depth 1)."""
    if isinstance(plan, ScanPlan):
        return 1
    assert isinstance(plan, JoinPlan)
    return 1 + max(plan_depth(plan.left), plan_depth(plan.right))


def iter_join_result_masks(plan: Plan) -> list[int]:
    """Masks of all intermediate join results produced by the plan.

    Includes the final result; excludes single-table scans.  These are
    exactly the table sets whose admissibility the partitioning constraints
    restrict (Section 4.2).
    """
    masks: list[int] = []

    def _walk(node: Plan) -> None:
        if isinstance(node, JoinPlan):
            _walk(node.left)
            _walk(node.right)
            masks.append(node.mask)

    _walk(plan)
    return masks
