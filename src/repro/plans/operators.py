"""Physical operator algorithms.

The paper's implementation "considers all standard operators"; its cost
formulas follow Steinbrunn et al.  We model one scan algorithm and the three
classical join algorithms named in Section 6.1: block-nested-loop join, hash
join, and sort-merge join.

Operator capabilities encoded here:

* hash and sort-merge joins require at least one equality predicate
  connecting their operands (a pure Cartesian product must use nested loops);
* sort-merge join produces output sorted on the (outer) join attribute —
  the source of *interesting orders*;
* hash join and nested-loop join destroy or ignore input order.
"""

from __future__ import annotations

import enum


class ScanAlgorithm(enum.Enum):
    """Access paths for base tables.

    A clustered-index scan is available for tables declaring a clustering
    column; it delivers tuples sorted on that column.
    """

    FULL_SCAN = "full_scan"
    CLUSTERED_INDEX_SCAN = "clustered_index_scan"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class JoinAlgorithm(enum.Enum):
    """The standard join algorithms of the paper's evaluation (Section 6.1)."""

    BLOCK_NESTED_LOOP = "block_nested_loop"
    HASH = "hash"
    SORT_MERGE = "sort_merge"

    @property
    def requires_equi_predicate(self) -> bool:
        """Hash and sort-merge need an equality predicate between operands."""
        return self in (JoinAlgorithm.HASH, JoinAlgorithm.SORT_MERGE)

    @property
    def produces_sorted_output(self) -> bool:
        """Only sort-merge emits output sorted on its join attribute."""
        return self is JoinAlgorithm.SORT_MERGE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All join algorithms, in deterministic order (important for reproducibility:
#: ties between equal-cost plans resolve to the first-generated plan).
ALL_JOIN_ALGORITHMS: tuple[JoinAlgorithm, ...] = (
    JoinAlgorithm.BLOCK_NESTED_LOOP,
    JoinAlgorithm.HASH,
    JoinAlgorithm.SORT_MERGE,
)
