"""Query plan representation: physical operators, plan trees, sort orders."""

from repro.plans.operators import JoinAlgorithm, ScanAlgorithm
from repro.plans.orders import SortOrder, order_satisfies
from repro.plans.plan import JoinPlan, Plan, ScanPlan, plan_depth, plan_join_count
from repro.plans.dot import plan_to_dot

__all__ = [
    "JoinAlgorithm",
    "ScanAlgorithm",
    "SortOrder",
    "order_satisfies",
    "JoinPlan",
    "Plan",
    "ScanPlan",
    "plan_depth",
    "plan_join_count",
    "plan_to_dot",
]
