"""Interesting orders (physical sort properties of intermediate results).

A sort order names the attribute an intermediate result is sorted on.  Sorted
inputs let a sort-merge join skip its sort phase, so a more expensive sorted
plan can beat a cheaper unsorted one downstream — Selinger's classic
*interesting orders*.  Pruning must therefore keep one best plan per
(table set, order), which is exactly what the paper's complexity analysis
accounts for in Section 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SortOrder:
    """Output sorted on column ``column`` of query table number ``table``."""

    table: int
    column: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.table}.{self.column}"


def order_satisfies(produced: SortOrder | None, required: SortOrder | None) -> bool:
    """Whether a plan producing ``produced`` satisfies a ``required`` order.

    ``None`` as the requirement means "any order is fine"; a plan with no
    order cannot satisfy a concrete requirement.
    """
    if required is None:
        return True
    return produced == required
