"""Interesting orders (physical sort properties of intermediate results).

A sort order names the attribute an intermediate result is sorted on.  Sorted
inputs let a sort-merge join skip its sort phase, so a more expensive sorted
plan can beat a cheaper unsorted one downstream — Selinger's classic
*interesting orders*.  Pruning must therefore keep one best plan per
(table set, order), which is exactly what the paper's complexity analysis
accounts for in Section 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SortOrder:
    """Output sorted on column ``column`` of query table number ``table``."""

    table: int
    column: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.table}.{self.column}"


def order_satisfies(produced: SortOrder | None, required: SortOrder | None) -> bool:
    """Whether a plan producing ``produced`` satisfies a ``required`` order.

    ``None`` as the requirement means "any order is fine"; a plan with no
    order cannot satisfy a concrete requirement.
    """
    if required is None:
        return True
    return produced == required


#: Interned id of the "no order" state.  Guaranteed to be ``0`` so backends
#: can test "unsorted" with a plain integer comparison.
UNSORTED = 0


class OrderInterner:
    """Bijective mapping between sort orders and dense small integers.

    Flat enumeration backends cannot afford a :class:`SortOrder` object
    comparison (two attribute loads plus dataclass ``__eq__``) per DP
    candidate.  Interning every order that can appear for a query — scan
    orders of clustered tables plus the endpoint columns of equality
    predicates — turns order bookkeeping into integer arithmetic, and
    compiles :func:`order_satisfies` down to one indexed load in a
    precomputed boolean table (:meth:`satisfies_table`).

    Id ``0`` is always :data:`UNSORTED` (``None``); real orders receive ids
    in first-interned order, so the numbering is deterministic for a fixed
    interning sequence.
    """

    def __init__(self) -> None:
        self._ids: dict[SortOrder | None, int] = {None: UNSORTED}
        self._orders: list[SortOrder | None] = [None]

    def intern(self, order: SortOrder | None) -> int:
        """Id of ``order``, assigning the next dense id on first sight."""
        existing = self._ids.get(order)
        if existing is not None:
            return existing
        assigned = len(self._orders)
        self._ids[order] = assigned
        self._orders.append(order)
        return assigned

    def id_of(self, order: SortOrder | None) -> int:
        """Id of an already-interned order (KeyError for unknown orders)."""
        return self._ids[order]

    def order_of(self, order_id: int) -> SortOrder | None:
        """The :class:`SortOrder` behind an interned id (``None`` for 0)."""
        return self._orders[order_id]

    def __len__(self) -> int:
        return len(self._orders)

    def satisfies_table(self) -> list[list[bool]]:
        """``table[produced_id][required_id]`` ⇔ ``order_satisfies(p, r)``.

        The compiled form of :func:`order_satisfies` over every interned
        order: row ``p`` answers "does a plan sorted as ``p`` satisfy
        requirement ``r``" for all ``r`` with two index operations and no
        branches.  Intern every order *before* compiling; the table does not
        grow with later :meth:`intern` calls.
        """
        n = len(self._orders)
        return [
            [
                order_satisfies(self._orders[produced], self._orders[required])
                for required in range(n)
            ]
            for produced in range(n)
        ]
