"""Graphviz (DOT) export for plan trees.

``plan_to_dot(plan)`` renders a plan as a ``digraph`` suitable for
``dot -Tpng``; handy for documentation and for eyeballing why the optimizer
chose a shape.  Pure string generation — no graphviz dependency.
"""

from __future__ import annotations

from repro.plans.plan import JoinPlan, Plan, ScanPlan


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def plan_to_dot(
    plan: Plan,
    table_names: tuple[str, ...] | None = None,
    graph_name: str = "plan",
) -> str:
    """Render a plan tree as a Graphviz digraph string."""
    lines = [
        f'digraph "{_escape(graph_name)}" {{',
        "  node [shape=box, fontname=monospace];",
    ]
    counter = [0]

    def emit(node: Plan) -> str:
        identifier = f"n{counter[0]}"
        counter[0] += 1
        if isinstance(node, ScanPlan):
            name = table_names[node.table] if table_names else f"T{node.table}"
            label = f"Scan {name}\\nrows={node.rows:.0f}"
        else:
            assert isinstance(node, JoinPlan)
            label = (
                f"Join [{node.algorithm.value}]\\n"
                f"rows={node.rows:.0f}\\ncost={node.cost[0]:.3g}"
            )
        lines.append(f'  {identifier} [label="{_escape(label)}"];')
        if isinstance(node, JoinPlan):
            left = emit(node.left)
            right = emit(node.right)
            lines.append(f'  {identifier} -> {left} [label="outer"];')
            lines.append(f'  {identifier} -> {right} [label="inner"];')
        return identifier

    emit(plan)
    lines.append("}")
    return "\n".join(lines)
