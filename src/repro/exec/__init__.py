"""A miniature execution engine for validating plans on synthetic data.

The optimizer only ever *estimates*; this package grounds it: it generates
synthetic tuples consistent with the catalog statistics, executes any plan
tree with real scan/join operator implementations (block-nested-loop, hash,
sort-merge), and checks that every plan for a query produces the identical
result multiset — the semantic-equivalence property the whole plan space
rests on.
"""

from repro.exec.data import Database, generate_database
from repro.exec.engine import execute_plan
from repro.exec.validate import (
    empirical_cardinality,
    plans_equivalent,
    result_signature,
)

__all__ = [
    "Database",
    "generate_database",
    "execute_plan",
    "empirical_cardinality",
    "plans_equivalent",
    "result_signature",
]
