"""Synthetic tuple generation consistent with catalog statistics.

Tables are materialized as lists of rows; a row is a dict mapping column
name to an integer value drawn uniformly from ``[0, domain_size)``.  Under
uniform draws the expected selectivity of an equality join between columns
with domain sizes ``d1 <= d2`` is ``1/d2`` — exactly the Steinbrunn estimate
the optimizer uses — so estimated and empirical cardinalities agree in
expectation (the independence assumption holds by construction).

Row counts can be scaled down (``max_rows``) so that plans over tables with
cardinalities in the tens of thousands stay executable in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.query.query import Query

Row = dict[str, int]


@dataclass
class Database:
    """Materialized tables for one query, indexed by query table number."""

    query: Query
    #: ``rows[t]`` holds the tuples of query table number ``t``.
    rows: list[list[Row]]

    def table_rows(self, table_number: int) -> list[Row]:
        """Tuples of table ``table_number``."""
        return self.rows[table_number]

    @property
    def total_rows(self) -> int:
        """Total materialized tuples across all tables."""
        return sum(len(table) for table in self.rows)


def generate_database(query: Query, seed: int = 0, max_rows: int = 50) -> Database:
    """Materialize synthetic tuples for every table of ``query``.

    Each table gets ``min(cardinality, max_rows)`` rows; every column's
    values are uniform over its domain.  Deterministic in ``seed``.
    """
    if max_rows < 1:
        raise ValueError(f"max_rows must be >= 1, got {max_rows}")
    rng = random.Random(seed)
    tables: list[list[Row]] = []
    for table in query.tables:
        n_rows = min(table.cardinality, max_rows)
        rows = [
            {
                column.name: rng.randrange(column.domain_size)
                for column in table.columns
            }
            for _ in range(n_rows)
        ]
        tables.append(rows)
    return Database(query=query, rows=tables)
