"""Plan interpretation: execute scan/join trees over materialized tuples.

Joined rows are dicts keyed by ``(table_number, column_name)`` so columns of
different tables never collide.  Each join algorithm is implemented
faithfully to its cost model:

* block-nested-loop — compares every pair (works for cross products);
* hash — builds a table on the inner operand's join key, probes with the
  outer, then applies any residual predicates;
* sort-merge — sorts both inputs on the join key and merges equal-key runs.

All three must produce identical result multisets for the same operands; the
test suite asserts this, as well as the semantic equivalence of *different*
plans for the same query.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.exec.data import Database
from repro.plans.operators import JoinAlgorithm
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.predicates import JoinPredicate

ExecRow = dict[tuple[int, str], int]


def execute_plan(plan: Plan, database: Database) -> list[ExecRow]:
    """Execute a plan tree and return its result rows."""
    if isinstance(plan, ScanPlan):
        return _execute_scan(plan, database)
    assert isinstance(plan, JoinPlan)
    left_rows = execute_plan(plan.left, database)
    right_rows = execute_plan(plan.right, database)
    predicates = database.query.predicates_between(plan.left.mask, plan.right.mask)
    if plan.algorithm is JoinAlgorithm.BLOCK_NESTED_LOOP:
        return _nested_loop_join(left_rows, right_rows, predicates)
    if plan.algorithm is JoinAlgorithm.HASH:
        return _hash_join(left_rows, right_rows, predicates, plan.left.mask)
    if plan.algorithm is JoinAlgorithm.SORT_MERGE:
        return _sort_merge_join(left_rows, right_rows, predicates, plan.left.mask)
    raise ValueError(f"unknown join algorithm {plan.algorithm!r}")  # pragma: no cover


def _execute_scan(plan: ScanPlan, database: Database) -> list[ExecRow]:
    table = database.query.tables[plan.table]
    return [
        {(plan.table, column.name): row[column.name] for column in table.columns}
        for row in database.table_rows(plan.table)
    ]


def _row_satisfies(
    left: ExecRow, right: ExecRow, predicates: Sequence[JoinPredicate]
) -> bool:
    for predicate in predicates:
        left_key = (predicate.left_table, predicate.left_column)
        right_key = (predicate.right_table, predicate.right_column)
        a = left.get(left_key, right.get(left_key))
        b = left.get(right_key, right.get(right_key))
        if a != b:
            return False
    return True


def _nested_loop_join(
    left_rows: list[ExecRow],
    right_rows: list[ExecRow],
    predicates: Sequence[JoinPredicate],
) -> list[ExecRow]:
    joined = []
    for left in left_rows:
        for right in right_rows:
            if _row_satisfies(left, right, predicates):
                joined.append(left | right)
    return joined


def _join_keys(
    predicates: Sequence[JoinPredicate], left_mask: int
) -> tuple[tuple[int, str], tuple[int, str]]:
    """The (left-side, right-side) column keys of the first equi-predicate."""
    predicate = predicates[0]
    left_endpoint = (predicate.left_table, predicate.left_column)
    right_endpoint = (predicate.right_table, predicate.right_column)
    if left_mask & (1 << predicate.left_table):
        return left_endpoint, right_endpoint
    return right_endpoint, left_endpoint


def _hash_join(
    left_rows: list[ExecRow],
    right_rows: list[ExecRow],
    predicates: Sequence[JoinPredicate],
    left_mask: int,
) -> list[ExecRow]:
    if not predicates:
        raise ValueError("hash join requires at least one equality predicate")
    left_key, right_key = _join_keys(predicates, left_mask)
    residual = predicates[1:]
    buckets: dict[int, list[ExecRow]] = defaultdict(list)
    for right in right_rows:
        buckets[right[right_key]].append(right)
    joined = []
    for left in left_rows:
        for right in buckets.get(left[left_key], ()):
            if _row_satisfies(left, right, residual):
                joined.append(left | right)
    return joined


def _sort_merge_join(
    left_rows: list[ExecRow],
    right_rows: list[ExecRow],
    predicates: Sequence[JoinPredicate],
    left_mask: int,
) -> list[ExecRow]:
    if not predicates:
        raise ValueError("sort-merge join requires at least one equality predicate")
    left_key, right_key = _join_keys(predicates, left_mask)
    residual = predicates[1:]
    left_sorted = sorted(left_rows, key=lambda row: row[left_key])
    right_sorted = sorted(right_rows, key=lambda row: row[right_key])
    joined = []
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        a = left_sorted[i][left_key]
        b = right_sorted[j][right_key]
        if a < b:
            i += 1
        elif a > b:
            j += 1
        else:
            # Merge the equal-key runs on both sides.
            run_end = j
            while run_end < len(right_sorted) and right_sorted[run_end][right_key] == a:
                run_end += 1
            while i < len(left_sorted) and left_sorted[i][left_key] == a:
                for k in range(j, run_end):
                    if _row_satisfies(left_sorted[i], right_sorted[k], residual):
                        joined.append(left_sorted[i] | right_sorted[k])
                i += 1
            j = run_end
    return joined
