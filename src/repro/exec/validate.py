"""Semantic validation: different plans must mean the same query.

The DP's entire plan space — every join order, every tree shape, every
operator assignment — denotes the same relational expression.  These helpers
turn executed results into order-insensitive signatures so tests can assert
that equivalence on real tuples, and measure empirical cardinalities against
the estimator.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.exec.data import Database
from repro.exec.engine import ExecRow, execute_plan
from repro.plans.plan import Plan

Signature = Counter


def result_signature(rows: Iterable[ExecRow]) -> Signature:
    """Order-insensitive multiset signature of a result."""
    return Counter(tuple(sorted(row.items())) for row in rows)


def plans_equivalent(plans: Iterable[Plan], database: Database) -> bool:
    """Whether every plan produces the identical result multiset."""
    reference: Signature | None = None
    for plan in plans:
        signature = result_signature(execute_plan(plan, database))
        if reference is None:
            reference = signature
        elif signature != reference:
            return False
    return True


def empirical_cardinality(plan: Plan, database: Database) -> int:
    """Actual number of result rows when executing ``plan`` on ``database``.

    Useful for sanity checks against the optimizer's estimates — exact
    agreement is not expected (estimates use full-table cardinalities and
    the independence assumption), but both should rank join orders alike on
    uniform data.
    """
    return len(execute_plan(plan, database))
