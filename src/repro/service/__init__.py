"""Optimizer-as-a-service: fingerprinting, plan caching, batched serving.

The paper's MPQ makes one optimization fast by fanning its partitions out to
workers; this package makes a *stream* of optimizations fast by recognizing
repeated (or isomorphic) queries and keeping worker processes warm between
requests.  See :class:`OptimizerService` for the single-service front door,
:class:`ShardedOptimizerGateway` for the concurrency-safe sharded gateway
over it, and :class:`AsyncOptimizerGateway` for the asyncio front-end that
adds adaptive micro-batching and per-tenant backpressure on top.  The
out-of-process layer crosses machine boundaries:
:class:`ShardServer` serves one shard over a unix socket or TCP port,
:class:`NetworkOptimizerGateway` routes fingerprints to shard servers on a
consistent-hash ring with per-shard circuit breakers (and, opt-in, hedges
slow primaries against the next ring owner), and :class:`ShardFleet`
supervises a fleet of shard processes — restarting crashes with backoff and
rebalancing the ring live by shipping moved keys' cache entries to their
new owner before routers learn the new topology.

Caching is tiered and pluggable (:class:`CacheTier`): the default
:class:`MemoryTier` LRU (historical name :class:`PlanCache`) can be
composed over a persistent :class:`DiskTier` via :class:`TieredPlanCache`,
so cached plans — each carrying a :class:`Provenance` record — survive
restarts and can be selectively invalidated
(:class:`InvalidationPredicate`) when a backend or cost model changes.

Parametric queries are canonicalized **θ-free**: the cost-weight parameter
θ never enters a fingerprint, so one cached *envelope* entry (the whole
lower-envelope frontier plus its :class:`~repro.core.envelope.EnvelopeIndex`
breakpoint index) answers every θ of a query shape by binary search instead
of a DP run — through every front door above, local or networked.
"""

from repro.service.aio import (
    AsyncGatewayStats,
    AsyncOptimizerGateway,
    GatewayOverloadedError,
    TenantStats,
)
from repro.service.cache import CacheStats, CacheTier, MemoryTier, PlanCache
from repro.service.fingerprint import (
    CanonicalForm,
    canonicalize,
    fingerprint,
    fingerprint_canonical,
    settings_signature,
)
from repro.service.fleet import (
    FleetError,
    FleetRebalanceError,
    ShardFleet,
    ShardHandle,
    run_shard_fleet,
)
from repro.service.gateway import GatewayStats, ShardedOptimizerGateway, ShardStats
from repro.service.net import (
    Address,
    CircuitBreaker,
    ConsistentHashRing,
    NetworkOptimizerGateway,
    RemoteOptimizationError,
    ShardUnavailableError,
)
from repro.service.provenance import (
    InvalidationPredicate,
    Provenance,
    aggregate_worker_stats,
)
from repro.core.envelope import EnvelopeIndex, build_envelope_index
from repro.service.remap import invert, remap_mask, remap_plan
from repro.service.server import ShardServer, run_shard_server
from repro.service.service import (
    ENVELOPE_ENTRY,
    SCALAR_ENTRY,
    CacheEntry,
    OptimizerService,
    ServiceResult,
    bind_result_theta,
)
from repro.service.tiers import (
    DiskTier,
    DiskTierLockedError,
    TieredPlanCache,
    TieredStats,
)

__all__ = [
    "AsyncGatewayStats",
    "AsyncOptimizerGateway",
    "GatewayOverloadedError",
    "TenantStats",
    "CacheEntry",
    "CacheStats",
    "CacheTier",
    "MemoryTier",
    "PlanCache",
    "DiskTier",
    "DiskTierLockedError",
    "TieredPlanCache",
    "TieredStats",
    "Address",
    "CircuitBreaker",
    "ConsistentHashRing",
    "NetworkOptimizerGateway",
    "RemoteOptimizationError",
    "ShardUnavailableError",
    "ShardServer",
    "run_shard_server",
    "FleetError",
    "FleetRebalanceError",
    "ShardFleet",
    "ShardHandle",
    "run_shard_fleet",
    "Provenance",
    "InvalidationPredicate",
    "aggregate_worker_stats",
    "CanonicalForm",
    "canonicalize",
    "fingerprint",
    "fingerprint_canonical",
    "settings_signature",
    "GatewayStats",
    "ShardedOptimizerGateway",
    "ShardStats",
    "invert",
    "remap_mask",
    "remap_plan",
    "OptimizerService",
    "ServiceResult",
    "EnvelopeIndex",
    "build_envelope_index",
    "ENVELOPE_ENTRY",
    "SCALAR_ENTRY",
    "bind_result_theta",
]
