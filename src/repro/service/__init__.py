"""Optimizer-as-a-service: fingerprinting, plan caching, batched serving.

The paper's MPQ makes one optimization fast by fanning its partitions out to
workers; this package makes a *stream* of optimizations fast by recognizing
repeated (or isomorphic) queries and keeping worker processes warm between
requests.  See :class:`OptimizerService` for the single-service front door,
:class:`ShardedOptimizerGateway` for the concurrency-safe sharded gateway
over it, and :class:`AsyncOptimizerGateway` for the asyncio front-end that
adds adaptive micro-batching and per-tenant backpressure on top.
"""

from repro.service.aio import (
    AsyncGatewayStats,
    AsyncOptimizerGateway,
    GatewayOverloadedError,
    TenantStats,
)
from repro.service.cache import CacheStats, PlanCache
from repro.service.fingerprint import (
    CanonicalForm,
    canonicalize,
    fingerprint,
    fingerprint_canonical,
)
from repro.service.gateway import GatewayStats, ShardedOptimizerGateway, ShardStats
from repro.service.remap import invert, remap_mask, remap_plan
from repro.service.service import CacheEntry, OptimizerService, ServiceResult

__all__ = [
    "AsyncGatewayStats",
    "AsyncOptimizerGateway",
    "GatewayOverloadedError",
    "TenantStats",
    "CacheEntry",
    "CacheStats",
    "PlanCache",
    "CanonicalForm",
    "canonicalize",
    "fingerprint",
    "fingerprint_canonical",
    "GatewayStats",
    "ShardedOptimizerGateway",
    "ShardStats",
    "invert",
    "remap_mask",
    "remap_plan",
    "OptimizerService",
    "ServiceResult",
]
