"""Per-entry provenance for cached plans, and predicates over it.

A persistent plan cache outlives the code that filled it: the enumeration
backend that produced an entry may have been replaced, the cost model
retuned, the backend registry regenerated.  Serving such an entry silently
would be wrong in exactly the way ProvSQL warns about — a cached answer
with no record of *how it was derived* can neither be audited nor
selectively retired.  So every cached entry carries a
:class:`Provenance` record stamped at creation, and invalidation is
expressed as an :class:`InvalidationPredicate` over those records:
"everything produced by backend X below registry generation G" removes
precisely the suspect entries and leaves the rest serving, instead of
flushing the whole cache because one backend changed.

Both types are plain JSON-compatible data so they travel inside disk-tier
records and cache snapshots unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class Provenance:
    """How one cached entry came to be.

    ``settings_signature`` is the resolved signature from
    :func:`repro.service.fingerprint.settings_signature` — it embeds what
    ``Backend.AUTO`` resolved to, so an entry is attributable to a concrete
    core even when the request only said "auto".  ``worker_stats`` holds
    the creation run's aggregated :class:`~repro.core.worker.WorkerStats`
    counters (summed over partitions, wall time as the max), which is what
    makes a served-from-cache answer auditable against a fresh run.
    """

    #: Enumeration backend that computed the plans (``"legacy"``/``"fastdp"``).
    backend_used: str
    #: Resolved settings signature (see module docstring).
    settings_signature: str
    #: :func:`repro.core.worker.registry_generation` at creation time.
    registry_generation: int
    #: Unix timestamp of entry creation.
    created_at_s: float
    #: Partition count of the creating run.
    n_partitions: int
    #: Aggregated creation WorkerStats counters.
    worker_stats: Mapping[str, float] = field(default_factory=dict)
    #: For an envelope entry: the θ interval the cached frontier covers
    #: (today always the full ``(0.0, 1.0)``; a drift-aware policy can
    #: narrow it).  ``None`` for scalar entries — and omitted on the wire,
    #: so pre-envelope logs and snapshots decode unchanged.
    theta_domain: tuple[float, float] | None = None

    def to_wire(self) -> dict[str, Any]:
        """JSON-compatible encoding (inverse: :meth:`from_wire`)."""
        wire = {
            "backend_used": self.backend_used,
            "settings_signature": self.settings_signature,
            "registry_generation": self.registry_generation,
            "created_at_s": self.created_at_s,
            "n_partitions": self.n_partitions,
            "worker_stats": dict(self.worker_stats),
        }
        if self.theta_domain is not None:
            wire["theta_domain"] = list(self.theta_domain)
        return wire

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "Provenance":
        """Rebuild a record from :meth:`to_wire` output."""
        domain = data.get("theta_domain")
        return cls(
            backend_used=str(data["backend_used"]),
            settings_signature=str(data["settings_signature"]),
            registry_generation=int(data["registry_generation"]),
            created_at_s=float(data["created_at_s"]),
            n_partitions=int(data["n_partitions"]),
            worker_stats=dict(data.get("worker_stats", {})),
            theta_domain=(
                (float(domain[0]), float(domain[1])) if domain is not None else None
            ),
        )


def aggregate_worker_stats(stats_list: list) -> dict[str, float]:
    """Collapse per-partition WorkerStats into one provenance-sized summary.

    Operation counters sum (they are per-partition work); ``wall_time_s``
    takes the max (partitions run in parallel, so the slowest one is the
    run's wall time).  Key names match the ``WorkerStats`` fields so the
    summary reads like one synthetic worker.
    """
    summed = (
        "admissible_results",
        "splits_considered",
        "plans_considered",
        "plans_kept",
        "table_entries",
        "stored_plans",
        "result_plans",
    )
    aggregated: dict[str, float] = {
        name: sum(getattr(stats, name) for stats in stats_list) for name in summed
    }
    aggregated["wall_time_s"] = max(
        (stats.wall_time_s for stats in stats_list), default=0.0
    )
    return aggregated


@dataclass(frozen=True)
class InvalidationPredicate:
    """A conjunction of conditions over :class:`Provenance` records.

    Every supplied condition must hold for an entry to match (``None``
    conditions are skipped); a predicate with *no* conditions matches every
    entry — the explicit "flush everything" spelling.  An entry without a
    provenance record (hand-built, or written by a pre-provenance cache)
    matches only the match-everything predicate: conditional invalidation
    refuses to guess about entries it cannot attribute.
    """

    #: Match entries produced by this backend (``"fastdp"``/``"legacy"``).
    backend: str | None = None
    #: Match entries created at a registry generation strictly below this.
    below_generation: int | None = None
    #: Match entries created before this Unix timestamp.
    created_before_s: float | None = None
    #: Match entries whose resolved settings signature equals this.
    settings_signature: str | None = None

    @property
    def matches_everything(self) -> bool:
        """Whether this is the unconditional (flush-all) predicate."""
        return (
            self.backend is None
            and self.below_generation is None
            and self.created_before_s is None
            and self.settings_signature is None
        )

    def matches(self, provenance: Provenance | None) -> bool:
        """Whether an entry with this provenance should be invalidated."""
        if self.matches_everything:
            return True
        if provenance is None:
            return False
        if self.backend is not None and provenance.backend_used != self.backend:
            return False
        if (
            self.below_generation is not None
            and provenance.registry_generation >= self.below_generation
        ):
            return False
        if (
            self.created_before_s is not None
            and provenance.created_at_s >= self.created_before_s
        ):
            return False
        if (
            self.settings_signature is not None
            and provenance.settings_signature != self.settings_signature
        ):
            return False
        return True

    def to_wire(self) -> dict[str, Any]:
        """JSON-compatible encoding (only the supplied conditions)."""
        wire: dict[str, Any] = {}
        if self.backend is not None:
            wire["backend"] = self.backend
        if self.below_generation is not None:
            wire["below_generation"] = self.below_generation
        if self.created_before_s is not None:
            wire["created_before_s"] = self.created_before_s
        if self.settings_signature is not None:
            wire["settings_signature"] = self.settings_signature
        return wire

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "InvalidationPredicate":
        """Rebuild a predicate from :meth:`to_wire` output."""
        return cls(
            backend=data.get("backend"),
            below_generation=(
                int(data["below_generation"])
                if data.get("below_generation") is not None
                else None
            ),
            created_before_s=(
                float(data["created_before_s"])
                if data.get("created_before_s") is not None
                else None
            ),
            settings_signature=data.get("settings_signature"),
        )
