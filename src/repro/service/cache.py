"""A bounded LRU cache for optimization results, with observable statistics.

The service's working set is whatever queries the traffic repeats; a bounded
least-recently-used policy keeps the hottest fingerprints resident without
letting a long tail of one-off queries grow memory without limit.  Hit,
miss, and eviction counters are first-class: a service operator tunes
capacity by watching the hit rate, and the benchmark harness asserts on
them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, TypeVar

Value = TypeVar("Value")


@dataclass
class CacheStats:
    """Counters since construction (or the last :meth:`PlanCache.clear`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache(Generic[Value]):
    """Bounded LRU mapping from query fingerprints to cached results.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``capacity`` is exceeded.  ``peek`` reads without touching recency
    or counters (used by batch deduplication, which should not inflate the
    hit rate with its own bookkeeping reads).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[str, Value] = OrderedDict()

    def get(self, key: str) -> Value | None:
        """Return the cached value (refreshing recency), or ``None`` on miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: str) -> Value | None:
        """Return the cached value without touching recency or statistics."""
        return self._entries.get(key)

    def put(self, key: str, value: Value) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        self._entries.clear()
        self.stats = CacheStats()

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
