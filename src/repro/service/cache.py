"""A bounded, thread-safe LRU cache for optimization results, with statistics.

The service's working set is whatever queries the traffic repeats; a bounded
least-recently-used policy keeps the hottest fingerprints resident without
letting a long tail of one-off queries grow memory without limit.  Hit,
miss, and eviction counters are first-class: a service operator tunes
capacity by watching the hit rate, and the benchmark harness asserts on
them.

Every public operation (and every counter update) happens under one
reentrant lock, so a cache shared by a thread pool of request handlers —
the :class:`~repro.service.gateway.ShardedOptimizerGateway` shape — never
interleaves an eviction with a lookup or tears a statistics update.  The
lock is held only for dictionary operations, never while optimizing, so it
is uncontended in practice.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Generic, TypeVar

Value = TypeVar("Value")


@dataclass
class CacheStats:
    """Counters since construction (or the last :meth:`PlanCache.clear`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache(Generic[Value]):
    """Bounded LRU mapping from query fingerprints to cached results.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``capacity`` is exceeded.  ``peek`` reads without touching recency
    or counters (used by batch deduplication, which should not inflate the
    hit rate with its own bookkeeping reads).

    ``capacity=0`` disables caching entirely: every lookup misses and every
    ``put`` is dropped on the floor (counted as an eviction, so the
    operator-visible eviction counter still reflects how many results were
    not retained).  This is the supported way to run a service or gateway
    uncached — e.g. to measure raw DP throughput — without special-casing
    call sites.

    All operations are atomic under an internal reentrant lock; see the
    module docstring.  ``stats`` remains directly readable for tests and
    single-threaded callers, but concurrent readers should prefer
    :meth:`snapshot`, which copies the counters under the lock.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[str, Value] = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str) -> Value | None:
        """Return the cached value (refreshing recency), or ``None`` on miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def probe(self, key: str) -> Value | None:
        """Like :meth:`get`, but an absent key is *not* counted as a miss.

        For opportunistic fast-path probes (the async front-end checks the
        cache before queueing a request for batching) that fall back to a
        full, miss-counting lookup: counting the probe *and* the later real
        lookup would double-count one logical miss, breaking the
        ``misses == optimizations`` accounting identity.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            return None

    def peek(self, key: str) -> Value | None:
        """Return the cached value without touching recency or statistics."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: Value) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def reclassify_miss_as_hit(self) -> None:
        """Atomically recount one earlier miss as a hit.

        Used when a lookup that missed was nevertheless answered without a
        fresh optimization — a duplicate within a batch, or a request
        coalesced onto an in-flight run — so the operator-facing hit rate
        agrees with the ``cached`` flags on the results.
        """
        with self._lock:
            self.stats.misses -= 1
            self.stats.hits += 1

    def snapshot(self) -> CacheStats:
        """A consistent copy of the counters (safe under concurrency)."""
        with self._lock:
            return replace(self.stats)

    def snapshot_with_size(self) -> tuple[CacheStats, int]:
        """Counters plus resident entry count, read under one lock hold.

        Two separate ``snapshot()``/``len()`` calls could interleave with a
        concurrent insert or eviction; gateway statistics use this to keep
        each shard's numbers internally consistent.
        """
        with self._lock:
            return replace(self.stats), len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
