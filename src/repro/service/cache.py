"""Cache tiers for optimization results: the protocol and the memory tier.

The service's working set is whatever queries the traffic repeats; a bounded
least-recently-used policy keeps the hottest fingerprints resident without
letting a long tail of one-off queries grow memory without limit.  Hit,
miss, and eviction counters are first-class: a service operator tunes
capacity by watching the hit rate, and the benchmark harness asserts on
them.

This module defines the :class:`CacheTier` protocol — the contract every
tier (memory, disk, composite) satisfies — and :class:`MemoryTier`, the
bounded thread-safe LRU that has backed the service since PR 1.  The name
``PlanCache`` remains an alias for :class:`MemoryTier`: every existing call
site keeps working, and a single-tier service is just a tiered cache with
no lower tier.  The persistent tier and the composite live in
:mod:`repro.service.tiers`.

Every public operation (and every counter update) happens under one
reentrant lock, so a cache shared by a thread pool of request handlers —
the :class:`~repro.service.gateway.ShardedOptimizerGateway` shape — never
interleaves an eviction with a lookup or tears a statistics update.  The
lock is held only for dictionary operations, never while optimizing or
touching a disk tier, so it is uncontended in practice.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Callable, Generic, Protocol, TypeVar, runtime_checkable

Value = TypeVar("Value")


@dataclass
class CacheStats:
    """Counters since construction (or the last :meth:`MemoryTier.clear`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready counters — the one encoding every reporting surface
        (CLI ``--json``, benchmarks, snapshot exports) shares, so adding a
        counter here updates them all and none re-derives fields by hand."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


@runtime_checkable
class CacheTier(Protocol[Value]):
    """What the service, gateway, and async front-end require of a cache.

    The protocol is the *union* of the call sites that previously assumed
    the concrete LRU: lookup with and without accounting, insertion,
    explicit eviction, consistent statistics snapshots, and the atomic
    miss-to-hit reclassification the coalescing layers use.  A tier may be
    a single store (:class:`MemoryTier`,
    :class:`~repro.service.tiers.DiskTier`) or a composite
    (:class:`~repro.service.tiers.TieredPlanCache`); callers never care.

    Locking contract: every method is atomic with respect to the tier's own
    state.  :meth:`peek` must be cheap and I/O-free (callers invoke it under
    their own locks); :meth:`get` and :meth:`probe` may perform I/O and must
    therefore never be called while holding an external lock that readers
    of :meth:`snapshot` also take.
    """

    def get(self, key: str) -> Value | None:
        """Return the cached value (refreshing recency), or ``None`` on miss."""
        ...

    def probe(self, key: str) -> Value | None:
        """Like :meth:`get`, but an absent key is *not* counted as a miss."""
        ...

    def peek(self, key: str) -> Value | None:
        """Resident value without recency/statistics effects; never does I/O."""
        ...

    def put(self, key: str, value: Value) -> None:
        """Insert (or refresh) ``key``."""
        ...

    def evict(self, key: str) -> bool:
        """Drop ``key`` if present; returns whether anything was dropped."""
        ...

    def reclassify_miss_as_hit(self) -> None:
        """Atomically recount one earlier miss as a hit."""
        ...

    def snapshot(self) -> Any:
        """A consistent copy of the counters (safe under concurrency)."""
        ...

    def snapshot_with_size(self) -> tuple[Any, int]:
        """Counters plus resident entry count, read in one atomic step."""
        ...

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        ...

    def __contains__(self, key: str) -> bool: ...

    def __len__(self) -> int: ...


class MemoryTier(Generic[Value]):
    """Bounded in-memory LRU tier mapping fingerprints to cached results.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``capacity`` is exceeded.  ``peek`` reads without touching recency
    or counters (used by batch deduplication, which should not inflate the
    hit rate with its own bookkeeping reads).

    ``capacity=0`` disables caching entirely: every lookup misses and every
    ``put`` is dropped on the floor (counted as an eviction, so the
    operator-visible eviction counter still reflects how many results were
    not retained).  This is the supported way to run a service or gateway
    uncached — e.g. to measure raw DP throughput — without special-casing
    call sites.

    ``on_evict`` (optional) observes every capacity eviction as
    ``(key, value)`` — the hook a write-back composite uses to demote
    entries to its disk tier.  It is invoked *after* the internal lock is
    released, so the callback may perform I/O or re-enter the tier without
    deadlocking; consequently a concurrent reader can observe the entry as
    absent before the callback has persisted it, which is exactly the
    write-back (not write-through) durability contract.

    All operations are atomic under an internal reentrant lock; see the
    module docstring.  ``stats`` remains directly readable for tests and
    single-threaded callers, but concurrent readers should prefer
    :meth:`snapshot`, which copies the counters under the lock.
    """

    def __init__(
        self,
        capacity: int = 128,
        on_evict: Callable[[str, Value], None] | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[str, Value] = OrderedDict()
        self._lock = threading.RLock()
        self._on_evict = on_evict

    def get(self, key: str) -> Value | None:
        """Return the cached value (refreshing recency), or ``None`` on miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def probe(self, key: str) -> Value | None:
        """Like :meth:`get`, but an absent key is *not* counted as a miss.

        For opportunistic fast-path probes (the async front-end checks the
        cache before queueing a request for batching) that fall back to a
        full, miss-counting lookup: counting the probe *and* the later real
        lookup would double-count one logical miss, breaking the
        ``misses == optimizations`` accounting identity.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            return None

    def peek(self, key: str) -> Value | None:
        """Return the cached value without touching recency or statistics."""
        with self._lock:
            return self._entries.get(key)

    def touch(self, key: str) -> Value | None:
        """Resident value with recency refreshed but *no* counter updates.

        The building block for composites that do their own hit/miss
        accounting across tiers: a composite ``get`` must refresh LRU
        recency exactly like :meth:`get`, but counting the memory probe here
        *and* the composite's own classification would double-book one
        logical lookup.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
            return None

    def put(self, key: str, value: Value) -> list[tuple[str, Value]]:
        """Insert (or refresh) ``key``, evicting the LRU entry when full.

        Returns the evicted ``(key, value)`` pairs (also delivered to
        ``on_evict``), oldest first — empty for the common non-evicting put.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            evicted: list[tuple[str, Value]] = []
            while len(self._entries) > self.capacity:
                evicted.append(self._entries.popitem(last=False))
                self.stats.evictions += 1
        # Outside the lock: the callback may do disk I/O (write-back
        # demotion) and must not stall concurrent lookups.
        if self._on_evict is not None:
            for evicted_key, evicted_value in evicted:
                self._on_evict(evicted_key, evicted_value)
        return evicted

    def evict(self, key: str) -> bool:
        """Drop ``key`` if resident (counted as an eviction); else no-op.

        Explicit eviction — invalidation, not capacity pressure — does not
        notify ``on_evict``: a write-back composite demotes entries it wants
        to *keep*, and an invalidated entry must not resurface from disk.
        """
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.stats.evictions += 1
            return True

    def keys(self) -> list[str]:
        """Resident keys, least recently used first (a consistent copy)."""
        with self._lock:
            return list(self._entries)

    def reclassify_miss_as_hit(self) -> None:
        """Atomically recount one earlier miss as a hit.

        Used when a lookup that missed was nevertheless answered without a
        fresh optimization — a duplicate within a batch, or a request
        coalesced onto an in-flight run — so the operator-facing hit rate
        agrees with the ``cached`` flags on the results.

        If the counters were reset (``clear``) between the miss and its
        reclassification, there is no miss left to move; the call then
        counts a plain hit instead of driving ``misses`` negative, so
        snapshots never observe impossible counters.
        """
        with self._lock:
            if self.stats.misses > 0:
                self.stats.misses -= 1
            self.stats.hits += 1

    def snapshot(self) -> CacheStats:
        """A consistent copy of the counters (safe under concurrency)."""
        with self._lock:
            return replace(self.stats)

    def snapshot_with_size(self) -> tuple[CacheStats, int]:
        """Counters plus resident entry count, read under one lock hold.

        Two separate ``snapshot()``/``len()`` calls could interleave with a
        concurrent insert or eviction; gateway statistics use this to keep
        each shard's numbers internally consistent.
        """
        with self._lock:
            return replace(self.stats), len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The historical name of the in-memory LRU.  Service construction, tests,
#: and half the docs say ``PlanCache``; the tiered refactor re-homed the
#: implementation as :class:`MemoryTier` without breaking any of them.
PlanCache = MemoryTier
