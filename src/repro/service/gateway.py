"""A concurrency-safe sharded front door over :class:`OptimizerService`.

:mod:`repro.service.service` ends with the observation that "a shard is an
``OptimizerService`` owning a fingerprint range, and an async gateway is a
thin wrapper over ``optimize_batch``" — this module is that successor.
:class:`ShardedOptimizerGateway` partitions the fingerprint space into
``n_shards`` contiguous ranges, each owned by an independent
:class:`OptimizerService` (its own plan cache, its own executor), and serves
requests from a thread pool of handlers safely:

* **routing** — a request's fingerprint places it on exactly one shard
  (:meth:`ShardedOptimizerGateway.shard_for`), so shard caches never
  duplicate entries and shard executors never contend for the same query;
* **in-flight coalescing (singleflight)** — concurrent identical or
  isomorphic misses on one shard share a single optimization: the first
  requester becomes the *leader* and runs the DP, every other requester
  becomes a *follower* that waits on the leader's completion event and is
  then served from the finished entry (remapped to its own table
  numbering).  Without this, N clients racing the same cold fingerprint
  would run N duplicate DP enumerations;
* **aggregated observability** — :meth:`ShardedOptimizerGateway.stats`
  snapshots per-shard cache counters plus gateway-level counters (requests,
  DP runs performed, coalesced requests, current and peak in-flight gauge)
  under one lock, so an operator never reads torn numbers;
* **graceful lifecycle** — the gateway is a context manager whose
  :meth:`~ShardedOptimizerGateway.close` drains the handler pool and fans
  out to every shard's executor.

Thread-safety contract: ``optimize`` and ``optimize_batch`` may be called
from any number of threads concurrently.  Shard caches are internally
locked (:class:`~repro.service.cache.CacheTier` implementations); the
gateway holds its own lock only for dictionary/counter operations — never
while a DP runs, and never across a cache lookup that may touch a disk
tier — so request handlers block each other only on genuinely shared work
and a slow disk read never stalls the flight table.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.cluster.simulator import DEFAULT_CLUSTER, ClusterModel
from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.core.master import PartitionExecutor
from repro.query.query import Query
from repro.service.cache import CacheStats, CacheTier
from repro.service.fingerprint import (
    CanonicalForm,
    canonicalize,
    fingerprint_canonical,
)
from repro.service.service import (
    CacheEntry,
    OptimizerService,
    ServiceResult,
    bind_result_theta,
    serve_from_result,
)

#: Width (in hex digits) of the fingerprint prefix used for range routing.
#: 8 hex digits = 32 bits — plenty to spread sha256 prefixes uniformly over
#: any practical shard count.
_ROUTE_HEX_DIGITS = 8
_ROUTE_SPACE = 1 << (4 * _ROUTE_HEX_DIGITS)


@dataclass(frozen=True)
class ShardStats:
    """One shard's observable state at snapshot time.

    ``cache`` is whatever the shard's tier snapshots —
    :class:`~repro.service.cache.CacheStats` for the plain LRU,
    :class:`~repro.service.tiers.TieredStats` for a tiered cache; both
    expose ``hits``/``misses``/``evictions``/``hit_rate`` and ``to_dict``.
    """

    shard: int
    cache: CacheStats
    entries: int
    #: θ-bindings served from a cached envelope (no DP run) on this shard.
    envelope_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """The shard cache's hit rate (0.0 before any lookup)."""
        return self.cache.hit_rate


@dataclass(frozen=True)
class GatewayStats:
    """A consistent cross-shard snapshot of the gateway's counters.

    ``coalesced`` counts requests that were answered by waiting on another
    request's in-flight optimization; ``optimizations`` counts DP runs the
    gateway actually performed.  ``requests - optimizations`` is therefore
    the number of answers served without enumerating anything.
    """

    shards: tuple[ShardStats, ...]
    requests: int
    optimizations: int
    coalesced: int
    in_flight: int
    peak_in_flight: int
    #: θ-specific answers bound from cached envelopes, summed over shards.
    #: Every one is a parametric request answered without enumerating.
    envelope_hits: int = 0

    @property
    def hits(self) -> int:
        """Cache hits summed over shards."""
        return sum(shard.cache.hits for shard in self.shards)

    @property
    def misses(self) -> int:
        """Cache misses summed over shards."""
        return sum(shard.cache.misses for shard in self.shards)

    @property
    def evictions(self) -> int:
        """Cache evictions summed over shards."""
        return sum(shard.cache.evictions for shard in self.shards)

    @property
    def hit_rate(self) -> float:
        """Aggregate hit rate over all shards (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class _Flight:
    """One in-flight optimization: a key, a completion event, its outcome.

    The leader publishes either an answer or ``error`` before setting
    ``done``; followers wait on ``done`` and then read whichever was
    published.  The answer has two forms: ``entry`` (the cached canonical
    plans — the normal case) and, as a fallback for caches that retain
    nothing (``capacity=0``) or evicted the entry before the leader's peek,
    the leader's own ``result`` plus the ``canonical`` numbering it was
    computed in, from which a follower's answer is relabeled directly.
    """

    __slots__ = ("key", "done", "entry", "error", "result", "canonical")

    def __init__(self, key: str) -> None:
        self.key = key
        self.done = threading.Event()
        self.entry: CacheEntry | None = None
        self.error: BaseException | None = None
        self.result: ServiceResult | None = None
        self.canonical: CanonicalForm | None = None


class ShardedOptimizerGateway:
    """Route optimization requests across sharded, coalescing services.

    Args:
        n_shards: number of independent :class:`OptimizerService` shards;
            each owns ``1/n_shards`` of the fingerprint space.
        n_workers: default per-query parallelism (overridable per call).
        settings: default :class:`~repro.config.OptimizerSettings`.
        executor_factory: called once per shard to build its partition
            executor (e.g. ``lambda: PersistentProcessPoolExecutor(4)``);
            ``None`` gives every shard the in-process serial executor.
        cache_capacity: plan-cache capacity *per shard*.
        cache_factory: called with each shard index to build that shard's
            cache tier (e.g. a
            :class:`~repro.service.tiers.TieredPlanCache` over a per-shard
            disk log — the index names the log file).  ``None`` gives every
            shard the default in-memory LRU of ``cache_capacity``.
        cluster: simulated-cluster parameters for reported accounting.
        gateway_threads: size of the internal handler pool that drives
            per-shard sub-batches in :meth:`optimize_batch`; defaults to
            ``n_shards``.
    """

    def __init__(
        self,
        n_shards: int = 4,
        n_workers: int = 8,
        settings: OptimizerSettings = DEFAULT_SETTINGS,
        executor_factory: Callable[[], PartitionExecutor] | None = None,
        cache_capacity: int = 256,
        cluster: ClusterModel = DEFAULT_CLUSTER,
        gateway_threads: int | None = None,
        cache_factory: Callable[[int], "CacheTier[CacheEntry]"] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if gateway_threads is not None and gateway_threads < 1:
            raise ValueError(f"gateway_threads must be >= 1, got {gateway_threads}")
        self.n_shards = n_shards
        self.n_workers = n_workers
        self.settings = settings
        self.shards: tuple[OptimizerService, ...] = tuple(
            OptimizerService(
                n_workers=n_workers,
                settings=settings,
                executor=executor_factory() if executor_factory is not None else None,
                cache_capacity=cache_capacity,
                cluster=cluster,
                cache=cache_factory(index) if cache_factory is not None else None,
            )
            for index in range(n_shards)
        )
        self._pool = ThreadPoolExecutor(
            max_workers=gateway_threads if gateway_threads is not None else n_shards,
            thread_name_prefix="gateway",
        )
        #: Guards the flight table, all counters, and the closed flag; as a
        #: condition variable it also lets ``close`` wait for in-flight
        #: requests to drain.
        self._lock = threading.Condition()
        self._flights: dict[str, _Flight] = {}
        self._closed = False
        self._requests = 0
        self._optimizations = 0
        self._coalesced = 0
        self._in_flight = 0
        self._peak_in_flight = 0

    # ------------------------------------------------------------------ routing

    def shard_for(self, key: str) -> int:
        """The shard owning fingerprint ``key``: contiguous range partitioning.

        The 32-bit fingerprint prefix space is split into ``n_shards``
        equal ranges — shard ``i`` owns ``[i/n, (i+1)/n)`` of it — so shard
        ownership is stable under any shard's restart and a future
        re-sharding can split ranges without rehashing every key.
        """
        return int(key[:_ROUTE_HEX_DIGITS], 16) * self.n_shards >> (
            4 * _ROUTE_HEX_DIGITS
        )

    # ------------------------------------------------------------------ single

    def optimize(
        self,
        query: Query,
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
        timeout_s: float | None = None,
    ) -> ServiceResult:
        """Optimize one query; safe to call from many threads concurrently.

        A cache hit on the owning shard is served immediately; a miss with
        an identical/isomorphic optimization already in flight waits for it
        (coalescing); otherwise this request leads the optimization and
        every concurrent duplicate rides along.

        ``timeout_s`` bounds only how long a *follower* waits on another
        request's in-flight run; on expiry it raises :class:`TimeoutError`
        and abandons the flight cleanly — the leader keeps running, its
        other followers are unaffected, and the in-flight gauge is released.
        A leader is never interrupted (a half-run DP has no safe abort
        point), and a cache hit never waits at all.
        """
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        canonical = canonicalize(query)
        key = fingerprint_canonical(canonical, settings, workers)
        shard = self.shards[self.shard_for(key)]
        self._enter_requests(1)
        try:
            role, payload = self._lookup_or_lead(shard, key)
            if role == "hit":
                return shard.serve_entry(payload, canonical, key, theta=settings.theta)
            if role == "follow":
                return self._await_flight(
                    shard,
                    payload,
                    canonical,
                    key,
                    timeout_s=timeout_s,
                    theta=settings.theta,
                )
            return self._lead(shard, payload, query, canonical, key, settings, workers)
        finally:
            self._exit_requests(1)

    def serve_if_cached(
        self, canonical: CanonicalForm, key: str, theta: float | None = None
    ) -> ServiceResult | None:
        """Serve ``key`` from its shard's cache if resident; else ``None``.

        The opportunistic fast path for front-ends (the async gateway) that
        queue misses for batching instead of blocking a thread per request:
        a hit is counted as a request and a shard cache hit; a miss counts
        *nothing* here — the caller funnels it into :meth:`optimize_batch`,
        whose lookup does the real miss accounting, so one logical miss is
        never double-counted.
        """
        shard = self.shards[self.shard_for(key)]
        with self._lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
        # The probe happens outside the gateway lock: on a tiered cache it
        # may read the disk tier, and a disk read must never stall the
        # flight table or the stats snapshot.  The tier locks itself.
        entry = shard.cache.probe(key)
        if entry is None:
            return None
        with self._lock:
            self._requests += 1
        return shard.serve_entry(entry, canonical, key, theta=theta)

    # ------------------------------------------------------------------- batch

    def optimize_batch(
        self,
        queries: Iterable[Query],
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> list[ServiceResult]:
        """Optimize many queries, fanning per-shard sub-batches out in parallel.

        Results come back in input order.  Each query is routed exactly as
        :meth:`optimize` routes it — hits served inline, in-flight
        duplicates coalesced (including duplicates *within* this batch),
        and each shard's residual misses submitted as one sub-batch to the
        handler pool so shard executors run concurrently and partition
        tasks interleave per shard.
        """
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        requests = list(queries)
        canonicals = [canonicalize(query) for query in requests]
        keys = [
            fingerprint_canonical(canonical, settings, workers)
            for canonical in canonicals
        ]
        results: list[ServiceResult | None] = [None] * len(requests)
        leaders: dict[int, list[tuple[int, _Flight]]] = {}
        followers: list[tuple[int, _Flight]] = []
        self._enter_requests(len(requests))
        try:
            try:
                for index, key in enumerate(keys):
                    shard_index = self.shard_for(key)
                    role, payload = self._lookup_or_lead(self.shards[shard_index], key)
                    if role == "hit":
                        results[index] = self.shards[shard_index].serve_entry(
                            payload, canonicals[index], key, theta=settings.theta
                        )
                    elif role == "follow":
                        followers.append((index, payload))
                    else:
                        leaders.setdefault(shard_index, []).append((index, payload))
            except BaseException as error:  # noqa: BLE001 - resolve flights, re-raise
                # Leader flights registered before the failure would strand
                # their followers (possibly in other threads) forever; fail
                # them explicitly instead.
                for group in leaders.values():
                    for __, flight in group:
                        flight.error = error
                        with self._lock:
                            self._flights.pop(flight.key, None)
                        flight.done.set()
                raise

            futures = [
                self._pool.submit(
                    self._lead_shard_batch,
                    shard_index,
                    group,
                    requests,
                    canonicals,
                    keys,
                    results,
                    settings,
                    workers,
                )
                for shard_index, group in leaders.items()
            ]
            errors: list[BaseException] = []
            for future in futures:
                try:
                    future.result()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    errors.append(error)
            # Leader groups are fully resolved (entries published, events
            # set) before any follower waits, so followers of *this* batch's
            # own flights never deadlock; followers of other threads' flights
            # wait on those threads' progress as usual.
            for index, flight in followers:
                shard = self.shards[self.shard_for(flight.key)]
                results[index] = self._await_flight(
                    shard, flight, canonicals[index], keys[index], theta=settings.theta
                )
            if errors:
                raise errors[0]
        finally:
            self._exit_requests(len(requests))
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # -------------------------------------------------------------- singleflight

    def _lookup_or_lead(
        self, shard: OptimizerService, key: str
    ) -> tuple[str, CacheEntry | _Flight]:
        """Classify a request: cache hit, follower, or leader.

        The cache lookup happens *outside* the gateway lock — on a tiered
        cache it may read the disk tier, and holding the flight-table lock
        across file I/O would serialize every concurrent request behind the
        disk.  The miss/flight race this opens is closed under the lock: a
        leader that completed between our lookup and the lock acquisition
        filled the cache *before* deregistering its flight, so a miss that
        finds no flight re-checks the (I/O-free) memory peek and converts
        to a hit rather than leading a duplicate optimization.
        """
        # No closed-check here: requests already admitted (``_enter_requests``)
        # must run to completion, or flights they registered would strand
        # their followers.  Closing is gated at request entry only.
        entry = shard.cache.get(key)
        if entry is not None:
            return "hit", entry
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                self._coalesced += 1
                return "follow", flight
            resident = shard.cache.peek(key)
            if resident is not None:
                # A leader completed in the window between our miss and this
                # lock hold.  Its run answered us without a fresh DP, so the
                # miss our lookup counted is reclassified as the hit it was.
                shard.cache.reclassify_miss_as_hit()
                return "hit", resident
            flight = _Flight(key)
            self._flights[key] = flight
            return "lead", flight

    def _lead(
        self,
        shard: OptimizerService,
        flight: _Flight,
        query: Query,
        canonical: CanonicalForm,
        key: str,
        settings: OptimizerSettings,
        workers: int,
    ) -> ServiceResult:
        """Run the optimization this request leads; publish it to followers.

        The flight carries the *unbound* entry and result: followers may ask
        for different θs than the leader, and each binds its own against the
        shared envelope.  Only the leader's own return value is θ-bound.
        """
        try:
            result, entry = shard.run_misses_with_entries(
                [(query, canonical, key)], settings, workers
            )[0]
            flight.entry = entry
            flight.result = result
            flight.canonical = canonical
            with self._lock:
                self._optimizations += 1
            return bind_result_theta(result, settings.theta, envelope=entry.envelope)
        except BaseException as error:  # noqa: BLE001 - published, then re-raised
            flight.error = error
            raise
        finally:
            # Deregister only after ``run_misses`` has filled the cache, so
            # a concurrent miss either sees the entry or finds this flight.
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()

    def _lead_shard_batch(
        self,
        shard_index: int,
        group: list[tuple[int, _Flight]],
        requests: list[Query],
        canonicals: list[CanonicalForm],
        keys: list[str],
        results: list[ServiceResult | None],
        settings: OptimizerSettings,
        workers: int,
    ) -> None:
        """Run one shard's led misses as a single interleaved sub-batch."""
        shard = self.shards[shard_index]
        try:
            shard_results = shard.run_misses_with_entries(
                [(requests[index], canonicals[index], keys[index]) for index, __ in group],
                settings,
                workers,
            )
            for (index, flight), (result, entry) in zip(group, shard_results):
                flight.entry = entry
                flight.result = result
                flight.canonical = canonicals[index]
                results[index] = bind_result_theta(
                    result, settings.theta, envelope=entry.envelope
                )
            with self._lock:
                self._optimizations += len(group)
        except BaseException as error:  # noqa: BLE001 - published, then re-raised
            for __, flight in group:
                flight.error = error
            raise
        finally:
            with self._lock:
                for index, __ in group:
                    self._flights.pop(keys[index], None)
            for __, flight in group:
                flight.done.set()

    def _await_flight(
        self,
        shard: OptimizerService,
        flight: _Flight,
        canonical: CanonicalForm,
        key: str,
        timeout_s: float | None = None,
        theta: float | None = None,
    ) -> ServiceResult:
        """Wait for the in-flight leader, then serve from its published entry.

        With ``timeout_s``, an expired wait abandons the flight: nothing was
        registered by this follower, so abandonment needs no cleanup beyond
        raising — the flight, its leader, and its other followers are
        untouched.  (The follower's probe already counted a cache miss; that
        stands, since this request was indeed not answered from cache.)
        """
        if not flight.done.wait(timeout_s):
            raise TimeoutError(
                f"coalesced flight for {flight.key[:12]}… did not complete "
                f"within {timeout_s}s; the leader is still running"
            )
        if flight.error is not None:
            raise flight.error
        entry = flight.entry
        if entry is None:
            # Nothing cached to serve from: capacity=0 retains nothing, or
            # the entry was evicted between the leader's cache fill and its
            # peek.  The leader's own result is still on the flight —
            # relabel it into this follower's numbering, preserving the
            # one-DP-run-per-fingerprint invariant even with no cache.
            assert flight.result is not None and flight.canonical is not None
            with self._lock:
                shard.cache.reclassify_miss_as_hit()
            return serve_from_result(
                flight.result, flight.canonical, canonical, key, theta=theta
            )
        # The follower's probe counted a miss, but no optimization ran for
        # it — recount so hit rate means "answered without enumerating".
        # Under the gateway lock so ``stats()`` snapshots never observe the
        # counters mid-reclassification.
        with self._lock:
            shard.cache.reclassify_miss_as_hit()
        return shard.serve_entry(entry, canonical, key, theta=theta)

    # ------------------------------------------------------------------- stats

    def _enter_requests(self, count: int) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            self._requests += count
            self._in_flight += count
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)

    def _exit_requests(self, count: int) -> None:
        with self._lock:
            self._in_flight -= count
            if self._in_flight == 0:
                self._lock.notify_all()

    def stats(self) -> GatewayStats:
        """A consistent snapshot of gateway and per-shard counters.

        Gateway counters are read under the gateway lock; each shard's
        cache counters and entry count are read in one atomic hold of that
        tier's own lock (``snapshot_with_size``), so every individual
        number is untorn.  Cache lookups deliberately run outside the
        gateway lock (they may touch a disk tier), so a snapshot taken
        mid-request can observe a lookup already counted on a shard but not
        yet resolved at the gateway; at quiescence the accounting
        identities (``hits + misses == requests`` per the ``cached`` flags)
        hold exactly, and the tests pin them there.
        """
        with self._lock:
            shard_stats = []
            for index, shard in enumerate(self.shards):
                cache_stats, entries = shard.cache.snapshot_with_size()
                shard_stats.append(
                    ShardStats(
                        shard=index,
                        cache=cache_stats,
                        entries=entries,
                        envelope_hits=shard.envelope_hits,
                    )
                )
            return GatewayStats(
                shards=tuple(shard_stats),
                requests=self._requests,
                optimizations=self._optimizations,
                coalesced=self._coalesced,
                in_flight=self._in_flight,
                peak_in_flight=self._peak_in_flight,
                envelope_hits=sum(stat.envelope_hits for stat in shard_stats),
            )

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Stop admitting requests, drain in-flight ones, release shards.

        Blocks until every admitted request has completed: tearing a shard
        executor down under a running DP would fail that request — and a
        self-healing executor (the persistent pool rebuilds itself on
        break) could then resurrect a worker pool *after* close, leaking
        processes.  Must not be called from inside a request handler (it
        would wait on its own request).  Idempotent and thread-safe.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
            while not already_closed and self._in_flight:
                self._lock.wait()
        if already_closed:
            return
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedOptimizerGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
