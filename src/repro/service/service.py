"""The optimizer-as-a-service front-end.

:class:`OptimizerService` turns the one-shot :func:`repro.optimize_mpq` into
a long-lived service suited to heavy query-optimization traffic:

* every request is canonicalized and fingerprinted
  (:mod:`repro.service.fingerprint`), so repeated — or merely isomorphic —
  queries are answered from a bounded LRU cache
  (:mod:`repro.service.cache`) in O(plan size) instead of O(DP);
* cache misses run the paper's Algorithm 1 on a pluggable executor; with a
  :class:`~repro.cluster.executors.PersistentProcessPoolExecutor`,
  :meth:`OptimizerService.optimize_batch` interleaves partition tasks from
  many concurrent queries onto one warm worker pool, so no query waits for
  another query's stragglers and no request pays pool startup;
* cached plans are stored in canonical table numbering and remapped to each
  requester's numbering on the way out (:mod:`repro.service.remap`), which
  keeps hits correct even when two clients number the same relations
  differently.

This is the substrate the ROADMAP's sharding/async directions build on: a
shard is an ``OptimizerService`` owning a fingerprint range, and an async
gateway is a thin wrapper over :meth:`optimize_batch`.
"""

from __future__ import annotations

# Imported eagerly: evaluating ``concurrent.futures.process`` lazily inside
# an ``except`` clause raises AttributeError (masking the real error) when
# the submodule was never imported — e.g. a serial executor raising before
# any process pool existed.
from concurrent.futures.process import BrokenProcessPool
import dataclasses
import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.cluster.simulator import (
    DEFAULT_CLUSTER,
    ClusterModel,
    SimulatedTiming,
    simulate_mpq_run,
)
from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.core.constraints import usable_partitions
from repro.core.envelope import (
    FULL_THETA_DOMAIN,
    EnvelopeIndex,
    best_index_at,
    build_envelope_index,
)
from repro.core.master import MasterResult, PartitionExecutor
from repro.core.worker import PartitionResult, registry_generation
from repro.cluster.executors import SerialPartitionExecutor
from repro.cost.pruning import final_prune, make_pruning
from repro.plans.plan import Plan, plan_tie_key
from repro.query.query import Query
from repro.service.cache import CacheTier, PlanCache
from repro.service.fingerprint import (
    CanonicalForm,
    canonicalize,
    fingerprint_canonical,
    settings_signature,
)
from repro.service.provenance import Provenance, aggregate_worker_stats
from repro.service.remap import invert, remap_plan


#: ``CacheEntry.kind`` values: a scalar entry caches one optimization's
#: plan frontier; an envelope entry caches a parametric run's whole
#: lower-envelope frontier plus its breakpoint index, so every θ of the
#: query shape is answered from the one entry.
SCALAR_ENTRY = "scalar"
ENVELOPE_ENTRY = "envelope"


@dataclass
class CacheEntry:
    """What the cache retains per fingerprint: plans in canonical numbering.

    Storing plans canonically (rather than in the first requester's
    numbering) makes serving any isomorphic request a single remap; the
    simulated accounting is that of the original run, which is exactly what
    an identical request would have measured.  Public because the sharded
    gateway (:mod:`repro.service.gateway`) hands entries from a completed
    in-flight run directly to coalesced waiters.

    An entry is the cache's unit of *derived artifact*, not necessarily a
    single answer: an :data:`ENVELOPE_ENTRY` stores a parametric run's full
    lower-envelope frontier plus its breakpoint index, from which a
    θ-specific request is answered by O(log n) lookup
    (:meth:`select_index`) instead of a DP run.
    """

    canonical_plans: list[Plan]
    n_partitions: int
    simulated: SimulatedTiming
    #: Enumeration backend that computed the cached plans; replayed on hits
    #: so a cached answer stays attributable to the core that produced it.
    backend_used: str = ""
    #: How this entry came to be (backend, resolved settings signature,
    #: registry generation, creation time, aggregated worker stats).  What a
    #: persistent tier persists alongside the plans, and what invalidation
    #: predicates evaluate against.  ``None`` only for hand-built entries.
    provenance: Provenance | None = None
    #: :data:`SCALAR_ENTRY` or :data:`ENVELOPE_ENTRY`.
    kind: str = SCALAR_ENTRY
    #: Breakpoint index over ``canonical_plans`` for envelope entries.
    envelope: EnvelopeIndex | None = None

    def select_index(self, theta: float) -> int:
        """Position of the θ-optimal plan in ``canonical_plans``.

        Envelope entries bisect their breakpoint index; an entry without
        one (a scalar-kind parametric entry from a pre-envelope log) falls
        back to the linear reference rule — same selection, just O(n).
        """
        costs = [plan.cost for plan in self.canonical_plans]
        if self.envelope is not None:
            return self.envelope.select(costs, theta)
        return best_index_at(costs, theta)


@dataclass
class ServiceResult:
    """One request's answer: plans in the request's own table numbering."""

    plans: list[Plan]
    n_partitions: int
    fingerprint: str
    #: Whether this answer was served from the plan cache.
    cached: bool
    #: Simulated cluster accounting of the (possibly cached) optimization run.
    simulated_time_ms: float
    network_bytes: int
    #: Enumeration backend that produced the plans (for a cache hit: the
    #: backend of the original run).  Empty only for hand-built results.
    backend_used: str = ""
    #: The θ this result was bound to: ``plans`` holds exactly the one plan
    #: optimal at this parameter value.  ``None`` for unbound results (the
    #: whole frontier, parametric or not).
    theta: float | None = None

    @property
    def best(self) -> Plan:
        """Cheapest plan by the first metric (the plan a DBMS would run).

        Ties are broken by the deterministic cross-backend rule of
        :func:`repro.plans.plan.plan_tie_key` — cached answers therefore
        pick the same best plan as a fresh run on any backend.
        """
        if not self.plans:
            raise ValueError("optimization produced no plan")
        return min(self.plans, key=plan_tie_key)


def serve_from_result(
    result: ServiceResult,
    source: CanonicalForm,
    target: CanonicalForm,
    key: str,
    theta: float | None = None,
) -> ServiceResult:
    """Serve an isomorphic duplicate directly from another request's result.

    ``result`` holds plans in the *source* request's own table numbering;
    composing the source numbering with the inverse of the target numbering
    relabels them into the duplicate requester's numbering without touching
    the cache — the serving path when no cache entry exists (``capacity=0``,
    or an entry evicted between the run and the duplicate being served) and
    for async waiters coalesced onto a batched flight.

    With ``theta``, the unbound frontier is narrowed to its θ-optimal plan
    *before* relabeling (one remap instead of a frontier's worth).  The
    selection key never reads table numbers, so binding on the source
    plans picks the same plan every consumer of this frontier picks.
    """
    inverse = invert(target.numbering)
    mapping = tuple(
        inverse[source.numbering[original]]
        for original in range(len(source.numbering))
    )
    if theta is not None:
        source_plans = [
            result.plans[best_index_at([plan.cost for plan in result.plans], theta)]
        ]
    else:
        source_plans = result.plans
    if mapping == tuple(range(len(mapping))):
        # Identical numbering (the common case when one hot query object is
        # coalesced many times): plans are frozen, so they can be shared
        # as-is — only the list and the flags are fresh.
        plans = list(source_plans)
    else:
        plans = [remap_plan(plan, mapping) for plan in source_plans]
    return dataclasses.replace(
        result,
        plans=plans,
        fingerprint=key,
        cached=True,
        theta=theta if theta is not None else result.theta,
    )


def bind_result_theta(
    result: ServiceResult,
    theta: float | None,
    envelope: EnvelopeIndex | None = None,
) -> ServiceResult:
    """Narrow a fresh (unbound) envelope result to its θ-optimal plan.

    Used by the miss path: the DP always runs θ-free and produces the full
    frontier; the request that led it may still have asked for a concrete
    θ.  ``envelope`` (positionally aligned with ``result.plans`` — costs
    are numbering-invariant, so the entry's canonical index applies to the
    requester-numbered plans directly) makes the bind O(log n); without it
    the linear reference rule selects identically.
    """
    if theta is None:
        return result
    costs = [plan.cost for plan in result.plans]
    if envelope is not None:
        index = envelope.select(costs, theta)
    else:
        index = best_index_at(costs, theta)
    return dataclasses.replace(result, plans=[result.plans[index]], theta=theta)


class OptimizerService:
    """A long-lived optimizer serving a stream of queries with plan caching.

    Args:
        n_workers: default parallelism per query (overridable per call).
        settings: default :class:`~repro.config.OptimizerSettings`.
        executor: how partition tasks physically run.  Defaults to the
            in-process serial executor (deterministic, zero setup); pass a
            :class:`~repro.cluster.executors.PersistentProcessPoolExecutor`
            for true parallelism with warm workers — ``optimize_batch`` then
            batches all queries' partition tasks onto the one pool.
        cache_capacity: bound on resident cached fingerprints (LRU beyond).
        cache: a ready-made cache tier to serve through instead of the
            default in-memory LRU — e.g. a
            :class:`~repro.service.tiers.TieredPlanCache` whose disk tier
            survives restarts.  When given, ``cache_capacity`` is ignored;
            anything satisfying :class:`~repro.service.cache.CacheTier`
            works, since the service only uses the protocol surface.
        cluster: simulated-cluster parameters for the reported accounting.
    """

    def __init__(
        self,
        n_workers: int = 8,
        settings: OptimizerSettings = DEFAULT_SETTINGS,
        executor: PartitionExecutor | None = None,
        cache_capacity: int = 256,
        cluster: ClusterModel = DEFAULT_CLUSTER,
        cache: CacheTier[CacheEntry] | None = None,
    ) -> None:
        self.n_workers = n_workers
        self.settings = settings
        self.executor = executor if executor is not None else SerialPartitionExecutor()
        self.cluster = cluster
        self.cache: CacheTier[CacheEntry] = (
            cache if cache is not None else PlanCache(capacity=cache_capacity)
        )
        self._counter_lock = threading.Lock()
        self._envelope_hits = 0

    @property
    def envelope_hits(self) -> int:
        """θ-specific answers served from a materialized envelope (no DP)."""
        with self._counter_lock:
            return self._envelope_hits

    # ------------------------------------------------------------------ single

    def optimize(
        self,
        query: Query,
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> ServiceResult:
        """Optimize one query, serving repeated/isomorphic requests from cache.

        The fingerprint is θ-free, so a θ-bound parametric request hits the
        same entry as every other θ of its shape; the hit is answered by
        envelope lookup, and only the first request per shape runs a DP.
        """
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        canonical = canonicalize(query)
        key = fingerprint_canonical(canonical, settings, workers)
        entry = self.cache.get(key)
        if entry is not None:
            return self.serve_entry(entry, canonical, key, theta=settings.theta)
        result, entry = self.run_misses_with_entries(
            [(query, canonical, key)], settings, workers
        )[0]
        return bind_result_theta(result, settings.theta, envelope=entry.envelope)

    # ------------------------------------------------------------------- batch

    def optimize_batch(
        self,
        queries: Iterable[Query],
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> list[ServiceResult]:
        """Optimize many queries, batching their partition tasks together.

        Lookup order is the input order; duplicate (or isomorphic) queries
        within the batch are optimized once and the rest served as cache
        hits.  When the executor exposes ``submit_partitions`` (the
        persistent pool), *all* missing queries' partition tasks are
        submitted before any result is awaited, so the warm workers drain
        one interleaved task queue instead of running query-by-query.
        """
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        requests = list(queries)
        canonicals = [canonicalize(query) for query in requests]
        keys = [
            fingerprint_canonical(canonical, settings, workers)
            for canonical in canonicals
        ]

        results: list[ServiceResult | None] = [None] * len(requests)
        misses: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            entry = self.cache.get(key)
            if entry is not None:
                results[index] = self.serve_entry(
                    entry, canonicals[index], key, theta=settings.theta
                )
            else:
                misses.setdefault(key, []).append(index)

        # One representative query per missing fingerprint actually runs.
        unique = [(key, indices[0]) for key, indices in misses.items()]
        miss_outcomes = self.run_misses_with_entries(
            [
                (requests[index], canonicals[index], key)
                for key, index in unique
            ],
            settings,
            workers,
        )
        for (key, representative), (entry_result, entry) in zip(unique, miss_outcomes):
            results[representative] = bind_result_theta(
                entry_result, settings.theta, envelope=entry.envelope
            )
            for index in misses[key][1:]:
                # Isomorphic duplicate within the batch: computed once above
                # and served from the run's own entry — present even when
                # the cache retains nothing (capacity=0) or already evicted
                # it.  The duplicate's initial lookup counted a miss (the
                # entry did not exist yet); reclassify it as the hit it
                # ultimately was, so the operator-facing hit rate agrees
                # with the ``cached`` flags on the results.
                self.cache.reclassify_miss_as_hit()
                results[index] = self.serve_entry(
                    entry, canonicals[index], key, theta=settings.theta
                )
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # ----------------------------------------------------------------- helpers

    def run_misses(
        self,
        items: Sequence[tuple[Query, CanonicalForm, str]],
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> list[ServiceResult]:
        """Optimize queries already known to be absent from the cache.

        Each item is ``(query, canonical form, fingerprint)`` — the caller
        has done the lookup (and, for the gateway, the in-flight
        registration).  Partition tasks from all items interleave on the
        executor when it supports batching; every completed run is cached
        under its fingerprint before its result is returned.
        """
        return [
            result
            for result, __ in self.run_misses_with_entries(items, settings, n_workers)
        ]

    def run_misses_with_entries(
        self,
        items: Sequence[tuple[Query, CanonicalForm, str]],
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> list[tuple[ServiceResult, CacheEntry]]:
        """:meth:`run_misses`, returning each run's cache entry alongside.

        The DP always runs θ-free — a θ binding on ``settings`` is stripped
        here, so the run materializes the full envelope and *one* run
        answers every θ of the shape.  Results are correspondingly unbound;
        callers bind per requester (:func:`bind_result_theta`).  Handing
        the entry back (rather than making callers re-peek the cache) is
        what lets the gateway serve coalesced followers their own θ even
        when the cache retains nothing.
        """
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        settings = settings.without_theta()
        gathered = self._run_many(
            [(query, workers, settings) for query, __, __ in items]
        )
        return [
            self._complete_run(query, canonical, key, settings, workers, partition_results)
            for (query, canonical, key), partition_results in zip(items, gathered)
        ]

    def _run_many(
        self, tasks: Sequence[tuple[Query, int, OptimizerSettings]]
    ) -> list[list[PartitionResult]]:
        """Run several queries' partition tasks, interleaved when possible."""
        partition_counts = [
            usable_partitions(query.n_tables, workers, settings.plan_space)
            for query, workers, settings in tasks
        ]
        submit = getattr(self.executor, "submit_partitions", None)
        if submit is None:
            return [
                self.executor.map_partitions(query, n_partitions, settings)
                for (query, __, settings), n_partitions in zip(tasks, partition_counts)
            ]
        futures = [
            submit(query, n_partitions, settings)
            for (query, __, settings), n_partitions in zip(tasks, partition_counts)
        ]
        try:
            return [
                [future.result() for future in query_futures]
                for query_futures in futures
            ]
        except BrokenProcessPool:
            # A worker died mid-batch; every in-flight future on the broken
            # pool is lost.  Fall back to query-by-query map_partitions,
            # which carries the executor's own rebuild-on-break recovery.
            close = getattr(self.executor, "close", None)
            if close is not None:
                close()
            return [
                self.executor.map_partitions(query, n_partitions, settings)
                for (query, __, settings), n_partitions in zip(tasks, partition_counts)
            ]

    def _complete_run(
        self,
        query: Query,
        canonical: CanonicalForm,
        key: str,
        settings: OptimizerSettings,
        workers: int,
        partition_results: list[PartitionResult],
    ) -> tuple[ServiceResult, CacheEntry]:
        """Final-prune a miss's partition results, cache them, build the answer.

        A parametric run's frontier is cached as an :data:`ENVELOPE_ENTRY`:
        the breakpoint index is extracted once here (and serialized with the
        entry, never recomputed downstream), and the provenance records the
        θ-domain the envelope covers.  ``settings`` is already θ-free (see
        :meth:`run_misses_with_entries`); the returned result is unbound.
        """
        pruning = make_pruning(settings, n_tables=query.n_tables)
        plans = final_prune(pruning, (result.plans for result in partition_results))
        master = MasterResult(
            plans=plans,
            n_partitions=len(partition_results),
            requested_workers=workers,
            partition_results=partition_results,
        )
        simulated = simulate_mpq_run(self.cluster, query, master)
        canonical_plans = [remap_plan(plan, canonical.numbering) for plan in plans]
        if settings.parametric and plans:
            kind = ENVELOPE_ENTRY
            envelope = build_envelope_index(canonical_plans)
            theta_domain = FULL_THETA_DOMAIN
        else:
            kind = SCALAR_ENTRY
            envelope = None
            theta_domain = None
        provenance = Provenance(
            backend_used=master.backend_used,
            settings_signature=settings_signature(settings),
            registry_generation=registry_generation(),
            created_at_s=time.time(),
            n_partitions=master.n_partitions,
            worker_stats=aggregate_worker_stats(
                [result.stats for result in partition_results]
            ),
            theta_domain=theta_domain,
        )
        entry = CacheEntry(
            canonical_plans=canonical_plans,
            n_partitions=master.n_partitions,
            simulated=simulated,
            backend_used=master.backend_used,
            provenance=provenance,
            kind=kind,
            envelope=envelope,
        )
        self.cache.put(key, entry)
        result = ServiceResult(
            plans=plans,
            n_partitions=master.n_partitions,
            fingerprint=key,
            cached=False,
            simulated_time_ms=simulated.total_ms,
            network_bytes=simulated.network_bytes,
            backend_used=master.backend_used,
        )
        return result, entry

    def serve_entry(
        self,
        entry: CacheEntry,
        canonical: CanonicalForm,
        key: str,
        theta: float | None = None,
    ) -> ServiceResult:
        """Remap a cached entry's canonical plans into the requester's numbering.

        With ``theta``, the entry's breakpoint index binds the request to
        its θ-optimal plan first, so only that one plan is remapped — the
        envelope fast path every front-end's hit serving funnels through;
        each such bind counts one ``envelope_hits``.
        """
        mapping = invert(canonical.numbering)
        if theta is not None:
            index = entry.select_index(theta)
            plans = [remap_plan(entry.canonical_plans[index], mapping)]
            with self._counter_lock:
                self._envelope_hits += 1
        else:
            plans = [remap_plan(plan, mapping) for plan in entry.canonical_plans]
        return ServiceResult(
            plans=plans,
            n_partitions=entry.n_partitions,
            fingerprint=key,
            cached=True,
            simulated_time_ms=entry.simulated.total_ms,
            network_bytes=entry.simulated.network_bytes,
            backend_used=entry.backend_used,
            theta=theta,
        )

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release executor resources and any cache-tier file handles."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()
        cache_close = getattr(self.cache, "close", None)
        if cache_close is not None:
            cache_close()

    def __enter__(self) -> "OptimizerService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
