"""The optimizer-as-a-service front-end.

:class:`OptimizerService` turns the one-shot :func:`repro.optimize_mpq` into
a long-lived service suited to heavy query-optimization traffic:

* every request is canonicalized and fingerprinted
  (:mod:`repro.service.fingerprint`), so repeated — or merely isomorphic —
  queries are answered from a bounded LRU cache
  (:mod:`repro.service.cache`) in O(plan size) instead of O(DP);
* cache misses run the paper's Algorithm 1 on a pluggable executor; with a
  :class:`~repro.cluster.executors.PersistentProcessPoolExecutor`,
  :meth:`OptimizerService.optimize_batch` interleaves partition tasks from
  many concurrent queries onto one warm worker pool, so no query waits for
  another query's stragglers and no request pays pool startup;
* cached plans are stored in canonical table numbering and remapped to each
  requester's numbering on the way out (:mod:`repro.service.remap`), which
  keeps hits correct even when two clients number the same relations
  differently.

This is the substrate the ROADMAP's sharding/async directions build on: a
shard is an ``OptimizerService`` owning a fingerprint range, and an async
gateway is a thin wrapper over :meth:`optimize_batch`.
"""

from __future__ import annotations

# Imported eagerly: evaluating ``concurrent.futures.process`` lazily inside
# an ``except`` clause raises AttributeError (masking the real error) when
# the submodule was never imported — e.g. a serial executor raising before
# any process pool existed.
from concurrent.futures.process import BrokenProcessPool
import dataclasses
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.cluster.simulator import (
    DEFAULT_CLUSTER,
    ClusterModel,
    SimulatedTiming,
    simulate_mpq_run,
)
from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.core.constraints import usable_partitions
from repro.core.master import MasterResult, PartitionExecutor
from repro.core.worker import PartitionResult, registry_generation
from repro.cluster.executors import SerialPartitionExecutor
from repro.cost.pruning import final_prune, make_pruning
from repro.plans.plan import Plan, plan_tie_key
from repro.query.query import Query
from repro.service.cache import CacheTier, PlanCache
from repro.service.fingerprint import (
    CanonicalForm,
    canonicalize,
    fingerprint_canonical,
    settings_signature,
)
from repro.service.provenance import Provenance, aggregate_worker_stats
from repro.service.remap import invert, remap_plan


@dataclass
class CacheEntry:
    """What the cache retains per fingerprint: plans in canonical numbering.

    Storing plans canonically (rather than in the first requester's
    numbering) makes serving any isomorphic request a single remap; the
    simulated accounting is that of the original run, which is exactly what
    an identical request would have measured.  Public because the sharded
    gateway (:mod:`repro.service.gateway`) hands entries from a completed
    in-flight run directly to coalesced waiters.
    """

    canonical_plans: list[Plan]
    n_partitions: int
    simulated: SimulatedTiming
    #: Enumeration backend that computed the cached plans; replayed on hits
    #: so a cached answer stays attributable to the core that produced it.
    backend_used: str = ""
    #: How this entry came to be (backend, resolved settings signature,
    #: registry generation, creation time, aggregated worker stats).  What a
    #: persistent tier persists alongside the plans, and what invalidation
    #: predicates evaluate against.  ``None`` only for hand-built entries.
    provenance: Provenance | None = None


@dataclass
class ServiceResult:
    """One request's answer: plans in the request's own table numbering."""

    plans: list[Plan]
    n_partitions: int
    fingerprint: str
    #: Whether this answer was served from the plan cache.
    cached: bool
    #: Simulated cluster accounting of the (possibly cached) optimization run.
    simulated_time_ms: float
    network_bytes: int
    #: Enumeration backend that produced the plans (for a cache hit: the
    #: backend of the original run).  Empty only for hand-built results.
    backend_used: str = ""

    @property
    def best(self) -> Plan:
        """Cheapest plan by the first metric (the plan a DBMS would run).

        Ties are broken by the deterministic cross-backend rule of
        :func:`repro.plans.plan.plan_tie_key` — cached answers therefore
        pick the same best plan as a fresh run on any backend.
        """
        if not self.plans:
            raise ValueError("optimization produced no plan")
        return min(self.plans, key=plan_tie_key)


def serve_from_result(
    result: ServiceResult,
    source: CanonicalForm,
    target: CanonicalForm,
    key: str,
) -> ServiceResult:
    """Serve an isomorphic duplicate directly from another request's result.

    ``result`` holds plans in the *source* request's own table numbering;
    composing the source numbering with the inverse of the target numbering
    relabels them into the duplicate requester's numbering without touching
    the cache — the serving path when no cache entry exists (``capacity=0``,
    or an entry evicted between the run and the duplicate being served) and
    for async waiters coalesced onto a batched flight.
    """
    inverse = invert(target.numbering)
    mapping = tuple(
        inverse[source.numbering[original]]
        for original in range(len(source.numbering))
    )
    if mapping == tuple(range(len(mapping))):
        # Identical numbering (the common case when one hot query object is
        # coalesced many times): plans are frozen, so they can be shared
        # as-is — only the list and the flags are fresh.
        plans = list(result.plans)
    else:
        plans = [remap_plan(plan, mapping) for plan in result.plans]
    return dataclasses.replace(
        result,
        plans=plans,
        fingerprint=key,
        cached=True,
    )


class OptimizerService:
    """A long-lived optimizer serving a stream of queries with plan caching.

    Args:
        n_workers: default parallelism per query (overridable per call).
        settings: default :class:`~repro.config.OptimizerSettings`.
        executor: how partition tasks physically run.  Defaults to the
            in-process serial executor (deterministic, zero setup); pass a
            :class:`~repro.cluster.executors.PersistentProcessPoolExecutor`
            for true parallelism with warm workers — ``optimize_batch`` then
            batches all queries' partition tasks onto the one pool.
        cache_capacity: bound on resident cached fingerprints (LRU beyond).
        cache: a ready-made cache tier to serve through instead of the
            default in-memory LRU — e.g. a
            :class:`~repro.service.tiers.TieredPlanCache` whose disk tier
            survives restarts.  When given, ``cache_capacity`` is ignored;
            anything satisfying :class:`~repro.service.cache.CacheTier`
            works, since the service only uses the protocol surface.
        cluster: simulated-cluster parameters for the reported accounting.
    """

    def __init__(
        self,
        n_workers: int = 8,
        settings: OptimizerSettings = DEFAULT_SETTINGS,
        executor: PartitionExecutor | None = None,
        cache_capacity: int = 256,
        cluster: ClusterModel = DEFAULT_CLUSTER,
        cache: CacheTier[CacheEntry] | None = None,
    ) -> None:
        self.n_workers = n_workers
        self.settings = settings
        self.executor = executor if executor is not None else SerialPartitionExecutor()
        self.cluster = cluster
        self.cache: CacheTier[CacheEntry] = (
            cache if cache is not None else PlanCache(capacity=cache_capacity)
        )

    # ------------------------------------------------------------------ single

    def optimize(
        self,
        query: Query,
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> ServiceResult:
        """Optimize one query, serving repeated/isomorphic requests from cache."""
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        canonical = canonicalize(query)
        key = fingerprint_canonical(canonical, settings, workers)
        entry = self.cache.get(key)
        if entry is not None:
            return self.serve_entry(entry, canonical, key)
        return self.run_misses([(query, canonical, key)], settings, workers)[0]

    # ------------------------------------------------------------------- batch

    def optimize_batch(
        self,
        queries: Iterable[Query],
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> list[ServiceResult]:
        """Optimize many queries, batching their partition tasks together.

        Lookup order is the input order; duplicate (or isomorphic) queries
        within the batch are optimized once and the rest served as cache
        hits.  When the executor exposes ``submit_partitions`` (the
        persistent pool), *all* missing queries' partition tasks are
        submitted before any result is awaited, so the warm workers drain
        one interleaved task queue instead of running query-by-query.
        """
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        requests = list(queries)
        canonicals = [canonicalize(query) for query in requests]
        keys = [
            fingerprint_canonical(canonical, settings, workers)
            for canonical in canonicals
        ]

        results: list[ServiceResult | None] = [None] * len(requests)
        misses: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            entry = self.cache.get(key)
            if entry is not None:
                results[index] = self.serve_entry(entry, canonicals[index], key)
            else:
                misses.setdefault(key, []).append(index)

        # One representative query per missing fingerprint actually runs.
        unique = [(key, indices[0]) for key, indices in misses.items()]
        miss_results = self.run_misses(
            [
                (requests[index], canonicals[index], key)
                for key, index in unique
            ],
            settings,
            workers,
        )
        for (key, representative), entry_result in zip(unique, miss_results):
            results[representative] = entry_result
            entry = self.cache.peek(key)
            for index in misses[key][1:]:
                # Isomorphic duplicate within the batch: computed once above
                # and served from the cache.  Its initial lookup counted a
                # miss (the entry did not exist yet); reclassify it as the
                # hit it ultimately was, so the operator-facing hit rate
                # agrees with the ``cached`` flags on the results.
                self.cache.reclassify_miss_as_hit()
                if entry is not None:
                    results[index] = self.serve_entry(entry, canonicals[index], key)
                else:
                    # capacity=0 (or the entry was already evicted): relabel
                    # the representative's fresh result directly.
                    results[index] = serve_from_result(
                        entry_result, canonicals[representative], canonicals[index], key
                    )
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # ----------------------------------------------------------------- helpers

    def run_misses(
        self,
        items: Sequence[tuple[Query, CanonicalForm, str]],
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> list[ServiceResult]:
        """Optimize queries already known to be absent from the cache.

        Each item is ``(query, canonical form, fingerprint)`` — the caller
        has done the lookup (and, for the gateway, the in-flight
        registration).  Partition tasks from all items interleave on the
        executor when it supports batching; every completed run is cached
        under its fingerprint before its result is returned.
        """
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        gathered = self._run_many(
            [(query, workers, settings) for query, __, __ in items]
        )
        return [
            self._complete_run(query, canonical, key, settings, workers, partition_results)
            for (query, canonical, key), partition_results in zip(items, gathered)
        ]

    def _run_many(
        self, tasks: Sequence[tuple[Query, int, OptimizerSettings]]
    ) -> list[list[PartitionResult]]:
        """Run several queries' partition tasks, interleaved when possible."""
        partition_counts = [
            usable_partitions(query.n_tables, workers, settings.plan_space)
            for query, workers, settings in tasks
        ]
        submit = getattr(self.executor, "submit_partitions", None)
        if submit is None:
            return [
                self.executor.map_partitions(query, n_partitions, settings)
                for (query, __, settings), n_partitions in zip(tasks, partition_counts)
            ]
        futures = [
            submit(query, n_partitions, settings)
            for (query, __, settings), n_partitions in zip(tasks, partition_counts)
        ]
        try:
            return [
                [future.result() for future in query_futures]
                for query_futures in futures
            ]
        except BrokenProcessPool:
            # A worker died mid-batch; every in-flight future on the broken
            # pool is lost.  Fall back to query-by-query map_partitions,
            # which carries the executor's own rebuild-on-break recovery.
            close = getattr(self.executor, "close", None)
            if close is not None:
                close()
            return [
                self.executor.map_partitions(query, n_partitions, settings)
                for (query, __, settings), n_partitions in zip(tasks, partition_counts)
            ]

    def _complete_run(
        self,
        query: Query,
        canonical: CanonicalForm,
        key: str,
        settings: OptimizerSettings,
        workers: int,
        partition_results: list[PartitionResult],
    ) -> ServiceResult:
        """Final-prune a miss's partition results, cache them, build the answer."""
        pruning = make_pruning(settings, n_tables=query.n_tables)
        plans = final_prune(pruning, (result.plans for result in partition_results))
        master = MasterResult(
            plans=plans,
            n_partitions=len(partition_results),
            requested_workers=workers,
            partition_results=partition_results,
        )
        simulated = simulate_mpq_run(self.cluster, query, master)
        provenance = Provenance(
            backend_used=master.backend_used,
            settings_signature=settings_signature(settings),
            registry_generation=registry_generation(),
            created_at_s=time.time(),
            n_partitions=master.n_partitions,
            worker_stats=aggregate_worker_stats(
                [result.stats for result in partition_results]
            ),
        )
        self.cache.put(
            key,
            CacheEntry(
                canonical_plans=[
                    remap_plan(plan, canonical.numbering) for plan in plans
                ],
                n_partitions=master.n_partitions,
                simulated=simulated,
                backend_used=master.backend_used,
                provenance=provenance,
            ),
        )
        return ServiceResult(
            plans=plans,
            n_partitions=master.n_partitions,
            fingerprint=key,
            cached=False,
            simulated_time_ms=simulated.total_ms,
            network_bytes=simulated.network_bytes,
            backend_used=master.backend_used,
        )

    def serve_entry(
        self, entry: CacheEntry, canonical: CanonicalForm, key: str
    ) -> ServiceResult:
        """Remap a cached entry's canonical plans into the requester's numbering."""
        mapping = invert(canonical.numbering)
        return ServiceResult(
            plans=[remap_plan(plan, mapping) for plan in entry.canonical_plans],
            n_partitions=entry.n_partitions,
            fingerprint=key,
            cached=True,
            simulated_time_ms=entry.simulated.total_ms,
            network_bytes=entry.simulated.network_bytes,
            backend_used=entry.backend_used,
        )

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release executor resources and any cache-tier file handles."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()
        cache_close = getattr(self.cache, "close", None)
        if cache_close is not None:
            cache_close()

    def __enter__(self) -> "OptimizerService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
