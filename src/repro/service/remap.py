"""Renumbering plan trees between isomorphic queries.

The plan cache stores plans in *canonical* table numbering (see
:mod:`repro.service.fingerprint`).  Serving a cache hit to a request whose
query uses a different (but isomorphic) numbering is then a pure relabeling:
rewrite every table number, bitmask, and sort-order reference through the
permutation.  Costs, cardinalities, and operator choices are invariant under
relabeling, so they are copied verbatim — this is what makes a cache hit
O(plan size) instead of O(DP).
"""

from __future__ import annotations

import dataclasses

from repro.plans.orders import SortOrder
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.util.bitset import bits


def remap_mask(mask: int, mapping: tuple[int, ...]) -> int:
    """Translate a table-set bitmask through ``mapping[old] = new``."""
    remapped = 0
    for table in bits(mask):
        remapped |= 1 << mapping[table]
    return remapped


def _remap_order(order: SortOrder | None, mapping: tuple[int, ...]) -> SortOrder | None:
    if order is None:
        return None
    return SortOrder(table=mapping[order.table], column=order.column)


def remap_plan(plan: Plan, mapping: tuple[int, ...]) -> Plan:
    """Rebuild ``plan`` with every table number translated through ``mapping``.

    ``mapping`` must be a permutation of ``range(n_tables)`` arising from a
    query isomorphism; under that assumption the remapped plan is exactly the
    plan the DP would have produced for the relabeled query.
    """
    if isinstance(plan, ScanPlan):
        return dataclasses.replace(
            plan,
            mask=remap_mask(plan.mask, mapping),
            order=_remap_order(plan.order, mapping),
            table=mapping[plan.table],
        )
    assert isinstance(plan, JoinPlan)
    return dataclasses.replace(
        plan,
        mask=remap_mask(plan.mask, mapping),
        order=_remap_order(plan.order, mapping),
        left=remap_plan(plan.left, mapping),
        right=remap_plan(plan.right, mapping),
    )


def invert(numbering: tuple[int, ...]) -> tuple[int, ...]:
    """Invert a permutation: ``invert(p)[p[i]] == i``."""
    inverse = [0] * len(numbering)
    for source, target in enumerate(numbering):
        inverse[target] = source
    return tuple(inverse)
