"""The shard-fleet supervisor: processes, restarts, live rebalancing.

:mod:`repro.service.server` is one shard process and
:mod:`repro.service.net` is the client-side router over many of them; this
module is the missing operational layer between the two — the thing that
actually *runs* a fleet:

* **supervision** — :class:`ShardFleet` spawns N ``python -m repro
  shard-server`` processes (one unix socket each, optional per-shard disk
  cache logs), health-watches them, and restarts a crashed shard with
  exponential backoff (``backoff_base_s * 2^consecutive-crashes``, capped).
  A restarted shard re-binds the same endpoint, so connected routers need
  no topology change: their circuit breaker opens on the crash, then
  re-admits the shard through its half-open probe once the replacement
  answers.  With ``cache_dir`` set, the replacement recovers its warm plan
  cache from its own disk log before serving;
* **membership republication** — routers registered via
  :meth:`ShardFleet.attach_router` receive every topology change
  (:meth:`~repro.service.net.NetworkOptimizerGateway.add_shard` /
  ``remove_shard``) the moment it commits, and ``membership_path`` (the CLI
  sets it) mirrors the current endpoint map to a JSON file after every
  change so out-of-process routers can follow along;
* **live ring rebalancing with snapshot shipping** — :meth:`add_shard` and
  :meth:`remove_shard` move the affected keys' *cache entries* before they
  move the keys.  The fleet asks each source shard for its live keys
  (``snapshot``/``keys``), computes which ones the post-change ring would
  re-own, exports exactly those entries (``snapshot``/``export`` — the
  same ``put`` records :meth:`~repro.service.tiers.DiskTier.export_snapshot`
  writes), imports them into the new owner (``snapshot``/``import``,
  durable under write-through before the ack), and only *then* republishes
  the ring to every attached router.  A moved key's first request on its
  new owner is therefore a cache hit — zero extra DP runs — and until the
  flip, traffic kept hitting the old owner, whose entries were still in
  place.  After the flip the old owner's moved entries are swept
  best-effort (``snapshot``/``evict``).  Any failure before the flip
  aborts the whole rebalance with :class:`FleetRebalanceError` and rolls
  back: no router learned anything, no source entry was evicted, and (for
  :meth:`add_shard`) the half-provisioned shard process is torn down.

The shipment runs in two passes: keys warmed on a source *during* the
first pass are picked up by the second, shrinking the cold-key window of a
rebalance racing live traffic to the gap between the final pass and the
ring flip.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

from repro.cluster.network import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.cluster.serialization import snapshot_from_wire, snapshot_to_wire
from repro.service.net import (
    PROTOCOL_FORMAT,
    PROTOCOL_VERSION,
    Address,
    ConsistentHashRing,
    NetworkOptimizerGateway,
)

#: Identity of the membership file written at ``membership_path``.
MEMBERSHIP_FORMAT = "repro-fleet"
MEMBERSHIP_VERSION = 1


class FleetError(RuntimeError):
    """A fleet-level operation failed (spawn, control call, lifecycle)."""


class FleetRebalanceError(FleetError):
    """A rebalance aborted before the ring flip; routing and caches are
    unchanged (the entries stayed on their old owners)."""


@dataclass
class ShardHandle:
    """One supervised shard process and its restart bookkeeping."""

    name: str
    spec: str
    argv: list[str]
    process: subprocess.Popen | None = None
    log_path: Path | None = None
    log_file: IO[bytes] | None = None
    restarts: int = 0
    consecutive_crashes: int = 0
    next_restart_at: float = 0.0
    last_spawn_at: float = 0.0

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class ShardFleet:
    """Spawn, supervise, and rebalance a fleet of shard-server processes.

    Args:
        n_shards: initial shard count (``shard-0`` … ``shard-<n-1>``), each
            listening on a unix socket under ``socket_dir``.
        socket_dir: directory for the fleet's unix sockets (and, via the
            CLI, its membership file).  Created if missing.
        cache_dir: when set, every shard persists its plan cache to
            ``cache_dir/shard-<i>.log`` — which is also what lets a
            restarted shard come back warm.
        n_workers / max_in_flight / cache_capacity: forwarded to every
            ``shard-server`` process.
        health_interval_s: supervisor poll cadence (process liveness and
            restart scheduling).
        backoff_base_s / backoff_cap_s: restart backoff — the k-th
            consecutive crash waits ``min(cap, base * 2^(k-1))`` before the
            replacement spawns.
        stable_reset_s: a shard alive this long has its crash streak
            forgiven (the next crash starts the backoff ladder over).
        ring_replicas: virtual nodes per shard for the fleet's *own* ring
            computation; must match the routers' ``ring_replicas`` or the
            fleet would ship entries to shards the routers never ask.
        spawn_timeout_s: how long a freshly spawned shard gets to answer
            its first health probe.
        log_dir: when set, each shard's stdout/stderr is appended to
            ``log_dir/<name>.log`` (CI uploads these on failure); default
            inherits the supervisor's own stderr.
        membership_path: when set, the current endpoint map is rewritten
            here (atomically) after every topology change.
        inject_latency_ms: per-shard fault injection (name → milliseconds),
            forwarded as ``--inject-latency-ms`` — benchmarks use it to
            build the deliberately slow shard the hedging gate needs.
    """

    def __init__(
        self,
        n_shards: int,
        socket_dir: str | os.PathLike,
        cache_dir: str | os.PathLike | None = None,
        n_workers: int = 4,
        max_in_flight: int = 16,
        cache_capacity: int = 256,
        health_interval_s: float = 0.2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        stable_reset_s: float = 5.0,
        ring_replicas: int = 64,
        spawn_timeout_s: float = 20.0,
        log_dir: str | os.PathLike | None = None,
        membership_path: str | os.PathLike | None = None,
        inject_latency_ms: dict[str, float] | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.socket_dir = Path(socket_dir)
        self.socket_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.n_workers = n_workers
        self.max_in_flight = max_in_flight
        self.cache_capacity = cache_capacity
        self.health_interval_s = health_interval_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.stable_reset_s = stable_reset_s
        self.ring_replicas = ring_replicas
        self.spawn_timeout_s = spawn_timeout_s
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self.membership_path = (
            Path(membership_path) if membership_path is not None else None
        )
        self.inject_latency_ms = dict(inject_latency_ms or {})
        self.max_frame_bytes = max_frame_bytes
        self._n_initial = n_shards
        self._next_index = n_shards
        self._handles: dict[str, ShardHandle] = {}
        self._routers: list[NetworkOptimizerGateway] = []
        self._lock = threading.RLock()
        #: Serializes topology changes; a rebalance is one critical section.
        self._rebalance_lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False
        self._restarts = 0
        self._snapshot_shipped = 0
        self._rebalances = 0

    # ----------------------------------------------------------------- spawning

    def _spec_for(self, name: str) -> str:
        return f"unix:{self.socket_dir / (name + '.sock')}"

    def _argv_for(self, name: str, shard_index: int) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "shard-server",
            "--listen",
            self._spec_for(name),
            "--shard-id",
            str(shard_index),
            "--workers",
            str(self.n_workers),
            "--max-in-flight",
            str(self.max_in_flight),
            "--cache-size",
            str(self.cache_capacity),
        ]
        if self.cache_dir is not None:
            argv += ["--cache-dir", str(self.cache_dir)]
        latency_ms = self.inject_latency_ms.get(name, 0.0)
        if latency_ms > 0:
            argv += ["--inject-latency-ms", str(latency_ms)]
        return argv

    def _child_env(self) -> dict[str, str]:
        """Ensure the child can import :mod:`repro` wherever we were run from."""
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{package_root}{os.pathsep}{existing}" if existing else package_root
            )
        return env

    def _spawn_process(self, handle: ShardHandle) -> None:
        if self.log_dir is not None and handle.log_file is None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
            handle.log_path = self.log_dir / f"{handle.name}.log"
            handle.log_file = open(handle.log_path, "ab")
        sink = handle.log_file if handle.log_file is not None else None
        handle.process = subprocess.Popen(
            handle.argv,
            stdout=sink,
            stderr=subprocess.STDOUT if sink is not None else None,
            env=self._child_env(),
        )
        handle.last_spawn_at = time.monotonic()

    def _wait_ready(self, handle: ShardHandle, timeout_s: float) -> None:
        """Block until the shard answers a health probe (or fail loudly)."""
        deadline = time.monotonic() + timeout_s
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            if handle.process is not None and handle.process.poll() is not None:
                raise FleetError(
                    f"shard {handle.name!r} exited with "
                    f"{handle.process.returncode} before becoming ready"
                    + (f" (log: {handle.log_path})" if handle.log_path else "")
                )
            try:
                response = self._shard_call(
                    handle.spec, {"op": "health"}, timeout_s=1.0
                )
            except (OSError, FrameError, FleetError) as error:
                last_error = error
                time.sleep(0.02)
                continue
            if response.get("status") in ("serving", "draining"):
                return
        raise FleetError(
            f"shard {handle.name!r} did not become ready within {timeout_s}s "
            f"(last error: {last_error})"
        )

    def start(self) -> None:
        """Spawn every shard, wait for readiness, start the supervisor."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self._n_initial):
                name = f"shard-{index}"
                handle = ShardHandle(
                    name=name,
                    spec=self._spec_for(name),
                    argv=self._argv_for(name, index),
                )
                self._handles[name] = handle
        for handle in list(self._handles.values()):
            self._spawn_process(handle)
        for handle in list(self._handles.values()):
            self._wait_ready(handle, self.spawn_timeout_s)
        self._write_membership()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()

    # -------------------------------------------------------------- supervision

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.health_interval_s):
            try:
                self._check_once()
            except Exception:  # pragma: no cover - supervisor must never die
                pass

    def _check_once(self) -> None:
        now = time.monotonic()
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            if handle.alive():
                if (
                    handle.consecutive_crashes
                    and now - handle.last_spawn_at >= self.stable_reset_s
                ):
                    handle.consecutive_crashes = 0
                continue
            if handle.process is None:
                continue  # being provisioned by add_shard
            if handle.next_restart_at == 0.0:
                # Just observed the crash: schedule the replacement.
                handle.consecutive_crashes += 1
                delay = min(
                    self.backoff_cap_s,
                    self.backoff_base_s * (2 ** (handle.consecutive_crashes - 1)),
                )
                handle.next_restart_at = now + delay
                continue
            if now < handle.next_restart_at:
                continue
            handle.next_restart_at = 0.0
            with self._lock:
                if self._stop.is_set() or handle.name not in self._handles:
                    continue
                handle.restarts += 1
                self._restarts += 1
            self._spawn_process(handle)
            try:
                self._wait_ready(handle, self.spawn_timeout_s)
            except FleetError:
                # The replacement died too; the next poll schedules another
                # attempt one backoff step higher.
                pass

    # ------------------------------------------------------------ control plane

    def _shard_call(
        self, spec: str, payload: dict[str, Any], timeout_s: float = 30.0
    ) -> dict[str, Any]:
        """One fresh-connection request/response against a shard endpoint."""
        address = Address.parse(spec)
        sock = address.connect(timeout_s)
        try:
            sock.settimeout(timeout_s)
            hello = recv_frame(sock, self.max_frame_bytes)
            if (
                hello is None
                or hello.get("format") != PROTOCOL_FORMAT
                or hello.get("version") != PROTOCOL_VERSION
            ):
                raise FrameError(
                    f"endpoint {spec} did not speak "
                    f"{PROTOCOL_FORMAT} v{PROTOCOL_VERSION} (hello: {hello!r})"
                )
            send_frame(sock, payload, self.max_frame_bytes)
            response = recv_frame(sock, self.max_frame_bytes)
        finally:
            sock.close()
        if response is None:
            raise FrameError(f"endpoint {spec} closed the connection mid-request")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise FleetError(
                f"shard at {spec} refused {payload.get('op')!r}/"
                f"{payload.get('mode')!r}: {error.get('type')}: "
                f"{error.get('message')}"
            )
        return response

    # ---------------------------------------------------------------- membership

    def endpoints(self) -> dict[str, str]:
        """Current shard name → endpoint spec map."""
        with self._lock:
            return {name: handle.spec for name, handle in self._handles.items()}

    def attach_router(self, router: NetworkOptimizerGateway) -> None:
        """Register a router for membership republication.

        The router must already know the fleet's current endpoints (build
        it from :meth:`endpoints`); from here on every committed topology
        change is pushed to it.
        """
        with self._lock:
            self._routers.append(router)

    def _publish_add(self, name: str, spec: str) -> None:
        with self._lock:
            routers = list(self._routers)
        for router in routers:
            try:
                router.add_shard(name, spec)
            except ValueError:
                pass  # already knew this shard
        self._write_membership()

    def _publish_remove(self, name: str) -> None:
        with self._lock:
            routers = list(self._routers)
        for router in routers:
            router.remove_shard(name)
        self._write_membership()

    def _write_membership(self) -> None:
        if self.membership_path is None:
            return
        payload = {
            "format": MEMBERSHIP_FORMAT,
            "version": MEMBERSHIP_VERSION,
            "shards": self.endpoints(),
        }
        temporary = self.membership_path.with_suffix(".tmp")
        temporary.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        os.replace(temporary, self.membership_path)

    # --------------------------------------------------------------- rebalancing

    def _ring_of(self, names: list[str]) -> ConsistentHashRing:
        ring = ConsistentHashRing(replicas=self.ring_replicas)
        for name in names:
            ring.add(name)
        return ring

    def _ship_into(
        self, new_name: str, new_spec: str, sources: dict[str, str]
    ) -> dict[str, list[str]]:
        """Ship every key the post-add ring re-owns to ``new_name``.

        Two passes close most of the window in which live traffic warms a
        source key after its listing.  Returns the moved keys per source
        (for the post-flip sweep).  Raises on any failure — the caller
        rolls back.
        """
        ring = self._ring_of([*sources, new_name])
        moved_by_source: dict[str, list[str]] = {}
        shipped: set[str] = set()
        for __ in range(2):
            for source, spec in sources.items():
                keys = self._shard_call(spec, {"op": "snapshot", "mode": "keys"})[
                    "keys"
                ]
                moved = [
                    key
                    for key in keys
                    if key not in shipped and ring.route(key) == new_name
                ]
                if not moved:
                    continue
                snapshot = self._shard_call(
                    spec, {"op": "snapshot", "mode": "export", "keys": moved}
                )["snapshot"]
                records = snapshot_from_wire(snapshot)
                if not records:
                    continue
                imported = self._shard_call(
                    new_spec,
                    {
                        "op": "snapshot",
                        "mode": "import",
                        "snapshot": snapshot_to_wire(records),
                    },
                )["imported"]
                with self._lock:
                    self._snapshot_shipped += int(imported)
                exported = [record["k"] for record in records]
                shipped.update(exported)
                moved_by_source.setdefault(source, []).extend(exported)
        return moved_by_source

    def _sweep(self, moved_by_source: dict[str, list[str]]) -> None:
        """Best-effort post-flip eviction of moved keys from old owners."""
        endpoints = self.endpoints()
        for source, keys in moved_by_source.items():
            spec = endpoints.get(source)
            if spec is None or not keys:
                continue
            try:
                self._shard_call(
                    spec, {"op": "snapshot", "mode": "evict", "keys": keys}
                )
            except (OSError, FrameError, FleetError):
                pass  # duplicates on a non-owner are harmless cache residents

    def add_shard(self, name: str | None = None) -> str:
        """Provision a shard, ship its keys' warm entries, then flip the ring.

        Ordering is the whole point: export → import → republish → sweep.
        Until the republish, routers keep sending moved keys to their old
        owners (whose entries are untouched); after it, the new owner
        already holds every shipped entry — so a rebalanced key pays zero
        extra DP runs.  Any failure before the republish tears the new
        process down and raises :class:`FleetRebalanceError`; nothing
        changed for routers or caches.
        """
        with self._rebalance_lock:
            with self._lock:
                if not self._started:
                    raise FleetError("fleet is not started")
                if name is None:
                    name = f"shard-{self._next_index}"
                if name in self._handles:
                    raise ValueError(f"shard {name!r} already exists")
                shard_index = self._next_index
                self._next_index += 1
                sources = {
                    handle.name: handle.spec for handle in self._handles.values()
                }
            handle = ShardHandle(
                name=name,
                spec=self._spec_for(name),
                argv=self._argv_for(name, shard_index),
            )
            try:
                self._spawn_process(handle)
                self._wait_ready(handle, self.spawn_timeout_s)
                moved_by_source = self._ship_into(name, handle.spec, sources)
            except (OSError, FrameError, FleetError, ValueError) as error:
                self._terminate(handle, drain=False)
                raise FleetRebalanceError(
                    f"provisioning shard {name!r} failed before the ring "
                    f"flip; routing and caches are unchanged: {error}"
                ) from error
            with self._lock:
                self._handles[name] = handle
                self._rebalances += 1
            self._publish_add(name, handle.spec)
            self._sweep(moved_by_source)
            return name

    def remove_shard(self, name: str) -> None:
        """Ship a leaving shard's entries to their next owners, then flip.

        The leaving shard serves traffic throughout the shipment; only
        after every target acked its import do routers drop it, so a moved
        key's first request on its new owner hits the shipped entry.  A
        dead shard (crashed, unreachable) is removed without shipping —
        with ``cache_dir`` its entries are in its log, not lost, just not
        migrated.  Failures during shipping raise
        :class:`FleetRebalanceError` and leave routing unchanged.
        """
        with self._rebalance_lock:
            with self._lock:
                handle = self._handles.get(name)
                if handle is None:
                    raise ValueError(f"unknown shard {name!r}")
                if len(self._handles) == 1:
                    raise FleetError("refusing to remove the last shard")
                targets = {
                    other.name: other.spec
                    for other in self._handles.values()
                    if other.name != name
                }
            if handle.alive():
                ring = self._ring_of(list(targets))
                try:
                    keys = self._shard_call(
                        handle.spec, {"op": "snapshot", "mode": "keys"}
                    )["keys"]
                    by_target: dict[str, list[str]] = {}
                    for key in keys:
                        by_target.setdefault(ring.route(key), []).append(key)
                    for target, moved in by_target.items():
                        snapshot = self._shard_call(
                            handle.spec,
                            {"op": "snapshot", "mode": "export", "keys": moved},
                        )["snapshot"]
                        records = snapshot_from_wire(snapshot)
                        if not records:
                            continue
                        imported = self._shard_call(
                            targets[target],
                            {
                                "op": "snapshot",
                                "mode": "import",
                                "snapshot": snapshot_to_wire(records),
                            },
                        )["imported"]
                        with self._lock:
                            self._snapshot_shipped += int(imported)
                except (OSError, FrameError, FleetError) as error:
                    raise FleetRebalanceError(
                        f"shipping shard {name!r}'s entries failed before the "
                        f"ring flip; it stays in the ring: {error}"
                    ) from error
            with self._lock:
                self._handles.pop(name, None)
                self._rebalances += 1
            self._publish_remove(name)
            self._terminate(handle, drain=True)

    # ---------------------------------------------------------------- lifecycle

    def _terminate(self, handle: ShardHandle, drain: bool) -> None:
        process = handle.process
        if process is not None and process.poll() is None:
            if drain:
                try:
                    self._shard_call(
                        handle.spec,
                        {"op": "drain", "timeout_s": 10.0},
                        timeout_s=15.0,
                    )
                except (OSError, FrameError, FleetError):
                    pass
            try:
                process.terminate()
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                process.kill()
                process.wait(timeout=10.0)
        if handle.log_file is not None:
            try:
                handle.log_file.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            handle.log_file = None
        address = Address.parse(handle.spec)
        if address.kind == "unix":
            Path(address.path).unlink(missing_ok=True)

    def stop(self) -> None:
        """Stop supervising and tear every shard down (drain best-effort)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            self._terminate(handle, drain=True)
        self._write_membership()

    def __enter__(self) -> "ShardFleet":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -------------------------------------------------------------------- stats

    def stats(self) -> dict[str, Any]:
        """Supervisor counters plus per-shard liveness/restart state."""
        with self._lock:
            return {
                "restarts": self._restarts,
                "snapshot_shipped": self._snapshot_shipped,
                "rebalances": self._rebalances,
                "shards": {
                    name: {
                        "listen": handle.spec,
                        "alive": handle.alive(),
                        "restarts": handle.restarts,
                        "pid": (
                            handle.process.pid
                            if handle.process is not None
                            else None
                        ),
                    }
                    for name, handle in self._handles.items()
                },
            }


def run_shard_fleet(
    n_shards: int,
    socket_dir: str | os.PathLike,
    **kwargs: Any,
) -> None:
    """Blocking entry point used by ``python -m repro shard-fleet``.

    Runs the supervisor until SIGTERM/SIGINT, then tears the fleet down.
    Prints the endpoint map as one JSON line once the fleet is ready so a
    wrapper script can connect routers, and the fleet stats as JSON on the
    way out.
    """
    import signal

    fleet = ShardFleet(n_shards=n_shards, socket_dir=socket_dir, **kwargs)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *__: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    fleet.start()
    print(json.dumps({"ready": True, "shards": fleet.endpoints()}), flush=True)
    try:
        stop.wait()
    finally:
        stats = fleet.stats()
        fleet.stop()
        print(json.dumps({"stopped": True, "stats": stats}), flush=True)
