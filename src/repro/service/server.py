"""The shard server process: one optimizer shard behind a socket.

Each :class:`ShardServer` owns a complete optimizer stack — a
:class:`~repro.service.gateway.ShardedOptimizerGateway` (``n_shards=1``,
giving it the in-process singleflight table), a worker pool, and optionally
a per-shard :class:`~repro.service.tiers.DiskTier` cache log — and serves
it over the length-prefixed frame protocol of
:mod:`repro.cluster.network` on a unix socket or TCP port.  The client-side
router (:mod:`repro.service.net`) routes each fingerprint to exactly one
such process, so the shard's singleflight is the *global* singleflight for
the keys it owns: one DP run per unique fingerprint, across any number of
client processes.

Protocol (all frames are strict-JSON objects):

* on connect the server sends a **hello** frame
  ``{"op": "hello", "format": "repro-net", "version": 1, "shard_id": ...}``;
  a client that reads anything else hangs up;
* **optimize** ``{"op": "optimize", "query": ..., "settings": ...,
  "workers": n}`` → ``{"ok": true, "result": ...}`` or ``{"ok": false,
  "error": {"type": ..., "message": ..., "retry_after_s": ...}}``.  Error
  types: ``overloaded`` (admission control: in-flight optimizations at
  ``max_in_flight``; ``retry_after_s`` estimates one service time),
  ``draining`` (shutdown in progress), ``bad-request`` (malformed query or
  settings), ``optimization-failed`` (the DP itself raised);
* **health** → ``{"ok": true, "status": "serving"|"draining",
  "in_flight": n, "shard_id": ...}``;
* **snapshot** — cache-state shipping for live rebalancing, four modes:
  ``{"op": "snapshot", "mode": "keys"}`` lists the shard's live cache
  keys; ``mode="export"`` (optional ``"keys": [...]`` subset) returns the
  entries as a self-identifying snapshot payload (the same ``put`` records
  :meth:`~repro.service.tiers.DiskTier.export_snapshot` writes);
  ``mode="import"`` merges a shipped payload through the cache's normal
  write path (durable under write-through before the ack); ``mode="evict"``
  drops a key list (the rebalancer's post-import sweep of the old owner).
  Snapshot work runs on a dedicated control thread, so shipping proceeds
  while every DP handler thread is busy;
* **stats** → ``{"ok": true, "stats": {...}}`` including the internal
  gateway's ``optimizations`` counter — the number of DP runs this process
  actually paid, which the cross-process one-run-per-fingerprint tests sum
  over shards;
* **drain** → finish in-flight optimizations, flush and close the cache
  (the disk tier's log handles), answer ``{"ok": true, "drained": true}``,
  then stop accepting and exit the serve loop.

Blocking DP runs execute on a bounded handler thread pool via
``run_in_executor``; the asyncio loop itself only frames, dispatches, and
enforces admission, so health checks stay responsive while every handler
thread is deep in an enumeration.  A connection that violates the protocol
(torn frame, malformed JSON, oversized frame) gets a best-effort
``protocol`` error frame and is closed; other connections are unaffected.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.cluster.network import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.cluster.serialization import (
    settings_from_wire,
    snapshot_from_wire,
    snapshot_to_wire,
)
from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.query.io import query_from_dict
from repro.service.gateway import ShardedOptimizerGateway
from repro.service.net import PROTOCOL_FORMAT, PROTOCOL_VERSION, Address, result_to_wire


class ShardServer:
    """Serve one optimizer shard over the frame protocol.

    Args:
        listen: endpoint spec — ``unix:/path/to.sock`` or ``host:port``.
        shard_id: this shard's name/number, echoed in the hello frame and
            health responses (purely observational; routing lives in the
            client's ring).
        n_workers: default per-query parallelism of the embedded service.
        settings: default :class:`OptimizerSettings` (requests carry their
            own settings; these fill in when a request omits them).
        cache_capacity: in-memory plan-cache capacity.
        cache_dir: when set, the shard persists its cache to
            ``cache_dir/shard-<shard_id>.log`` through a
            :class:`~repro.service.tiers.TieredPlanCache` — the single-writer
            lock (PR 7) makes two shard processes sharing one log fail fast
            instead of corrupting it.
        max_in_flight: admission bound on concurrently *running*
            optimizations; requests beyond it are rejected ``overloaded``
            with a ``retry_after_s`` estimating one service time.
        handler_threads: blocking-DP thread pool size (defaults to
            ``max_in_flight``).
        max_frame_bytes: protocol frame-size bound.
        inject_latency_s: fault injection for tests and benchmarks — every
            optimize handler sleeps this long before running, simulating a
            degraded shard (the hedging gate's "deliberately slow shard").
            0 (default) injects nothing.
    """

    def __init__(
        self,
        listen: str,
        shard_id: int = 0,
        n_workers: int = 8,
        settings: OptimizerSettings = DEFAULT_SETTINGS,
        cache_capacity: int = 256,
        cache_dir: str | Path | None = None,
        max_in_flight: int = 8,
        handler_threads: int | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        inject_latency_s: float = 0.0,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if inject_latency_s < 0:
            raise ValueError(f"inject_latency_s must be >= 0, got {inject_latency_s}")
        self.address = Address.parse(listen)
        self.shard_id = shard_id
        self.max_in_flight = max_in_flight
        self.max_frame_bytes = max_frame_bytes
        self.inject_latency_s = inject_latency_s
        self._handler_pool = ThreadPoolExecutor(
            max_workers=handler_threads if handler_threads is not None else max_in_flight,
            thread_name_prefix=f"shard-{shard_id}",
        )
        # Snapshot shipping must not queue behind saturated DP handlers —
        # a rebalance races live traffic by design — so control-plane work
        # gets its own (single) thread.  Cache tiers are internally locked;
        # concurrent access from both pools is safe.
        self._control_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"shard-{shard_id}-ctl"
        )
        cache_factory = None
        if cache_dir is not None:
            from repro.service.tiers import DiskTier, TieredPlanCache

            log_path = Path(cache_dir) / f"shard-{shard_id}.log"

            def cache_factory(index: int) -> "TieredPlanCache":
                return TieredPlanCache(
                    memory_capacity=cache_capacity, disk=DiskTier(log_path)
                )

        self.gateway = ShardedOptimizerGateway(
            n_shards=1,
            n_workers=n_workers,
            settings=settings,
            cache_capacity=cache_capacity,
            cache_factory=cache_factory,
            gateway_threads=max_in_flight,
        )
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._service_time_ewma_s = 0.05
        self._connections: set[asyncio.StreamWriter] = set()
        self._served = 0
        self._rejected_overload = 0
        self._rejected_draining = 0
        self._protocol_errors = 0
        self._snapshot_exported = 0
        self._snapshot_imported = 0

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the listening socket and begin accepting connections."""
        if self.address.kind == "unix":
            Path(self.address.path).unlink(missing_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.address.path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.address.host, port=self.address.port
            )

    async def serve_forever(self) -> None:
        """Serve until :meth:`drain` (or :meth:`stop`) completes."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._stopped.wait()

    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: reject new work, finish in-flight, flush, stop.

        Returns ``True`` when every in-flight optimization finished within
        ``timeout_s`` (the cache is then flushed and closed); ``False`` on
        timeout — the server still stops, but stragglers are abandoned.
        """
        drained = await self._quiesce(timeout_s)
        await self.stop()
        return drained

    async def _quiesce(self, timeout_s: float) -> bool:
        """Reject new work, wait out in-flight runs, flush and close the cache.

        Separate from :meth:`stop` so a drain *request* can be answered on
        its own connection after the flush but before the listener and that
        connection are torn down.
        """
        self._draining = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout_s)
        except asyncio.TimeoutError:
            return False
        # Flush: the gateway close drains its handler pool and closes every
        # shard service, which closes the tiered cache and with it the disk
        # tier's log handles (and releases the writer lock).
        await asyncio.get_running_loop().run_in_executor(None, self.gateway.close)
        return True

    async def stop(self) -> None:
        """Stop accepting and wake :meth:`serve_forever`.  Idempotent."""
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        # Closing live client connections here lets their handler tasks end
        # on a clean EOF instead of being cancelled at loop teardown.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        self._handler_pool.shutdown(wait=False)
        self._control_pool.shutdown(wait=False)
        if self.address.kind == "unix":
            Path(self.address.path).unlink(missing_ok=True)
        self._stopped.set()

    # --------------------------------------------------------------- connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            await self._send(
                writer,
                {
                    "op": "hello",
                    "format": PROTOCOL_FORMAT,
                    "version": PROTOCOL_VERSION,
                    "shard_id": self.shard_id,
                },
            )
            while True:
                try:
                    payload = await read_frame(reader, self.max_frame_bytes)
                except FrameError as error:
                    # A torn/oversized/malformed frame desynchronizes the
                    # byte stream: answer (best-effort) and drop only this
                    # connection; the listener and every other connection
                    # keep serving.
                    self._protocol_errors += 1
                    with contextlib.suppress(Exception):
                        await self._send(
                            writer,
                            self._error("protocol", str(error)),
                        )
                    return
                if payload is None:
                    return  # clean close between frames
                response = await self._dispatch(payload)
                if isinstance(response, bytes):  # pre-encoded off-loop
                    writer.write(response)
                    await writer.drain()
                else:
                    await self._send(writer, response)
                if payload.get("op") == "drain":
                    # The drain response was this connection's last frame;
                    # now that the client has its answer, stop the listener
                    # and every other connection.
                    await self.stop()
                    return
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            self._connections.discard(writer)
            # Close without awaiting wait_closed(): awaiting inside this
            # finally re-raises CancelledError at loop teardown, turning a
            # clean shutdown into logged stream-callback exceptions.
            with contextlib.suppress(Exception):
                writer.close()

    async def _send(self, writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        writer.write(encode_frame(payload, self.max_frame_bytes))
        await writer.drain()

    # ----------------------------------------------------------------- dispatch

    async def _dispatch(self, payload: dict[str, Any]) -> dict[str, Any] | bytes:
        op = payload.get("op")
        if op == "optimize":
            return await self._handle_optimize(payload)
        if op == "health":
            return {
                "ok": True,
                "status": "draining" if self._draining else "serving",
                "in_flight": self._in_flight,
                "shard_id": self.shard_id,
            }
        if op == "stats":
            return {"ok": True, "stats": self._stats()}
        if op == "snapshot":
            return await self._handle_snapshot(payload)
        if op == "drain":
            drained = await self._quiesce(float(payload.get("timeout_s", 30.0)))
            return {"ok": True, "drained": drained}
        return self._error("bad-request", f"unknown op {op!r}")

    async def _handle_snapshot(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Serve one cache-shipping request on the control thread.

        ``export``/``keys``/``evict`` stay available while draining (a
        shard being decommissioned must still give its entries away);
        ``import`` is refused — a draining shard's cache is on its way out,
        and acking a shipment it will not serve would let the rebalancer
        count entries as moved that are actually lost.
        """
        mode = payload.get("mode")
        loop = asyncio.get_running_loop()
        try:
            if mode == "keys":
                keys = await loop.run_in_executor(
                    self._control_pool, self._snapshot_keys
                )
                return {"ok": True, "keys": keys, "shard_id": self.shard_id}
            if mode == "export":
                wanted = payload.get("keys")
                if wanted is not None and not isinstance(wanted, list):
                    return self._error("bad-request", "snapshot keys must be a list")
                records = await loop.run_in_executor(
                    self._control_pool, self._snapshot_export, wanted
                )
                self._snapshot_exported += len(records)
                return {
                    "ok": True,
                    "snapshot": snapshot_to_wire(records),
                    "shard_id": self.shard_id,
                }
            if mode == "import":
                if self._draining:
                    return self._error(
                        "draining",
                        "shard is draining; ship elsewhere",
                        retry_after_s=1.0,
                    )
                records = snapshot_from_wire(payload.get("snapshot"))
                imported = await loop.run_in_executor(
                    self._control_pool, self._snapshot_import, records
                )
                self._snapshot_imported += imported
                return {"ok": True, "imported": imported, "shard_id": self.shard_id}
            if mode == "evict":
                wanted = payload.get("keys")
                if not isinstance(wanted, list):
                    return self._error("bad-request", "snapshot keys must be a list")
                evicted = await loop.run_in_executor(
                    self._control_pool, self._snapshot_evict, wanted
                )
                return {"ok": True, "evicted": evicted, "shard_id": self.shard_id}
        except ValueError as error:
            return self._error("bad-request", f"malformed snapshot request: {error}")
        except Exception as error:  # noqa: BLE001 - surfaced as a typed frame
            return self._error(
                "snapshot-failed", f"{type(error).__name__}: {error}"
            )
        return self._error("bad-request", f"unknown snapshot mode {mode!r}")

    def _cache(self) -> Any:
        """This shard's cache tier (the embedded gateway runs one shard)."""
        return self.gateway.shards[0].cache

    def _snapshot_keys(self) -> list[str]:
        return sorted(self._cache().keys())

    def _snapshot_export(self, keys: list[str] | None) -> list[dict[str, Any]]:
        cache = self._cache()
        if hasattr(cache, "export_records"):
            return cache.export_records(keys)
        # Memory-only tiers: encode resident entries on the fly with the
        # same record schema the disk tier logs.
        from repro.service.tiers import entry_to_wire

        wanted = sorted(cache.keys()) if keys is None else list(keys)
        records = []
        for key in wanted:
            entry = cache.peek(key)
            if entry is not None:
                records.append({"t": "put", "k": key, "entry": entry_to_wire(entry)})
        return records

    def _snapshot_import(self, records: list[dict[str, Any]]) -> int:
        cache = self._cache()
        if hasattr(cache, "import_records"):
            return cache.import_records(records)
        from repro.service.tiers import entry_from_wire

        imported = 0
        for record in records:
            if record.get("t") != "put":
                continue
            cache.put(record["k"], entry_from_wire(record["entry"]))
            imported += 1
        return imported

    def _snapshot_evict(self, keys: list[str]) -> int:
        cache = self._cache()
        return sum(1 for key in keys if cache.evict(str(key)))

    async def _handle_optimize(self, payload: dict[str, Any]) -> dict[str, Any] | bytes:
        if self._draining:
            self._rejected_draining += 1
            return self._error(
                "draining", "shard is draining; route elsewhere", retry_after_s=1.0
            )
        if self._in_flight >= self.max_in_flight:
            self._rejected_overload += 1
            return self._error(
                "overloaded",
                f"{self._in_flight} optimizations in flight "
                f"(limit {self.max_in_flight})",
                retry_after_s=max(0.005, self._service_time_ewma_s),
            )
        self._in_flight += 1
        self._idle.clear()
        started = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._handler_pool, self._optimize_frame, payload
            )
        except Exception as error:  # noqa: BLE001 - surfaced as a typed frame
            return self._error("optimization-failed", f"{type(error).__name__}: {error}")
        finally:
            elapsed = time.monotonic() - started
            self._service_time_ewma_s = (
                0.8 * self._service_time_ewma_s + 0.2 * elapsed
            )
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    def _optimize_frame(self, payload: dict[str, Any]) -> bytes:
        """Parse, optimize, and encode the response on a handler thread.

        Keeping the codec work off the event loop matters under load: the
        loop thread then only shuttles opaque bytes, so a pending frame
        read or write never waits behind another request's JSON encoding
        for the GIL while DP threads are busy.
        """
        if self.inject_latency_s > 0:
            # Fault injection: a degraded shard answers correctly, slowly.
            time.sleep(self.inject_latency_s)
        try:
            query = query_from_dict(payload["query"])
            settings = (
                settings_from_wire(payload["settings"])
                if payload.get("settings") is not None
                else None
            )
            workers = (
                int(payload["workers"]) if payload.get("workers") is not None else None
            )
        except (KeyError, TypeError, ValueError) as error:
            return encode_frame(
                self._error("bad-request", f"malformed optimize request: {error}"),
                self.max_frame_bytes,
            )
        try:
            result = self.gateway.optimize(query, settings, workers)
            response = encode_frame(
                {"ok": True, "result": result_to_wire(result)}, self.max_frame_bytes
            )
        except Exception as error:  # noqa: BLE001 - surfaced as a typed frame
            return encode_frame(
                self._error(
                    "optimization-failed", f"{type(error).__name__}: {error}"
                ),
                self.max_frame_bytes,
            )
        self._served += 1
        return response

    @staticmethod
    def _error(
        error_type: str, message: str, retry_after_s: float | None = None
    ) -> dict[str, Any]:
        error: dict[str, Any] = {"type": error_type, "message": message}
        if retry_after_s is not None:
            error["retry_after_s"] = retry_after_s
        return {"ok": False, "error": error}

    def _stats(self) -> dict[str, Any]:
        gateway = self.gateway.stats()
        return {
            "shard_id": self.shard_id,
            "status": "draining" if self._draining else "serving",
            "served": self._served,
            "rejected_overload": self._rejected_overload,
            "rejected_draining": self._rejected_draining,
            "protocol_errors": self._protocol_errors,
            "snapshot_exported": self._snapshot_exported,
            "snapshot_imported": self._snapshot_imported,
            "in_flight": self._in_flight,
            "requests": gateway.requests,
            "optimizations": gateway.optimizations,
            "coalesced": gateway.coalesced,
            "cache_hits": gateway.hits,
            "cache_misses": gateway.misses,
            "envelope_hits": gateway.envelope_hits,
        }


async def _run_until_signalled(server: ShardServer) -> None:
    """Serve, draining gracefully on SIGTERM/SIGINT."""
    import signal

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(server.drain())
            )
    await server.serve_forever()


def run_shard_server(
    listen: str,
    shard_id: int = 0,
    n_workers: int = 8,
    settings: OptimizerSettings = DEFAULT_SETTINGS,
    cache_capacity: int = 256,
    cache_dir: str | Path | None = None,
    max_in_flight: int = 8,
    handler_threads: int | None = None,
    inject_latency_s: float = 0.0,
) -> None:
    """Blocking entry point used by ``python -m repro shard-server``."""
    # A shard server mixes an IO loop with CPU-bound DP handler threads;
    # at the default 5 ms GIL switch interval every loop wakeup (accept,
    # frame read, response write) can stall behind a DP thread's full
    # quantum.  A shorter interval trades a little enumeration throughput
    # for far lower protocol latency under load.
    sys.setswitchinterval(1e-3)
    server = ShardServer(
        listen=listen,
        shard_id=shard_id,
        n_workers=n_workers,
        settings=settings,
        cache_capacity=cache_capacity,
        cache_dir=cache_dir,
        max_in_flight=max_in_flight,
        handler_threads=handler_threads,
        inject_latency_s=inject_latency_s,
    )
    asyncio.run(_run_until_signalled(server))
