"""Client side of the out-of-process gateway: routing, pooling, breaking.

The sharded gateway (:mod:`repro.service.gateway`) scales to one process's
threads; the ROADMAP's millions-of-users shape needs shard *processes* —
each with its own GIL, worker pool, and persistent cache log — behind a
front door.  :mod:`repro.service.server` is the shard process; this module
is the front door:

* :class:`ConsistentHashRing` — fingerprint routing over live shards with
  virtual nodes, so adding or removing a shard remaps only the keys
  adjacent to its ring positions instead of reshuffling the whole space.
  Routing is deterministic per fingerprint, which is what keeps request
  coalescing *shard-local*: every client racing one fingerprint lands on
  the same shard server, whose in-process singleflight then pays exactly
  one DP run — the system invariant holds across process boundaries;
* :class:`CircuitBreaker` — per-shard failure containment.  ``closed``
  until ``failure_threshold`` consecutive transport failures, then ``open``
  (requests fail fast with :class:`ShardUnavailableError`, no connection
  attempted) for ``reset_timeout_s``, then ``half-open`` (exactly one probe
  allowed through; success closes the breaker, failure reopens it);
* :class:`NetworkOptimizerGateway` — the router.  ``optimize`` fingerprints
  the query, routes it on the ring, and speaks the length-prefixed frame
  protocol (:mod:`repro.cluster.network`) over a per-shard pool of blocking
  sockets (thread-safe: each client thread checks a connection out, so a
  64-thread herd multiplexes over at most 64 sockets).  Server-side
  overload and drain rejections surface as
  :class:`~repro.service.aio.GatewayOverloadedError` carrying the server's
  ``retry_after_s``; transport failures count against the shard's breaker
  and surface as :class:`ShardUnavailableError` with a ``retry_after_s`` of
  the breaker's next probe.  Shards can be added/removed live, health
  checks (manual :meth:`~NetworkOptimizerGateway.check_health` or a
  background prober) drive breaker recovery, and
  :meth:`~NetworkOptimizerGateway.drain` gracefully quiesces every shard
  (stop accepting, finish in-flight, flush cache logs) before shutdown.
  With ``hedge_multiplier > 0`` the router also *hedges*: a primary that
  blows its EWMA-derived latency budget gets a duplicate request fired at
  the key's next ring owner, first usable response wins, and the loser
  finishes its round trip in the background (never interrupted mid-frame).

Plans come back in the *requester's* table numbering — the full query ships
with the request, so the shard optimizes (or cache-remaps) directly into
the numbering it was given and no client-side remap is needed.
"""

from __future__ import annotations

import bisect
import hashlib
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.cluster.network import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.cluster.serialization import (
    float_from_wire,
    float_to_wire,
    plans_from_wire,
    plans_to_wire,
    settings_to_wire,
)
from repro.config import DEFAULT_SETTINGS, OptimizerSettings
from repro.query.io import query_to_dict
from repro.query.query import Query
from repro.service.aio import GatewayOverloadedError
from repro.service.fingerprint import canonicalize, fingerprint_canonical
from repro.service.service import ServiceResult

#: Protocol identity exchanged in the hello frame; peers reject mismatches.
PROTOCOL_FORMAT = "repro-net"
PROTOCOL_VERSION = 1

#: Floor on the overload-retry sleep.  A shard advertising
#: ``retry_after_s=0`` (or a malformed field defaulting low) must not turn
#: the retry loop into a busy-spin that hammers the shard it is waiting on.
OVERLOAD_RETRY_FLOOR_S = 0.005


# ------------------------------------------------------------------ addresses


@dataclass(frozen=True)
class Address:
    """One shard endpoint: a unix-socket path or a TCP host/port."""

    kind: str  # "unix" | "tcp"
    path: str = ""
    host: str = ""
    port: int = 0

    @classmethod
    def parse(cls, spec: str) -> "Address":
        """Parse ``unix:/path/to.sock`` or ``host:port`` (``:port`` = localhost)."""
        if spec.startswith("unix:"):
            path = spec[len("unix:") :]
            if not path:
                raise ValueError(f"empty unix-socket path in {spec!r}")
            return cls(kind="unix", path=path)
        host, separator, port = spec.rpartition(":")
        if not separator or not port.isdigit():
            raise ValueError(
                f"bad address {spec!r}: expected unix:/path or host:port"
            )
        return cls(kind="tcp", host=host or "127.0.0.1", port=int(port))

    def connect(self, timeout_s: float) -> socket.socket:
        """Open a blocking socket to this endpoint."""
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout_s)
            sock.connect(self.path)
            return sock
        sock = socket.create_connection((self.host, self.port), timeout=timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def __str__(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"


# ---------------------------------------------------------------- result codec


def result_to_wire(result: ServiceResult) -> dict[str, Any]:
    """JSON-compatible encoding of a :class:`ServiceResult` (lossless)."""
    return {
        "plans": plans_to_wire(result.plans),
        "n_partitions": result.n_partitions,
        "fingerprint": result.fingerprint,
        "cached": result.cached,
        "simulated_time_ms": float_to_wire(result.simulated_time_ms),
        "network_bytes": result.network_bytes,
        "backend_used": result.backend_used,
        # The θ this answer was bound at (omitted when unbound) — clients
        # can audit that a routed parametric request came back bound.
        **({"theta": result.theta} if result.theta is not None else {}),
    }


def result_from_wire(data: dict[str, Any]) -> ServiceResult:
    """Inverse of :func:`result_to_wire`; raises ``ValueError`` when malformed."""
    try:
        return ServiceResult(
            plans=plans_from_wire(data["plans"]),
            n_partitions=int(data["n_partitions"]),
            fingerprint=str(data["fingerprint"]),
            cached=bool(data["cached"]),
            simulated_time_ms=float_from_wire(data["simulated_time_ms"]),
            network_bytes=int(data["network_bytes"]),
            backend_used=str(data.get("backend_used", "")),
            theta=(
                float(data["theta"]) if data.get("theta") is not None else None
            ),
        )
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed result record: {error!r}") from error


# -------------------------------------------------------------------- errors


class ShardUnavailableError(ConnectionError):
    """The shard owning this fingerprint cannot serve right now.

    Raised when the shard's circuit breaker is open (no connection is even
    attempted) or when a transport failure just occurred.  ``retry_after_s``
    is when the breaker will next let a probe through — a client honoring
    it converges on the shard's actual recovery instead of hammering a dead
    socket.
    """

    def __init__(self, shard: str, reason: str, retry_after_s: float) -> None:
        super().__init__(
            f"shard {shard!r} unavailable ({reason}); retry after "
            f"{retry_after_s:.3f}s"
        )
        self.shard = shard
        self.reason = reason
        self.retry_after_s = retry_after_s


class RemoteOptimizationError(RuntimeError):
    """The shard served the request but the optimization itself failed."""

    def __init__(self, shard: str, error_type: str, message: str) -> None:
        super().__init__(f"shard {shard!r} reported {error_type}: {message}")
        self.shard = shard
        self.error_type = error_type


# --------------------------------------------------------------- hash ring


class ConsistentHashRing:
    """Consistent hashing of fingerprints onto named shards.

    Each shard contributes ``replicas`` virtual nodes at sha256-derived
    positions in the 32-bit key space (the same space the in-process
    gateway's range router uses); a fingerprint routes to the first virtual
    node clockwise from its own 32-bit prefix.  Adding or removing one
    shard therefore remaps only ``~1/n`` of the keys — every other
    fingerprint keeps its shard, and with it its warm cache entries.
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: list[str] = []
        self._shards: set[str] = set()

    @staticmethod
    def _position(label: str) -> int:
        return int.from_bytes(
            hashlib.sha256(label.encode()).digest()[:4], "big"
        )

    def add(self, shard: str) -> None:
        """Add a shard's virtual nodes; idempotent."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        for replica in range(self.replicas):
            point = self._position(f"{shard}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard)

    def remove(self, shard: str) -> None:
        """Remove a shard's virtual nodes; unknown names are a no-op."""
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard
        ]
        self._points = [point for point, __ in keep]
        self._owners = [owner for __, owner in keep]

    def route(self, key: str) -> str:
        """The shard owning fingerprint ``key``; deterministic per ring state."""
        if not self._points:
            raise LookupError("hash ring is empty; no shards registered")
        point = int(key[:8], 16)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def owners(self, key: str, count: int = 2) -> list[str]:
        """Up to ``count`` *distinct* shards clockwise from ``key``.

        ``owners(key, 1)[0] == route(key)``; the second element is the
        shard that would own ``key`` if the primary left the ring — which
        makes it both the hedging target (a duplicate request lands where
        the key would migrate) and the natural receiver for shipped cache
        state on removal.
        """
        if not self._points:
            raise LookupError("hash ring is empty; no shards registered")
        point = int(key[:8], 16)
        start = bisect.bisect(self._points, point)
        result: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in result:
                result.append(owner)
                if len(result) >= count:
                    break
        return result

    def shards(self) -> list[str]:
        """Registered shard names, sorted."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)


# ----------------------------------------------------------- circuit breaker


class CircuitBreaker:
    """Closed / open / half-open failure containment for one shard.

    ``failure_threshold`` *consecutive* failures open the breaker; while
    open, :meth:`allow` refuses instantly.  After ``reset_timeout_s`` the
    next :meth:`allow` admits exactly one half-open probe: its success
    closes the breaker, its failure reopens it for another timeout.
    Thread-safe — many client threads consult one breaker.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout_s <= 0:
            raise ValueError(f"reset_timeout_s must be > 0, got {reset_timeout_s}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether a request may proceed; may admit the half-open probe."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.reset_timeout_s:
                    self._state = "half-open"
                    return True
                return False
            return False  # half-open: one probe is already in flight

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == "half-open"
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()

    def retry_after_s(self) -> float:
        """Seconds until the next probe is admitted (0 when not open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(
                0.0, self._opened_at + self.reset_timeout_s - self._clock()
            )


# ------------------------------------------------------------ shard link


class _ShardLink:
    """One shard's connection pool plus its circuit breaker."""

    def __init__(
        self,
        name: str,
        address: Address,
        breaker: CircuitBreaker,
        connect_timeout_s: float,
        request_timeout_s: float,
        max_frame_bytes: int,
    ) -> None:
        self.name = name
        self.address = address
        self.breaker = breaker
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.max_frame_bytes = max_frame_bytes
        self.hello: dict[str, Any] = {}
        #: EWMA of successful optimize round-trip latency, maintained by the
        #: gateway; seeds the hedging budget for requests routed here.
        self.latency_ewma_s = 0.0
        self._idle: list[socket.socket] = []
        self._closed = False
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        sock = self.address.connect(self.connect_timeout_s)
        sock.settimeout(self.request_timeout_s)
        hello = recv_frame(sock, self.max_frame_bytes)
        if (
            hello is None
            or hello.get("format") != PROTOCOL_FORMAT
            or hello.get("version") != PROTOCOL_VERSION
        ):
            sock.close()
            raise FrameError(
                f"shard {self.name!r} at {self.address} did not speak "
                f"{PROTOCOL_FORMAT} v{PROTOCOL_VERSION} (hello: {hello!r})"
            )
        self.hello = hello
        return sock

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip on a pooled connection.

        Transport failures close the connection and propagate (the caller
        records them against the breaker); a clean round trip returns the
        connection to the pool for the next caller.

        Safe against concurrent :meth:`close` (a live shard removal): a
        request that checked its socket out before the close finishes its
        round trip undisturbed — close only sweeps *idle* sockets — and a
        request arriving after the close fails typed
        (:class:`ConnectionError`, which the gateway maps to
        :class:`ShardUnavailableError`) instead of opening a fresh socket
        into an orphaned pool.
        """
        with self._lock:
            if self._closed:
                raise ConnectionError(
                    f"shard {self.name!r} was removed from the ring"
                )
            sock = self._idle.pop() if self._idle else None
        if sock is None:
            sock = self._connect()
        try:
            send_frame(sock, payload, self.max_frame_bytes)
            response = recv_frame(sock, self.max_frame_bytes)
        except BaseException:
            sock.close()
            raise
        if response is None:
            sock.close()
            raise FrameError(
                f"shard {self.name!r} closed the connection mid-request"
            )
        # Mark-and-sweep return: a socket coming home to a closed link is
        # retired on the spot (close() already swept the idle pool and will
        # not run again), never leaked into a pool nobody drains.
        with self._lock:
            retire = self._closed
            if not retire:
                self._idle.append(sock)
        if retire:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        return response

    def close(self) -> None:
        """Mark the link closed and sweep idle sockets.

        In-flight round trips keep their checked-out sockets and complete
        (or fail) on their own; each is retired when returned.  Idempotent.
        """
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for sock in idle:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass


# ---------------------------------------------------------------- the router


class NetworkOptimizerGateway:
    """Route optimization requests to out-of-process shard servers.

    Args:
        shards: shard endpoints — a mapping of name to address spec, or an
            iterable of address specs (named ``shard-0`` … in order).
            Specs are ``unix:/path/to.sock`` or ``host:port``.
        settings: default :class:`OptimizerSettings` for requests.
        n_workers: default per-query parallelism requested of shards.
        connect_timeout_s / request_timeout_s: socket bounds; a shard that
            stops answering fails the request (and counts against its
            breaker) instead of hanging the client thread.
        failure_threshold / reset_timeout_s: breaker tuning, per shard.
        health_check_interval_s: > 0 starts a background thread probing
            every shard's ``health`` op at this cadence (driving breaker
            recovery without client traffic); 0 disables it — call
            :meth:`check_health` manually.
        overload_retries: how many times :meth:`optimize` resubmits after a
            shard's ``overloaded`` rejection, sleeping the advertised
            ``retry_after_s`` between attempts (clamped to
            [:data:`OVERLOAD_RETRY_FLOOR_S`, 1.0] — a shard advertising 0
            must not busy-spin the client).  The default 0 surfaces every
            rejection as :class:`GatewayOverloadedError` so callers apply
            their own policy; a thread-herd replayer sets this high enough
            to ride out admission-control bursts.
        ring_replicas: virtual nodes per shard on the consistent-hash ring.
        max_frame_bytes: frame-size bound in both directions.
        hedge_multiplier: > 0 enables request hedging: when the primary
            shard has not answered within
            ``max(hedge_min_s, hedge_multiplier * primary's latency EWMA)``,
            a duplicate request fires at the key's *next* distinct ring
            owner and the first usable response wins.  The loser is never
            interrupted mid-frame — its round trip completes on its own
            socket and the connection returns to its pool — so a hedge can
            never tear a frame.  0 (the default) disables hedging, keeping
            the one-DP-run-per-fingerprint invariant strict; with hedging
            on, a fired hedge may warm the same fingerprint on a second
            shard (that is the deliberate trade: duplicate work for a
            bounded tail).
        hedge_min_s: floor on the hedging budget — also the budget for a
            shard with no latency history yet.
    """

    def __init__(
        self,
        shards: dict[str, str] | Iterable[str],
        settings: OptimizerSettings = DEFAULT_SETTINGS,
        n_workers: int = 8,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 60.0,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        health_check_interval_s: float = 0.0,
        overload_retries: int = 0,
        ring_replicas: int = 64,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        hedge_multiplier: float = 0.0,
        hedge_min_s: float = 0.02,
    ) -> None:
        if not isinstance(shards, dict):
            shards = {
                f"shard-{index}": spec for index, spec in enumerate(shards)
            }
        if not shards:
            raise ValueError("at least one shard endpoint is required")
        if hedge_multiplier < 0:
            raise ValueError(f"hedge_multiplier must be >= 0, got {hedge_multiplier}")
        if hedge_min_s <= 0:
            raise ValueError(f"hedge_min_s must be > 0, got {hedge_min_s}")
        self.settings = settings
        self.n_workers = n_workers
        self._connect_timeout_s = connect_timeout_s
        self._request_timeout_s = request_timeout_s
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._overload_retries = overload_retries
        self._max_frame_bytes = max_frame_bytes
        self._hedge_multiplier = hedge_multiplier
        self._hedge_min_s = hedge_min_s
        self._ring = ConsistentHashRing(replicas=ring_replicas)
        self._links: dict[str, _ShardLink] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._breaker_rejections = 0
        self._hedged = 0
        self._hedged_wins = 0
        for name, spec in shards.items():
            self.add_shard(name, spec)
        self._health_stop = threading.Event()
        self._health_thread: threading.Thread | None = None
        if health_check_interval_s > 0:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                args=(health_check_interval_s,),
                name="net-gateway-health",
                daemon=True,
            )
            self._health_thread.start()

    # --------------------------------------------------------------- topology

    def add_shard(self, name: str, spec: str) -> None:
        """Register a shard endpoint and place it on the ring."""
        link = _ShardLink(
            name=name,
            address=Address.parse(spec),
            breaker=CircuitBreaker(
                failure_threshold=self._failure_threshold,
                reset_timeout_s=self._reset_timeout_s,
            ),
            connect_timeout_s=self._connect_timeout_s,
            request_timeout_s=self._request_timeout_s,
            max_frame_bytes=self._max_frame_bytes,
        )
        with self._lock:
            if name in self._links:
                raise ValueError(f"shard {name!r} is already registered")
            self._links[name] = link
            self._ring.add(name)

    def remove_shard(self, name: str) -> None:
        """Take a shard off the ring and close its pooled connections.

        Only keys adjacent to its virtual nodes remap; in-flight requests
        already talking to the shard complete (or fail) on their own.
        """
        with self._lock:
            link = self._links.pop(name, None)
            self._ring.remove(name)
        if link is not None:
            link.close()

    def shard_names(self) -> list[str]:
        """Registered shard names, sorted."""
        with self._lock:
            return self._ring.shards()

    def shard_for(self, key: str) -> str:
        """The shard name owning fingerprint ``key`` under the current ring."""
        with self._lock:
            return self._ring.route(key)

    # ---------------------------------------------------------------- serving

    def optimize(
        self,
        query: Query,
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
        tenant: str = "default",
    ) -> ServiceResult:
        """Optimize one query on the shard owning its fingerprint.

        Thread-safe.  Raises :class:`ShardUnavailableError` when the owning
        shard's breaker is open or the transport fails,
        :class:`GatewayOverloadedError` when the shard rejects for overload
        or drain (both carry ``retry_after_s``), and
        :class:`RemoteOptimizationError` when the shard's own optimization
        failed.
        """
        settings = settings if settings is not None else self.settings
        workers = n_workers if n_workers is not None else self.n_workers
        canonical = canonicalize(query)
        key = fingerprint_canonical(canonical, settings, workers)
        payload = {
            "op": "optimize",
            "query": query_to_dict(query),
            "settings": settings_to_wire(settings),
            "workers": workers,
            "tenant": tenant,
        }
        for attempt in range(self._overload_retries + 1):
            # Re-route every attempt: the ring may have changed, and after a
            # removal the key's new owner is who should see the retry.
            shard_name, response = self._attempt(key, payload)
            if response.get("ok"):
                return result_from_wire(response["result"])
            error = self._typed_error(shard_name, response)
            if (
                isinstance(error, GatewayOverloadedError)
                and attempt < self._overload_retries
            ):
                # Clamp below as well as above: a shard advertising
                # retry_after_s=0 would otherwise busy-spin this loop,
                # hammering the exact shard that asked for breathing room.
                time.sleep(
                    min(max(error.retry_after_s, OVERLOAD_RETRY_FLOOR_S), 1.0)
                )
                continue
            raise error
        raise AssertionError("unreachable")  # pragma: no cover

    def optimize_batch(
        self,
        queries: Iterable[Query],
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
    ) -> list[ServiceResult]:
        """Optimize many queries, fanning out across shard connections.

        A thin convenience over :meth:`optimize` — coalescing and caching
        happen shard-side, so a plain thread fan-out already gets one DP
        run per unique fingerprint.  Results return in input order; the
        first failure propagates after all requests finish.
        """
        from concurrent.futures import ThreadPoolExecutor

        requests = list(queries)
        if not requests:
            return []
        with ThreadPoolExecutor(
            max_workers=min(16, len(requests)), thread_name_prefix="net-batch"
        ) as pool:
            futures = [
                pool.submit(self.optimize, query, settings, n_workers)
                for query in requests
            ]
            return [future.result() for future in futures]

    def _link_for(self, key: str) -> _ShardLink:
        with self._lock:
            if self._closed:
                raise RuntimeError("network gateway is closed")
            self._requests += 1
            name = self._ring.route(key)
            return self._links[name]

    def _route_pair(self, key: str) -> tuple[_ShardLink, _ShardLink | None]:
        """The key's owner and (when the ring has one) its hedging target."""
        with self._lock:
            if self._closed:
                raise RuntimeError("network gateway is closed")
            self._requests += 1
            owners = self._ring.owners(key, 2)
            primary = self._links[owners[0]]
            secondary = self._links[owners[1]] if len(owners) > 1 else None
        return primary, secondary

    def _attempt(self, key: str, payload: dict[str, Any]) -> tuple[str, dict[str, Any]]:
        """One routed request attempt, hedged when enabled; returns (shard, response)."""
        primary, secondary = self._route_pair(key)
        if self._hedge_multiplier <= 0 or secondary is None:
            started = time.monotonic()
            response = self._call(primary, payload)
            self._record_latency(primary, time.monotonic() - started)
            return primary.name, response
        return self._hedged_call(primary, secondary, payload)

    @staticmethod
    def _record_latency(link: _ShardLink, elapsed_s: float) -> None:
        previous = link.latency_ewma_s
        link.latency_ewma_s = (
            elapsed_s if previous == 0.0 else 0.8 * previous + 0.2 * elapsed_s
        )

    def _hedge_budget_s(self, primary: _ShardLink, secondary: _ShardLink) -> float:
        """How long to wait on the primary before firing the hedge.

        The budget is ``hedge_multiplier`` times the *faster* of the two
        replicas' EWMAs (floored at ``hedge_min_s``), not the primary's
        own: a chronically slow primary must keep being hedged — its own
        EWMA would learn the slowness and push the trigger out of reach —
        while a slow *secondary* never drags the budget down below what
        the healthy primary needs.  Links with no samples yet don't vote.
        """
        samples = [
            link.latency_ewma_s
            for link in (primary, secondary)
            if link.latency_ewma_s > 0
        ]
        reference = min(samples) if samples else 0.0
        return max(self._hedge_min_s, self._hedge_multiplier * reference)

    def _hedged_call(
        self,
        primary: _ShardLink,
        secondary: _ShardLink,
        payload: dict[str, Any],
    ) -> tuple[str, dict[str, Any]]:
        """First-response-wins duplicate dispatch past the latency budget.

        The primary runs in a helper thread while this thread waits out the
        EWMA-derived budget; on expiry the same request fires at the next
        ring owner and the first *usable* (``ok``) response wins.  The loser
        is cancelled safely by never being interrupted: its round trip
        completes on its own pooled socket in the background and the result
        is discarded, so no frame is ever torn mid-stream and the
        connection returns to its pool for the next request.
        """
        import queue as queue_module

        responses: "queue_module.Queue[tuple[_ShardLink, dict[str, Any] | None, Exception | None]]" = (
            queue_module.Queue()
        )

        def run(link: _ShardLink) -> None:
            started = time.monotonic()
            try:
                response = self._call(link, payload)
            except Exception as error:  # noqa: BLE001 - re-raised by the picker
                responses.put((link, None, error))
                return
            self._record_latency(link, time.monotonic() - started)
            responses.put((link, response, None))

        threading.Thread(
            target=run, args=(primary,), name="net-hedge-primary", daemon=True
        ).start()
        try:
            outcomes = [
                responses.get(timeout=self._hedge_budget_s(primary, secondary))
            ]
        except queue_module.Empty:
            with self._lock:
                self._hedged += 1
            threading.Thread(
                target=run, args=(secondary,), name="net-hedge", daemon=True
            ).start()
            outcomes = [responses.get()]
            if not self._usable(outcomes[0]):
                # The faster responder was an error; the slower one may
                # still carry the answer.  Bounded by the socket timeouts.
                outcomes.append(responses.get())
            winner = self._pick_outcome(primary, outcomes)
            if winner[0] is secondary and self._usable(winner):
                with self._lock:
                    self._hedged_wins += 1
            link, response, error = winner
            if error is not None:
                raise error
            assert response is not None
            return link.name, response
        link, response, error = outcomes[0]
        if error is not None:
            raise error
        assert response is not None
        return link.name, response

    @staticmethod
    def _usable(
        outcome: tuple[_ShardLink, dict[str, Any] | None, Exception | None],
    ) -> bool:
        __, response, ___ = outcome
        return response is not None and bool(response.get("ok"))

    @staticmethod
    def _pick_outcome(
        primary: _ShardLink,
        outcomes: list[tuple[_ShardLink, dict[str, Any] | None, Exception | None]],
    ) -> tuple[_ShardLink, dict[str, Any] | None, Exception | None]:
        """Choose the winning outcome: any ``ok`` response first, then the
        primary's error response/exception (stable retry semantics), then
        whatever the hedge produced."""
        for outcome in outcomes:
            if NetworkOptimizerGateway._usable(outcome):
                return outcome
        for preference in (
            lambda o: o[0] is primary and o[1] is not None,
            lambda o: o[1] is not None,
            lambda o: o[0] is primary,
        ):
            for outcome in outcomes:
                if preference(outcome):
                    return outcome
        return outcomes[0]

    def _call(self, link: _ShardLink, payload: dict[str, Any]) -> dict[str, Any]:
        """One breaker-guarded request against a shard."""
        if not link.breaker.allow():
            with self._lock:
                self._breaker_rejections += 1
            raise ShardUnavailableError(
                link.name,
                "circuit breaker open",
                max(link.breaker.retry_after_s(), 1e-3),
            )
        try:
            response = link.request(payload)
        except (OSError, FrameError) as error:
            link.breaker.record_failure()
            raise ShardUnavailableError(
                link.name,
                f"transport failure: {error}",
                max(link.breaker.retry_after_s(), 1e-3),
            ) from error
        link.breaker.record_success()
        return response

    @staticmethod
    def _typed_error(shard: str, response: dict[str, Any]) -> Exception:
        """Map a shard's error response onto the client-side exception."""
        error = response.get("error") or {}
        error_type = error.get("type", "unknown")
        if error_type in ("overloaded", "draining"):
            return GatewayOverloadedError(
                error_type,
                float(error.get("retry_after_s", 0.05)),
                error.get("tenant", "default"),
            )
        return RemoteOptimizationError(
            shard, error_type, error.get("message", "no message")
        )

    # ----------------------------------------------------------------- health

    def check_health(self) -> dict[str, dict[str, Any]]:
        """Probe every shard once; returns per-shard health/breaker state.

        A reachable shard reports its server-side status (``serving`` or
        ``draining``) and closes its breaker; an unreachable one records a
        breaker failure.  Open-breaker shards are probed only when their
        reset timeout has elapsed (the half-open rule), so a dead shard is
        not hammered.
        """
        with self._lock:
            links = list(self._links.values())
        report: dict[str, dict[str, Any]] = {}
        for link in links:
            entry: dict[str, Any] = {"address": str(link.address)}
            if not link.breaker.allow():
                entry["reachable"] = False
                entry["status"] = "circuit-open"
            else:
                try:
                    response = link.request({"op": "health"})
                except (OSError, FrameError) as error:
                    link.breaker.record_failure()
                    entry["reachable"] = False
                    entry["status"] = f"unreachable: {error}"
                else:
                    link.breaker.record_success()
                    entry["reachable"] = True
                    entry["status"] = response.get("status", "unknown")
                    entry["in_flight"] = response.get("in_flight", 0)
            entry["breaker"] = link.breaker.state
            report[link.name] = entry
        return report

    def _health_loop(self, interval_s: float) -> None:
        while not self._health_stop.wait(interval_s):
            try:
                self.check_health()
            except Exception:  # pragma: no cover - prober must never die
                pass

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict[str, Any]:
        """Client-side counters plus each reachable shard's server stats."""
        with self._lock:
            requests = self._requests
            breaker_rejections = self._breaker_rejections
            hedged = self._hedged
            hedged_wins = self._hedged_wins
            links = list(self._links.values())
        shards: dict[str, Any] = {}
        for link in links:
            entry: dict[str, Any] = {
                "address": str(link.address),
                "breaker": link.breaker.state,
            }
            if link.breaker.allow():
                try:
                    response = link.request({"op": "stats"})
                except (OSError, FrameError):
                    link.breaker.record_failure()
                    entry["reachable"] = False
                else:
                    link.breaker.record_success()
                    entry["reachable"] = True
                    entry.update(response.get("stats", {}))
            else:
                entry["reachable"] = False
            shards[link.name] = entry
        return {
            "requests": requests,
            "breaker_rejections": breaker_rejections,
            "hedged": hedged,
            "hedged_wins": hedged_wins,
            "shards": shards,
        }

    # --------------------------------------------------------------- lifecycle

    def drain(self, timeout_s: float = 30.0) -> dict[str, bool]:
        """Gracefully quiesce every shard: finish in-flight, flush, stop.

        Returns per-shard success.  A shard that cannot be reached (already
        dead, breaker open) is reported ``False`` rather than raising — the
        point of drain is best-effort quiescence before shutdown.
        """
        with self._lock:
            links = list(self._links.values())
        report: dict[str, bool] = {}
        for link in links:
            try:
                response = link.request({"op": "drain", "timeout_s": timeout_s})
                report[link.name] = bool(response.get("drained"))
            except (OSError, FrameError):
                report[link.name] = False
        return report

    def close(self) -> None:
        """Stop the health prober and release every pooled connection."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            links = list(self._links.values())
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        for link in links:
            link.close()

    def __enter__(self) -> "NetworkOptimizerGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
