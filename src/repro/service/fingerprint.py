"""Query canonicalization and fingerprinting for the optimizer service.

A service that caches optimization results needs a cache key that is stable
under the *accidents* of query construction: the order in which relations are
listed (their table numbers) carries no semantics, so two queries that differ
only by a relation permutation must map to the same key.  Table and query
*names* are likewise excluded — they are aliases, not statistics — while
everything the optimizer actually consumes (cardinalities, row widths,
column domains, clustering, predicate endpoints and selectivities, and the
:class:`~repro.config.OptimizerSettings`) is hashed in.

Canonicalization uses color refinement (1-WL) over the join graph seeded
with per-table statistic signatures, followed by individualization on
remaining symmetric classes; the canonical form is the lexicographically
smallest encoding over all explored branches.  For the symmetric cases where
the search could explode, branch exploration is capped — capping can only
cost cache *hits* (two labelings of a pathologically symmetric query may
canonicalize differently), never correctness: a cache hit requires equal
canonical encodings, and equal encodings certify that both queries are
isomorphic to the same canonical query, which is exactly what plan
remapping (:mod:`repro.service.remap`) relies on.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from functools import lru_cache

from repro.config import OptimizerSettings
from repro.core.constraints import usable_partitions
from repro.query.query import Query
from repro.query.schema import Table

#: Maximum individualization branches explored before the canonical search
#: settles for the best encoding found so far.  Only near-fully-symmetric
#: queries (identical stats on many clique-connected tables) ever reach it.
MAX_BRANCHES = 256


def _stable_hash(payload: object) -> int:
    """Deterministic 64-bit hash of a repr-serializable value.

    Python's builtin ``hash`` is randomized per process for strings; the
    fingerprint must be stable across processes and sessions, so hash the
    ``repr`` (deterministic for tuples/ints/floats/strings) with sha256.
    """
    digest = hashlib.sha256(repr(payload).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _table_signature(table: Table) -> tuple:
    """Everything the optimizer reads from a table, minus its name."""
    columns = tuple(sorted((column.name, column.domain_size) for column in table.columns))
    return (table.cardinality, table.row_bytes, table.clustered_on, columns)


def _settings_signature(settings: OptimizerSettings) -> tuple:
    # Memoized: backend resolution consults the registry, and the serving
    # hot path calls this once per request with a handful of distinct
    # settings values.  The registry generation is part of the memo key so
    # registering/replacing a backend (which can change what AUTO resolves
    # to) invalidates cached signatures instead of serving stale ones.
    #
    # A θ binding is stripped *before* the memo probe: θ parameterizes the
    # lookup into a cached envelope, never the optimization problem, so
    # every θ of one settings value must share one signature (hence one
    # fingerprint and one cache entry) — and must not churn the memo with
    # per-θ variants.
    from repro.core.worker import registry_generation

    return _settings_signature_cached(
        settings.without_theta(), registry_generation()
    )


@lru_cache(maxsize=128)  # bounded: stale-generation entries must age out
def _settings_signature_cached(
    settings: OptimizerSettings, generation: int
) -> tuple:
    # The backend is part of the signature even though all backends return
    # equivalent frontiers: the cached entry also carries run statistics
    # (simulated timing), which are backend-specific, and keeping the key
    # exact makes backend A/B comparisons through the service meaningful.
    # AUTO is hashed as the backend it *resolves* to, so a request with the
    # default AUTO and one explicitly naming the same core share an entry —
    # the execution, not the spelling, keys the cache.
    from repro.core.worker import resolve_backend

    return (
        settings.plan_space.value,
        tuple(objective.value for objective in settings.objectives),
        settings.alpha,
        settings.consider_orders,
        settings.use_all_join_algorithms,
        settings.parametric,
        resolve_backend(settings).backend.value,
    )


def settings_signature(settings: OptimizerSettings) -> str:
    """Stable string form of the *resolved* settings signature.

    This is what cache-entry provenance records store: it embeds the backend
    that ``Backend.AUTO`` resolved to at creation time, so an entry remains
    attributable — and selectively invalidatable — even after the registry
    changes what AUTO means.  The string is ``repr`` of the same tuple the
    fingerprint hashes, so provenance and fingerprints can never disagree
    about what the settings were.
    """
    return repr(_settings_signature(settings))


def _adjacency(query: Query) -> dict[int, list[tuple[tuple, int]]]:
    """Per-table incident predicate signatures: ``table -> [(edge_sig, other)]``.

    The edge signature is directional (local column first) so that a table's
    view of a predicate distinguishes its own endpoint from the neighbor's.
    """
    incident: dict[int, list[tuple[tuple, int]]] = {i: [] for i in range(query.n_tables)}
    for predicate in query.predicates:
        left_sig = (predicate.selectivity, predicate.left_column, predicate.right_column)
        right_sig = (predicate.selectivity, predicate.right_column, predicate.left_column)
        incident[predicate.left_table].append((left_sig, predicate.right_table))
        incident[predicate.right_table].append((right_sig, predicate.left_table))
    return incident


def _refine(colors: list[int], incident: dict[int, list[tuple[tuple, int]]]) -> list[int]:
    """1-WL color refinement to a fixed point."""
    n = len(colors)
    while True:
        refined = [
            _stable_hash(
                (
                    colors[node],
                    tuple(sorted((edge_sig, colors[other]) for edge_sig, other in incident[node])),
                )
            )
            for node in range(n)
        ]
        if len(set(refined)) == len(set(colors)):
            return refined
        colors = refined


def _encode(query: Query, numbering: tuple[int, ...]) -> str:
    """Serialize the query under ``numbering`` (original -> canonical)."""
    order = sorted(range(query.n_tables), key=lambda original: numbering[original])
    tables = tuple(_table_signature(query.tables[original]) for original in order)
    predicates = []
    for predicate in query.predicates:
        a = numbering[predicate.left_table]
        b = numbering[predicate.right_table]
        if a <= b:
            predicates.append((a, predicate.left_column, b, predicate.right_column, predicate.selectivity))
        else:
            predicates.append((b, predicate.right_column, a, predicate.left_column, predicate.selectivity))
    return repr((tables, tuple(sorted(predicates))))


@dataclass(frozen=True)
class CanonicalForm:
    """A query's canonical serialization plus the numbering that produced it.

    ``numbering[original_table_number]`` is the table's canonical number.
    Two queries are join-isomorphic (up to names) iff their ``encoding``
    strings are equal, and composing one numbering with the inverse of the
    other maps plans between them (see :func:`repro.service.remap.remap_plan`).
    """

    encoding: str
    numbering: tuple[int, ...]


#: Memoized canonical forms, weakly keyed by the query value.  A serving
#: tier canonicalizes the same hot query objects on every request (the hit
#: path is otherwise dominated by WL refinement, ~180us at 9 tables versus
#: ~10us for a memo probe); keying by value means equal-content query
#: objects share one entry, and weak keys let retired queries be collected.
#: Safe because canonicalization is a pure function of query content and
#: queries are immutable.
_canonical_memo: "weakref.WeakKeyDictionary[Query, CanonicalForm]" = (
    weakref.WeakKeyDictionary()
)


def canonicalize(query: Query) -> CanonicalForm:
    """Compute the relation-permutation-invariant canonical form of ``query``.

    Memoized on the query value (weakly, so the memo never extends a
    query's lifetime); an unhashable query — not produced by this package,
    but possible for hand-built table objects — just skips the memo.
    """
    try:
        cached = _canonical_memo.get(query)
    except TypeError:
        return _canonicalize(query)
    if cached is not None:
        return cached
    canonical = _canonicalize(query)
    _canonical_memo[query] = canonical
    return canonical


def _canonicalize(query: Query) -> CanonicalForm:
    incident = _adjacency(query)
    initial = [_stable_hash(("table", _table_signature(table))) for table in query.tables]

    best: CanonicalForm | None = None
    branches = 0

    def search(colors: list[int]) -> None:
        nonlocal best, branches
        if branches >= MAX_BRANCHES:
            return
        colors = _refine(colors, incident)
        classes: dict[int, list[int]] = {}
        for node, color in enumerate(colors):
            classes.setdefault(color, []).append(node)
        # The target cell must be chosen by a labeling-invariant key (class
        # size, then the class's color — never original table numbers), or
        # two labelings of the same query would explore different search
        # trees and could settle on different canonical forms.
        ambiguous = sorted(
            (
                (color, members)
                for color, members in classes.items()
                if len(members) > 1
            ),
            key=lambda item: (len(item[1]), item[0]),
        )
        if not ambiguous:
            branches += 1
            ranked = sorted(range(len(colors)), key=lambda node: colors[node])
            numbering = [0] * len(colors)
            for canonical, original in enumerate(ranked):
                numbering[original] = canonical
            candidate = CanonicalForm(_encode(query, tuple(numbering)), tuple(numbering))
            if best is None or candidate.encoding < best.encoding:
                best = candidate
            return
        for node in ambiguous[0][1]:
            individualized = list(colors)
            individualized[node] = _stable_hash(("individualized", colors[node]))
            search(individualized)
            if branches >= MAX_BRANCHES:
                return

    search(initial)
    assert best is not None
    return best


def fingerprint_canonical(
    canonical: CanonicalForm,
    settings: OptimizerSettings,
    n_workers: int | None = None,
) -> str:
    """Digest a precomputed canonical form (lets callers canonicalize once).

    ``n_workers`` is hashed as the partition count the run would actually
    use (:func:`~repro.core.constraints.usable_partitions`), not the raw
    request: requests for 8, 9, and 12 workers on a query that clamps to 8
    partitions produce identical runs and must share one cache entry.  The
    canonical numbering carries the table count, so the resolution needs no
    extra arguments.
    """
    if n_workers is None:
        resolved = None
    else:
        resolved = usable_partitions(
            len(canonical.numbering), n_workers, settings.plan_space
        )
    payload = repr((canonical.encoding, _settings_signature(settings), resolved))
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint(
    query: Query,
    settings: OptimizerSettings,
    n_workers: int | None = None,
) -> str:
    """Hex digest identifying ``(query, settings[, parallelism])`` up to relabeling.

    ``n_workers`` participates as its *resolved* partition count so that
    cached per-run accounting (partition count, simulated timing) stays
    faithful to the request, while requests whose worker counts clamp to the
    same parallelism share one entry instead of duplicating runs and memory.
    """
    return fingerprint_canonical(canonicalize(query), settings, n_workers)
