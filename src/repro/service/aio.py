"""An asyncio front-end over the sharded gateway: batching and backpressure.

The threaded :class:`~repro.service.gateway.ShardedOptimizerGateway` costs
one OS thread per concurrently waiting request; a serving tier that faces
thousands of connections wants requests to be *queued*, not *parked on
threads*.  :class:`AsyncOptimizerGateway` is that tier:

* **adaptive micro-batching** — a cache miss does not dispatch immediately.
  It joins a per-``(settings, workers, shard)`` window that flushes as one
  ``optimize_batch`` call per shard when the window is ``max_batch`` entries
  deep or ``batch_window_ms`` old.  The window is *adaptive*: while the
  dispatch backend is idle the window flushes on the next event-loop tick
  (batching would only add latency), and every batch completion drains the
  queued windows immediately (the backend just proved it has capacity) — so
  the configured window is an upper bound paid only under sustained load,
  not a tax on every request;
  The fast path serves through the threaded gateway's ``serve_if_cached``,
  so on a tiered shard cache a *disk* hit bypasses admission control and
  batching exactly like a memory hit — after a warm restart the whole
  previously-seen working set is fast-path traffic, not a miss storm;
* **admission control with per-tenant fairness** — at most ``max_pending``
  requests may be outstanding (queued or dispatched, not yet answered), and
  a single tenant may hold at most ``tenant_share`` of those slots.  A
  request beyond either bound is rejected *immediately* with
  :class:`GatewayOverloadedError` carrying a ``retry_after_s`` estimate —
  fail-fast backpressure instead of unbounded queueing, and a hot tenant
  exhausts its own share while the reserved remainder keeps serving
  everyone else;
* **cancellation-safe futures** — every admitted request is an
  :class:`asyncio.Future`.  A caller that abandons it (``asyncio.wait_for``
  timeout, task cancellation) releases its admission slot at once; a
  still-queued entry whose waiters all cancelled is dropped from the batch
  before dispatch (the DP never runs), and a cancellation after dispatch
  simply discards that waiter's result — the flight, its other waiters, and
  the in-flight gauges are untouched;
* **async coalescing** — waiters for the fingerprint of an already-queued
  entry attach to it instead of occupying a second batch slot, each served
  from the one result relabeled to its own table numbering.  Together with
  the threaded gateway's singleflight this preserves the system invariant:
  *one DP run per unique fingerprint*, no matter how the traffic arrives;
* **a served-result edge memo** — the shard caches store plans in
  *canonical* numbering and relabel them on every hit; the front-end
  additionally keeps a small LRU of fully-relabeled answers keyed by
  fingerprint (render once, serve many).  A hot client repeating the same
  query object skips canonical relabeling entirely — the single-threaded
  event loop makes this a plain dictionary, no locking.  Plans are frozen,
  so served answers share plan objects safely; only the result envelope is
  copied per response.

Everything above happens on the event loop — the only blocking work
(``optimize_batch``) runs on a small dispatch thread pool, so the loop
stays responsive at any queue depth.  :meth:`AsyncOptimizerGateway.stats`
extends the threaded gateway's snapshot with queue depth, a batch-size
histogram, rejection counters, and per-tenant accounting.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.config import OptimizerSettings
from repro.query.query import Query
from repro.service.fingerprint import (
    CanonicalForm,
    canonicalize,
    fingerprint_canonical,
)
from repro.service.gateway import GatewayStats, ShardedOptimizerGateway
from repro.service.service import ServiceResult, bind_result_theta, serve_from_result


class GatewayOverloadedError(RuntimeError):
    """The request was rejected by admission control; retry after a delay.

    ``reason`` is ``"queue-full"`` (the global pending bound is exhausted)
    or ``"tenant-share"`` (this tenant alone holds its full share of slots).
    ``retry_after_s`` estimates when capacity frees up, from the batching
    window and an exponentially weighted average of recent batch service
    times — a client honoring it converges on the gateway's actual drain
    rate instead of hammering a full queue.
    """

    def __init__(self, reason: str, retry_after_s: float, tenant: str) -> None:
        super().__init__(
            f"optimizer gateway overloaded ({reason}) for tenant "
            f"{tenant!r}; retry after {retry_after_s:.3f}s"
        )
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.tenant = tenant


@dataclass(frozen=True)
class TenantStats:
    """One tenant's counters at snapshot time."""

    requests: int
    completed: int
    rejected: int
    cancelled: int
    failed: int
    outstanding: int


@dataclass(frozen=True)
class AsyncGatewayStats:
    """A snapshot of the async front-end plus the wrapped threaded gateway.

    ``requests = fast_path_hits + admitted + rejections`` — every call to
    :meth:`AsyncOptimizerGateway.optimize` lands in exactly one bucket.
    ``batched`` counts *entries* dispatched inside batches (coalesced
    waiters share their entry), and ``batch_sizes`` histograms entries per
    dispatched batch, so the operator can see whether the window actually
    aggregates traffic or degenerates to singleton batches.
    """

    requests: int
    fast_path_hits: int
    #: Of the fast-path hits, how many were served from the front-end's
    #: relabeled-result memo without touching the shard cache at all.
    result_memo_hits: int
    admitted: int
    coalesced: int
    batched: int
    rejected_queue_full: int
    rejected_tenant_share: int
    cancelled: int
    queue_depth: int
    outstanding: int
    dispatched_batches: int
    in_flight_batches: int
    batch_sizes: dict[int, int]
    tenants: dict[str, TenantStats]
    gateway: GatewayStats

    @property
    def rejections(self) -> int:
        """Total rejected requests across both admission-control reasons."""
        return self.rejected_queue_full + self.rejected_tenant_share


@dataclass
class _TenantState:
    requests: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    failed: int = 0
    outstanding: int = 0


class _Waiter:
    """One admitted request: its future, its own canonical numbering, its θ.

    ``theta`` rides on the waiter, not on the queued entry: requests for
    different θs of one query shape coalesce onto a single dispatched
    (θ-free) optimization, and each waiter binds its own θ at settlement.
    """

    __slots__ = ("future", "canonical", "tenant", "theta")

    def __init__(
        self,
        future: "asyncio.Future[ServiceResult]",
        canonical: CanonicalForm,
        tenant: str,
        theta: float | None = None,
    ) -> None:
        self.future = future
        self.canonical = canonical
        self.tenant = tenant
        self.theta = theta


class _PendingEntry:
    """One queued unique fingerprint and everyone waiting on it."""

    __slots__ = ("key", "query", "canonical", "waiters")

    def __init__(self, key: str, query: Query, canonical: CanonicalForm) -> None:
        self.key = key
        self.query = query
        self.canonical = canonical
        self.waiters: list[_Waiter] = []


class _Window:
    """The open micro-batch for one ``(settings, workers, shard)`` group."""

    __slots__ = ("entries", "timer")

    def __init__(self) -> None:
        self.entries: dict[str, _PendingEntry] = {}
        self.timer: asyncio.TimerHandle | None = None


class AsyncOptimizerGateway:
    """Asyncio front door over a :class:`ShardedOptimizerGateway`.

    Args:
        gateway: the threaded sharded gateway to serve through.  ``None``
            builds one from ``gateway_kwargs`` and owns it (closed with this
            front-end); a passed-in gateway is borrowed and left open unless
            ``own_gateway=True``.
        batch_window_ms: upper bound on how long a queued miss waits for
            companions before its micro-batch dispatches.  Paid only while
            the dispatch backend is busy; an idle backend flushes on the
            next event-loop tick.
        max_batch: flush a window early once it holds this many unique
            fingerprints.
        max_pending: bound on outstanding admitted requests (queued plus
            dispatched, not yet answered); beyond it requests are rejected
            with ``reason="queue-full"``.
        tenant_share: fraction of ``max_pending`` a single tenant may hold
            (at least one slot).  The remainder stays available to other
            tenants no matter how hot one tenant runs.
        result_memo_size: entries in the served-result edge memo (fully
            relabeled answers by fingerprint, LRU beyond); ``0`` disables
            it.  The memo never changes an answer — results are a pure
            function of the fingerprint — it only skips re-relabeling, but
            a memo-served answer does not refresh the shard cache's LRU
            recency for that key.
        dispatch_threads: size of the thread pool running ``optimize_batch``
            calls; defaults to the wrapped gateway's shard count (one batch
            per shard in flight).
        own_gateway: close ``gateway`` when this front-end closes.
        **gateway_kwargs: forwarded to :class:`ShardedOptimizerGateway` when
            ``gateway`` is ``None``.

    Single-loop discipline: all bookkeeping runs on the event loop that
    first calls :meth:`optimize`; using the instance from a second loop is
    an error.  The dispatch pool threads only execute ``optimize_batch``
    (itself thread-safe) and report back via the loop.
    """

    def __init__(
        self,
        gateway: ShardedOptimizerGateway | None = None,
        *,
        batch_window_ms: float = 2.0,
        max_batch: int = 16,
        max_pending: int = 128,
        tenant_share: float = 0.5,
        result_memo_size: int = 1024,
        dispatch_threads: int | None = None,
        own_gateway: bool = False,
        **gateway_kwargs: object,
    ) -> None:
        if batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, got {batch_window_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if not 0.0 < tenant_share <= 1.0:
            raise ValueError(f"tenant_share must be in (0, 1], got {tenant_share}")
        if result_memo_size < 0:
            raise ValueError(f"result_memo_size must be >= 0, got {result_memo_size}")
        if gateway is None:
            gateway = ShardedOptimizerGateway(**gateway_kwargs)  # type: ignore[arg-type]
            own_gateway = True
        self._gateway = gateway
        self._own_gateway = own_gateway
        self.batch_window_s = batch_window_ms / 1e3
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.tenant_cap = max(1, math.floor(max_pending * tenant_share))
        self._executor = ThreadPoolExecutor(
            max_workers=(
                dispatch_threads if dispatch_threads is not None else gateway.n_shards
            ),
            thread_name_prefix="aio-dispatch",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        #: Open micro-batches by (settings, workers, shard index).
        self._windows: dict[tuple[OptimizerSettings, int, int], _Window] = {}
        #: Queued (not yet dispatched) entries by fingerprint, for coalescing.
        self._queued: dict[str, _PendingEntry] = {}
        self._dispatches: set[asyncio.Future] = set()
        #: Fully-relabeled answers by (fingerprint, θ): value is (numbering
        #: the plans are in, result to copy from).  θ is part of the memo key
        #: because one θ-free fingerprint serves many bound answers; touched
        #: only on the loop.
        self._served: OrderedDict[
            tuple[str, float | None], tuple[tuple[int, ...], ServiceResult]
        ] = OrderedDict()
        self.result_memo_size = result_memo_size
        self._requests = 0
        self._fast_path_hits = 0
        self._result_memo_hits = 0
        self._admitted = 0
        self._coalesced = 0
        self._batched = 0
        self._rejected_queue_full = 0
        self._rejected_tenant_share = 0
        self._cancelled = 0
        self._outstanding = 0
        self._dispatched_batches = 0
        self._batch_sizes: Counter[int] = Counter()
        self._tenants: dict[str, _TenantState] = {}
        #: EWMA of batch service time, seeding the retry-after estimate.
        self._ewma_batch_s = max(self.batch_window_s, 1e-3)

    # ----------------------------------------------------------------- request

    async def optimize(
        self,
        query: Query,
        settings: OptimizerSettings | None = None,
        n_workers: int | None = None,
        tenant: str = "default",
    ) -> ServiceResult:
        """Optimize one query; hits return immediately, misses micro-batch.

        Raises :class:`GatewayOverloadedError` when admission control
        rejects the request (the caller should back off ``retry_after_s``),
        and propagates the optimization's own error if the DP fails.
        Cancelling the returned awaitable releases the admission slot and,
        when this waiter was the entry's last, withdraws the queued work.
        """
        self._check_loop()
        if self._closed:
            raise RuntimeError("async gateway is closed")
        settings = settings if settings is not None else self._gateway.settings
        workers = n_workers if n_workers is not None else self._gateway.n_workers
        state = self._tenants.setdefault(tenant, _TenantState())
        self._requests += 1
        state.requests += 1

        theta = settings.theta
        canonical = canonicalize(query)
        key = fingerprint_canonical(canonical, settings, workers)
        memo = self._served.get((key, theta))
        if memo is not None and memo[0] == canonical.numbering:
            # Edge-memo hit: the fully-relabeled answer for this exact
            # numbering (and θ binding) was already rendered — serve a fresh
            # envelope over the shared frozen plans.
            self._served.move_to_end((key, theta))
            self._fast_path_hits += 1
            self._result_memo_hits += 1
            state.completed += 1
            return dataclasses.replace(
                memo[1], plans=list(memo[1].plans), cached=True
            )
        served = self._gateway.serve_if_cached(canonical, key, theta=theta)
        if served is not None:
            self._fast_path_hits += 1
            state.completed += 1
            self._remember((key, theta), canonical.numbering, served)
            return served

        reason = self._admission_verdict(state)
        if reason is not None:
            state.rejected += 1
            if reason == "queue-full":
                self._rejected_queue_full += 1
            else:
                self._rejected_tenant_share += 1
            raise GatewayOverloadedError(reason, self._retry_after_s(), tenant)

        assert self._loop is not None
        waiter = _Waiter(self._loop.create_future(), canonical, tenant, theta)
        self._admitted += 1
        self._outstanding += 1
        state.outstanding += 1
        waiter.future.add_done_callback(
            lambda future, state=state: self._on_waiter_done(state, future)
        )

        entry = self._queued.get(key)
        if entry is not None:
            # Same fingerprint already queued: ride along, one batch slot.
            # θ is not part of the fingerprint, so requests for *different*
            # θs of one shape coalesce here too — one DP run materializes
            # the envelope, and each waiter binds its own θ at settlement.
            self._coalesced += 1
            entry.waiters.append(waiter)
        else:
            entry = _PendingEntry(key, query, canonical)
            entry.waiters.append(waiter)
            self._queued[key] = entry
            # Dispatch θ-free: the batch must produce the unbound frontier
            # (and a single envelope entry), whatever θ this waiter asked.
            self._enqueue(entry, settings.without_theta(), workers)
        return await waiter.future

    # --------------------------------------------------------------- admission

    def _admission_verdict(self, state: _TenantState) -> str | None:
        """The rejection reason for this request, or ``None`` to admit."""
        if self._outstanding >= self.max_pending:
            return "queue-full"
        if state.outstanding >= self.tenant_cap:
            return "tenant-share"
        return None

    def _retry_after_s(self) -> float:
        """Estimated wait until a slot frees: queue depth over drain rate."""
        batches_ahead = 1 + self._outstanding // self.max_batch
        return self.batch_window_s + batches_ahead * self._ewma_batch_s

    def _on_waiter_done(self, state: _TenantState, future: asyncio.Future) -> None:
        """Single accounting point for every way a waiter can finish."""
        self._outstanding -= 1
        state.outstanding -= 1
        if future.cancelled():
            self._cancelled += 1
            state.cancelled += 1
        elif future.exception() is not None:
            state.failed += 1
        else:
            state.completed += 1

    # ---------------------------------------------------------------- batching

    def _enqueue(
        self, entry: _PendingEntry, settings: OptimizerSettings, workers: int
    ) -> None:
        """Place a fresh entry in its group's window; decide when to flush."""
        assert self._loop is not None
        group = (settings, workers, self._gateway.shard_for(entry.key))
        window = self._windows.get(group)
        if window is None:
            window = self._windows[group] = _Window()
        window.entries[entry.key] = entry
        if len(window.entries) >= self.max_batch:
            self._flush(group)
        elif self._in_flight_batches() == 0:
            # Adaptive fast path: the backend is idle, so waiting out the
            # window would be pure added latency.  Flush on the next loop
            # tick — late enough that every task already runnable on this
            # tick (a burst arriving "simultaneously") can still join.
            if window.timer is not None:
                window.timer.cancel()
            window.timer = self._loop.call_later(0.0, self._flush, group)
        elif window.timer is None:
            window.timer = self._loop.call_later(
                self.batch_window_s, self._flush, group
            )

    def _in_flight_batches(self) -> int:
        return len(self._dispatches)

    def _flush(self, group: tuple[OptimizerSettings, int, int]) -> None:
        """Dispatch one group's window as a single per-shard batch."""
        assert self._loop is not None
        window = self._windows.pop(group, None)
        if window is None:
            return
        if window.timer is not None:
            window.timer.cancel()
        live: list[_PendingEntry] = []
        for entry in window.entries.values():
            self._queued.pop(entry.key, None)
            entry.waiters = [
                waiter for waiter in entry.waiters if not waiter.future.done()
            ]
            if entry.waiters:
                live.append(entry)
        if not live:
            return
        settings, workers, __ = group
        self._dispatched_batches += 1
        self._batched += len(live)
        self._batch_sizes[len(live)] += 1
        started = self._loop.time()
        dispatch = self._loop.run_in_executor(
            self._executor,
            self._gateway.optimize_batch,
            [entry.query for entry in live],
            settings,
            workers,
        )
        self._dispatches.add(dispatch)
        dispatch.add_done_callback(
            lambda future, live=live, started=started: self._on_batch_done(
                live, started, future
            )
        )

    def _on_batch_done(
        self,
        entries: list[_PendingEntry],
        started: float,
        dispatch: asyncio.Future,
    ) -> None:
        """Settle every waiter of a finished batch; then drain the queue."""
        assert self._loop is not None
        self._dispatches.discard(dispatch)
        elapsed = max(self._loop.time() - started, 1e-6)
        self._ewma_batch_s += 0.25 * (elapsed - self._ewma_batch_s)
        error: BaseException | None
        try:
            results = dispatch.result()
            error = None
        except BaseException as failure:  # noqa: BLE001 - delivered to waiters
            results = []
            error = failure
        if error is not None:
            for entry in entries:
                for waiter in entry.waiters:
                    if not waiter.future.done():
                        waiter.future.set_exception(error)
        else:
            for entry, result in zip(entries, results):
                self._settle_entry(entry, result)
        # The backend just freed capacity: drain queued windows immediately
        # rather than letting them ripen to their timers.
        for group in list(self._windows):
            self._flush(group)

    def _remember(
        self,
        key: tuple[str, float | None],
        numbering: tuple[int, ...],
        result: ServiceResult,
    ) -> None:
        """LRU-memoize a served answer for its (fingerprint, θ, numbering).

        A defensive copy is stored, never the object handed to a caller:
        callers may legitimately mutate their result's ``plans`` list in
        place (sorting, filtering), and the memo must not serve those
        mutations to later requesters.  The frozen plan objects themselves
        are shared.
        """
        if self.result_memo_size == 0:
            return
        self._served[key] = (
            numbering,
            dataclasses.replace(result, plans=list(result.plans)),
        )
        self._served.move_to_end(key)
        while len(self._served) > self.result_memo_size:
            self._served.popitem(last=False)

    def _settle_entry(self, entry: _PendingEntry, result: ServiceResult) -> None:
        """Deliver one entry's result to each waiter in its own numbering.

        ``result`` is the *unbound* outcome of a θ-free dispatch; each
        waiter binds its own θ here.  The memo stores the unbound form
        under ``(key, None)`` — θ-specific repeats are served from the
        shard's envelope entry on the fast path instead.
        """
        self._remember((entry.key, None), entry.canonical.numbering, result)
        first = True
        for waiter in entry.waiters:
            if waiter.future.done():
                continue
            if first and waiter.canonical.numbering == entry.canonical.numbering:
                # The representative: the batch ran (or cache-served) its
                # exact numbering, so apart from the θ bind — which keeps
                # the ``cached`` flag truthful — the result passes through.
                waiter.future.set_result(bind_result_theta(result, waiter.theta))
            else:
                waiter.future.set_result(
                    serve_from_result(
                        result,
                        entry.canonical,
                        waiter.canonical,
                        entry.key,
                        theta=waiter.theta,
                    )
                )
            first = False

    # ------------------------------------------------------------------- stats

    def stats(self) -> AsyncGatewayStats:
        """Snapshot the front-end counters plus the wrapped gateway's."""
        return AsyncGatewayStats(
            requests=self._requests,
            fast_path_hits=self._fast_path_hits,
            result_memo_hits=self._result_memo_hits,
            admitted=self._admitted,
            coalesced=self._coalesced,
            batched=self._batched,
            rejected_queue_full=self._rejected_queue_full,
            rejected_tenant_share=self._rejected_tenant_share,
            cancelled=self._cancelled,
            queue_depth=len(self._queued),
            outstanding=self._outstanding,
            dispatched_batches=self._dispatched_batches,
            in_flight_batches=self._in_flight_batches(),
            batch_sizes=dict(self._batch_sizes),
            tenants={
                tenant: TenantStats(
                    requests=state.requests,
                    completed=state.completed,
                    rejected=state.rejected,
                    cancelled=state.cancelled,
                    failed=state.failed,
                    outstanding=state.outstanding,
                )
                for tenant, state in self._tenants.items()
            },
            gateway=self._gateway.stats(),
        )

    @property
    def gateway(self) -> ShardedOptimizerGateway:
        """The wrapped threaded gateway (for its shards and stats)."""
        return self._gateway

    # --------------------------------------------------------------- lifecycle

    def _check_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise RuntimeError(
                "AsyncOptimizerGateway is bound to the event loop that first "
                "used it; create one instance per loop"
            )

    async def close(self) -> None:
        """Stop admitting, flush and drain every queued request, release.

        Queued entries are dispatched (their waiters get real answers, not
        cancellations), in-flight batches are awaited, and then the dispatch
        pool — plus the wrapped gateway, when owned — is shut down.
        Idempotent; concurrent requests racing ``close`` either complete or
        see the closed error at admission.
        """
        if self._closed:
            return
        self._check_loop()
        self._closed = True
        for group in list(self._windows):
            self._flush(group)
        while self._dispatches:
            await asyncio.gather(*list(self._dispatches), return_exceptions=True)
            # Completion callbacks (which settle waiters and may flush the
            # next wave of windows) run via call_soon; yield so they do.
            await asyncio.sleep(0)
        self._executor.shutdown(wait=True)
        if self._own_gateway:
            self._gateway.close()

    async def __aenter__(self) -> "AsyncOptimizerGateway":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
