"""The persistent disk tier and the memory-over-disk composite cache.

The in-memory LRU (:class:`~repro.service.cache.MemoryTier`) evaporates on
every process restart, which forfeits the system's whole value proposition
— plans computed once, served many times.  This module adds:

* :class:`DiskTier` — an append-only log of serialized cache entries with
  an in-memory offset index.  Appends are O(1) writes; lookups are one
  seek plus one record decode; deletions are tombstone records; restart
  recovery is a single forward scan that also truncates a torn tail (a
  crash mid-append loses at most the last record, never the log).  Every
  record carries the entry's :class:`~repro.service.provenance.Provenance`,
  so :meth:`DiskTier.invalidate` retires exactly the entries an
  :class:`~repro.service.provenance.InvalidationPredicate` names, and
  snapshots (:meth:`DiskTier.export_snapshot`) are self-describing files
  shippable between shards;
* :class:`TieredPlanCache` — memory over disk with promote-on-hit and a
  write policy: ``write-through`` (default) persists every entry at put
  time, ``write-back`` persists lazily on memory eviction (cheaper puts,
  but a crash loses memory-resident entries).  The composite satisfies the
  :class:`~repro.service.cache.CacheTier` protocol, so the service,
  gateway, and async front-end serve through it unchanged — a disk hit is
  a cache hit that no DP run is ever spent on, restart or not.

Locking: each tier locks its own state.  The composite's :meth:`peek` is
memory-only (never I/O), which is what lets the sharded gateway keep its
singleflight bookkeeping under its own lock without ever holding that lock
across a disk read — :meth:`get`/:meth:`probe`, which may touch disk, are
called by the gateway *outside* its lock.
"""

from __future__ import annotations

import io
import json
import os
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterable, Iterator

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.cluster.serialization import (
    plans_from_wire,
    plans_to_wire,
    timing_from_wire,
    timing_to_wire,
)
from repro.core.envelope import EnvelopeIndex
from repro.service.cache import CacheStats, MemoryTier
from repro.service.provenance import InvalidationPredicate, Provenance
from repro.service.service import SCALAR_ENTRY, CacheEntry

#: First line of every log and snapshot file; readers reject other formats.
LOG_MAGIC = {"t": "header", "format": "repro-plan-cache", "version": 1}


class DiskTierLockedError(RuntimeError):
    """The log is already open for writing in another process.

    The log format is single-writer: interleaved appends from two processes
    (say, ``cache invalidate`` against a directory a live ``serve-batch``
    is using) would corrupt records.  Each :class:`DiskTier` therefore holds
    an exclusive advisory lock for the lifetime of its handles, and a
    second opener fails fast with this error instead of silently writing.
    """


# ------------------------------------------------------------------ entry codec


def entry_to_wire(entry: CacheEntry) -> dict[str, Any]:
    """JSON-compatible encoding of a cache entry (plans, timing, provenance).

    Envelope entries additionally carry their ``kind`` and the breakpoint
    index (:meth:`~repro.core.envelope.EnvelopeIndex.to_wire`) — the
    breakpoints are *shipped*, not recomputed on decode, so both sides of a
    disk or network round trip bind every θ to the same segment.  Scalar
    entries omit both fields, keeping pre-envelope logs byte-compatible.
    """
    wire = {
        "plans": plans_to_wire(entry.canonical_plans),
        "n_partitions": entry.n_partitions,
        "simulated": timing_to_wire(entry.simulated),
        "backend_used": entry.backend_used,
        "provenance": entry.provenance.to_wire() if entry.provenance else None,
    }
    if entry.kind != SCALAR_ENTRY:
        wire["kind"] = entry.kind
    if entry.envelope is not None:
        wire["envelope"] = entry.envelope.to_wire()
    return wire


def entry_from_wire(data: dict[str, Any]) -> CacheEntry:
    """Rebuild a cache entry from :func:`entry_to_wire` output."""
    provenance = data.get("provenance")
    envelope = data.get("envelope")
    return CacheEntry(
        canonical_plans=plans_from_wire(data["plans"]),
        n_partitions=int(data["n_partitions"]),
        simulated=timing_from_wire(data["simulated"]),
        backend_used=str(data.get("backend_used", "")),
        provenance=Provenance.from_wire(provenance) if provenance else None,
        kind=str(data.get("kind", SCALAR_ENTRY)),
        envelope=EnvelopeIndex.from_wire(envelope) if envelope else None,
    )


# -------------------------------------------------------------------- disk tier


class DiskTier:
    """Append-only persistent cache tier with an in-memory offset index.

    The log holds one JSON record per line: a header, then ``put`` records
    (key, serialized entry) and ``del`` tombstones.  The index maps each
    live key to the byte offset of its latest ``put`` record and keeps the
    record's :class:`Provenance` resident, so invalidation predicates
    evaluate without touching the file and :meth:`entries` can enumerate
    provenance cheaply.  Superseded and tombstoned records stay in the log
    until :meth:`compact` rewrites it.

    ``sync=True`` fsyncs after every append (durable against power loss,
    slow); the default flushes to the OS only, which survives process
    crashes — the failure mode restarts actually come from.

    ``compact_ratio`` enables automatic compaction: whenever the fraction
    of live records among all log records drops below the ratio, the log is
    rewritten at the next open (right after recovery) or close.  Those two
    points are deliberately the only triggers — compaction holds the tier
    lock for a full log rewrite, which is acceptable at lifecycle edges but
    not mid-serving.  ``0.0`` (default) never auto-compacts; explicit
    :meth:`compact` always works regardless.

    Standalone, the tier satisfies :class:`~repro.service.cache.CacheTier`
    with one documented deviation: :meth:`peek` performs a (stat-free)
    disk read, so compose it under :class:`TieredPlanCache` — whose peek is
    memory-only — before handing it to lock-holding callers.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        sync: bool = False,
        compact_ratio: float = 0.0,
    ) -> None:
        if not 0.0 <= compact_ratio <= 1.0:
            raise ValueError(
                f"compact_ratio must be in [0, 1], got {compact_ratio}"
            )
        self.path = Path(path)
        self.sync = sync
        self.compact_ratio = compact_ratio
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._offsets: dict[str, int] = {}
        self._provenance: dict[str, Provenance | None] = {}
        self._kinds: dict[str, str] = {}
        #: Total records appended to the log (puts + tombstones, not the
        #: header); ``len(_offsets) / _total_records`` is the live ratio the
        #: auto-compaction policy watches.
        self._total_records = 0
        self._lockfile: io.BufferedRandom | None = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._acquire_writer_lock()
        # An orphaned temp file means a previous process died between
        # exporting its compaction snapshot and swapping it in; the live log
        # is the source of truth, so the leftover is garbage.  Safe to drop
        # only now, under the writer lock — a *live* compaction elsewhere
        # would have kept the lock, and we would not be here.
        self.path.with_suffix(self.path.suffix + ".compact").unlink(
            missing_ok=True
        )
        try:
            self._recover()
            self._appender = open(self.path, "ab")
            self._reader = open(self.path, "rb")
        except BaseException:
            self._release_writer_lock()
            raise
        # Open-time auto-compaction: recovery just counted the dead weight a
        # previous process left behind; shedding it now is the one moment a
        # rewrite delays nothing but startup.
        if self._needs_compaction():
            self.compact()

    # ----------------------------------------------------------- writer lock

    def _acquire_writer_lock(self) -> None:
        """Take the log's exclusive advisory lock, or fail fast.

        The lock lives on a sibling ``.lock`` file (not the log itself) so
        compaction can close and replace the log without a window in which
        another process could sneak in as writer.  No-op where ``fcntl`` is
        unavailable.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        lockfile = open(self.path.with_suffix(self.path.suffix + ".lock"), "a+b")
        try:
            fcntl.flock(lockfile.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            lockfile.seek(0)
            holder = lockfile.read(64).decode(errors="replace").strip()
            lockfile.close()
            raise DiskTierLockedError(
                f"plan-cache log {self.path} is in use by pid "
                f"{holder or 'unknown'}; the log is single-writer — close "
                "that process (or point this one at another cache directory)"
            ) from None
        lockfile.truncate(0)
        lockfile.seek(0)
        lockfile.write(str(os.getpid()).encode())
        lockfile.flush()
        self._lockfile = lockfile

    def _release_writer_lock(self) -> None:
        if self._lockfile is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._lockfile.fileno(), fcntl.LOCK_UN)
            self._lockfile.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
        self._lockfile = None

    # ---------------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Rebuild the index by one forward scan; truncate any torn tail."""
        if not self.path.exists():
            with open(self.path, "wb") as fresh:
                fresh.write(_record_bytes(LOG_MAGIC))
            return
        good_end = 0
        with open(self.path, "rb") as log:
            first = log.readline()
            try:
                header = json.loads(first)
                if header.get("format") != LOG_MAGIC["format"]:
                    raise ValueError(
                        f"{self.path} is not a plan-cache log "
                        f"(format {header.get('format')!r})"
                    )
            except json.JSONDecodeError:
                raise ValueError(f"{self.path} is not a plan-cache log") from None
            good_end = log.tell()
            while True:
                offset = log.tell()
                line = log.readline()
                if not line:
                    break
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail: a crash mid-append; drop it below
                if not line.endswith(b"\n"):
                    break  # complete JSON but unterminated: also torn
                good_end = log.tell()
                record_type = record.get("t")
                if record_type == "put":
                    key = record["k"]
                    self._offsets[key] = offset
                    provenance = record["entry"].get("provenance")
                    self._provenance[key] = (
                        Provenance.from_wire(provenance) if provenance else None
                    )
                    self._kinds[key] = record["entry"].get("kind", SCALAR_ENTRY)
                    self._total_records += 1
                elif record_type == "del":
                    self._offsets.pop(record["k"], None)
                    self._provenance.pop(record["k"], None)
                    self._kinds.pop(record["k"], None)
                    self._total_records += 1
        if good_end < self.path.stat().st_size:
            with open(self.path, "r+b") as log:
                log.truncate(good_end)

    # ------------------------------------------------------------------ basics

    def _append(self, record: dict[str, Any]) -> int:
        """Append one record; returns its byte offset.  Caller holds the lock."""
        payload = _record_bytes(record)
        offset = self._appender.tell()
        self._appender.write(payload)
        self._appender.flush()
        if self.sync:
            os.fsync(self._appender.fileno())
        self._total_records += 1
        return offset

    def _read_entry(self, offset: int) -> CacheEntry:
        """Decode the ``put`` record at ``offset``.  Caller holds the lock."""
        self._reader.seek(offset)
        record = json.loads(self._reader.readline())
        return entry_from_wire(record["entry"])

    def get(self, key: str) -> CacheEntry | None:
        """Read an entry from disk, counting a hit or a miss."""
        with self._lock:
            offset = self._offsets.get(key)
            if offset is None:
                self.stats.misses += 1
                return None
            entry = self._read_entry(offset)
            self.stats.hits += 1
            return entry

    def probe(self, key: str) -> CacheEntry | None:
        """Like :meth:`get` but an absent key counts nothing."""
        with self._lock:
            offset = self._offsets.get(key)
            if offset is None:
                return None
            entry = self._read_entry(offset)
            self.stats.hits += 1
            return entry

    def peek(self, key: str) -> CacheEntry | None:
        """Read an entry without statistics effects (still one disk read)."""
        with self._lock:
            offset = self._offsets.get(key)
            if offset is None:
                return None
            return self._read_entry(offset)

    def put(self, key: str, entry: CacheEntry) -> None:
        """Append the entry; the new record supersedes any older one."""
        record = {"t": "put", "k": key, "entry": entry_to_wire(entry)}
        with self._lock:
            self._offsets[key] = self._append(record)
            self._provenance[key] = entry.provenance
            self._kinds[key] = entry.kind

    def evict(self, key: str) -> bool:
        """Tombstone ``key`` if present (counted as an eviction)."""
        with self._lock:
            if key not in self._offsets:
                return False
            self._append({"t": "del", "k": key})
            del self._offsets[key]
            self._provenance.pop(key, None)
            self._kinds.pop(key, None)
            self.stats.evictions += 1
            return True

    def reclassify_miss_as_hit(self) -> None:
        """Recount one earlier miss as a hit (see the memory tier)."""
        with self._lock:
            if self.stats.misses > 0:
                self.stats.misses -= 1
            self.stats.hits += 1

    # ------------------------------------------------------------- invalidation

    def provenance_of(self, key: str) -> Provenance | None:
        """The stored provenance record for ``key`` (``None`` if absent)."""
        with self._lock:
            return self._provenance.get(key)

    def invalidate(self, predicate: InvalidationPredicate) -> list[str]:
        """Tombstone every entry whose provenance matches; returns their keys.

        Evaluated entirely against the resident provenance index — no
        record is read back — so invalidating a handful of entries in a
        million-entry log is O(keys), not O(log bytes).
        """
        with self._lock:
            doomed = [
                key
                for key, provenance in self._provenance.items()
                if predicate.matches(provenance)
            ]
            for key in doomed:
                self._append({"t": "del", "k": key})
                del self._offsets[key]
                del self._provenance[key]
                self._kinds.pop(key, None)
                self.stats.evictions += 1
            return doomed

    # -------------------------------------------------------------- inspection

    def keys(self) -> list[str]:
        """Live keys (a consistent copy)."""
        with self._lock:
            return list(self._offsets)

    def entries(self) -> Iterator[tuple[str, Provenance | None, str]]:
        """Iterate ``(key, provenance, kind)`` over live entries, index order."""
        with self._lock:
            items = [
                (key, provenance, self._kinds.get(key, SCALAR_ENTRY))
                for key, provenance in self._provenance.items()
            ]
        yield from items

    def live_ratio(self) -> float:
        """Fraction of log records still live (1.0 on an empty log)."""
        with self._lock:
            if self._total_records == 0:
                return 1.0
            return len(self._offsets) / self._total_records

    def _needs_compaction(self) -> bool:
        """Whether the auto-compaction policy says the log is worth rewriting."""
        if self.compact_ratio <= 0.0:
            return False
        with self._lock:
            if self._total_records == 0:
                return False
            return len(self._offsets) / self._total_records < self.compact_ratio

    def log_bytes(self) -> int:
        """Current size of the log file (includes dead records)."""
        with self._lock:
            return self._appender.tell()

    # ------------------------------------------------------- snapshots/compaction

    def export_records(self, keys: Iterable[str] | None = None) -> list[dict[str, Any]]:
        """Live ``put`` records (log-line form) for ``keys`` (default: all).

        The records are exactly what :meth:`export_snapshot` writes after
        its header — the disk format doubling as the wire format — so a
        rebalancer can ship a subset of one shard's entries over a frame
        without touching the filesystem.  Unknown keys are skipped (the
        caller asked for a routing slice, not a guarantee).  Stat-free.
        """
        with self._lock:
            if keys is None:
                wanted = sorted(self._offsets.items(), key=lambda item: item[1])
            else:
                wanted = sorted(
                    (
                        (key, self._offsets[key])
                        for key in set(keys)
                        if key in self._offsets
                    ),
                    key=lambda item: item[1],
                )
            records = []
            for __, offset in wanted:
                self._reader.seek(offset)
                records.append(json.loads(self._reader.readline()))
            return records

    def import_records(
        self, records: Iterable[dict[str, Any]], overwrite: bool = True
    ) -> int:
        """Merge ``put`` records (log-line form) into this tier; returns count.

        The append path is identical to :meth:`put` — each record lands in
        the log and the offset/provenance indexes — so imported entries are
        durable and survive this process exactly like locally computed
        ones.  Non-``put`` records are ignored (a shipment carries entries,
        not deletion history).
        """
        imported = 0
        with self._lock:
            for record in records:
                if record.get("t") != "put":
                    continue
                key = record["k"]
                if not overwrite and key in self._offsets:
                    continue
                self._offsets[key] = self._append(record)
                provenance = record["entry"].get("provenance")
                self._provenance[key] = (
                    Provenance.from_wire(provenance) if provenance else None
                )
                self._kinds[key] = record["entry"].get("kind", SCALAR_ENTRY)
                imported += 1
        return imported

    def export_snapshot(self, path: str | os.PathLike) -> int:
        """Write a compacted copy of the live entries; returns entry count.

        The snapshot is itself a valid tier log (header plus ``put``
        records only), so it can be opened directly as a :class:`DiskTier`
        on another shard or imported into an existing one.
        """
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            live = sorted(self._offsets.items(), key=lambda item: item[1])
            with open(destination, "wb") as snapshot:
                snapshot.write(_record_bytes(LOG_MAGIC))
                for key, offset in live:
                    self._reader.seek(offset)
                    snapshot.write(self._reader.readline())
            return len(live)

    def import_snapshot(
        self, path: str | os.PathLike, overwrite: bool = True
    ) -> int:
        """Merge a snapshot's entries into this tier; returns imported count.

        With ``overwrite=False`` keys already live here are kept as-is
        (merge semantics for unioning shard snapshots); the default lets
        the snapshot win.  Tombstones in the source are ignored — a
        snapshot ships *entries*, not deletion history.
        """
        source = Path(path)
        with self._lock:
            with open(source, "rb") as snapshot:
                header = json.loads(snapshot.readline())
                if header.get("format") != LOG_MAGIC["format"]:
                    raise ValueError(
                        f"{source} is not a plan-cache snapshot "
                        f"(format {header.get('format')!r})"
                    )
                records = [json.loads(line) for line in snapshot]
            return self.import_records(records, overwrite=overwrite)

    def compact(self) -> int:
        """Rewrite the log with live records only; returns bytes reclaimed.

        Crash-safe at every step: a failure while exporting the snapshot
        (ENOSPC is the classic) leaves the live log, the open handles, and
        the index untouched — the tier keeps serving; a failure at or after
        the swap still reopens usable handles on whichever file owns the
        path.  The ``.compact`` temp file never outlives this call, and one
        orphaned by a crashed *process* is removed at the next open.
        """
        with self._lock:
            before = self._appender.tell()
            replacement = self.path.with_suffix(self.path.suffix + ".compact")
            try:
                self.export_snapshot(replacement)
            except BaseException:
                replacement.unlink(missing_ok=True)
                raise
            # The snapshot is complete and durable under the temp name; only
            # now is it safe to release the handles for the swap.
            self._appender.close()
            self._reader.close()
            try:
                os.replace(replacement, self.path)
            finally:
                try:
                    self._offsets.clear()
                    self._provenance.clear()
                    self._kinds.clear()
                    self._total_records = 0
                    self._recover()
                finally:
                    # Whatever happened above — swap refused, recovery
                    # failed — the tier must come back with open handles, or
                    # every later get/put dies on a closed file.
                    self._appender = open(self.path, "ab")
                    self._reader = open(self.path, "rb")
                    replacement.unlink(missing_ok=True)
            return before - self._appender.tell()

    # ------------------------------------------------------------------- stats

    def snapshot(self) -> CacheStats:
        """A consistent copy of the counters."""
        with self._lock:
            return replace(self.stats)

    def snapshot_with_size(self) -> tuple[CacheStats, int]:
        """Counters plus live entry count, read in one lock hold."""
        with self._lock:
            return replace(self.stats), len(self._offsets)

    def clear(self) -> None:
        """Drop every entry, truncate the log, reset statistics."""
        with self._lock:
            self._appender.truncate(0)
            self._appender.seek(0)
            self._appender.write(_record_bytes(LOG_MAGIC))
            self._appender.flush()
            self._offsets.clear()
            self._provenance.clear()
            self._kinds.clear()
            self._total_records = 0
            self.stats = CacheStats()

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Flush and release the file handles and writer lock.  Idempotent.

        With ``compact_ratio`` set, a log that accumulated too much dead
        weight is compacted on the way out, so the next opener recovers a
        minimal log instead of replaying superseded records.
        """
        with self._lock:
            if not self._appender.closed and self._needs_compaction():
                self.compact()
            for handle in (self._appender, self._reader):
                try:
                    handle.close()
                except ValueError:  # pragma: no cover - already closed
                    pass
            self._release_writer_lock()

    def __enter__(self) -> "DiskTier":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._offsets

    def __len__(self) -> int:
        with self._lock:
            return len(self._offsets)


def _record_bytes(record: dict[str, Any]) -> bytes:
    """One log line: compact separators, no embedded newlines, newline end.

    ``allow_nan=False`` keeps every record strict standard JSON — the wire
    codecs encode non-finite floats as sentinel strings, and a bare
    ``Infinity``/``NaN`` token reaching this point is a codec bug worth an
    exception, not a silently unparseable log.
    """
    return json.dumps(record, separators=(",", ":"), allow_nan=False).encode() + b"\n"


# -------------------------------------------------------------------- composite


@dataclass
class TieredStats:
    """Counters of a :class:`TieredPlanCache`, CacheStats-compatible.

    ``hits``/``misses``/``evictions``/``hit_rate`` mean what they mean on
    :class:`~repro.service.cache.CacheStats` (so gateway aggregation and
    every existing dashboard keep working); the extra counters break the
    hits down by tier and expose the data movement between them.
    ``evictions`` counts entries that left the *composite* entirely —
    a memory eviction whose entry remains on disk is a ``demotion``, not a
    loss.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Disk hits copied up into the memory tier.
    promotions: int = 0
    #: Memory evictions whose entry remains on (or was written to) disk.
    demotions: int = 0
    #: Entries written to the disk tier (puts plus write-back demotions).
    disk_writes: int = 0
    #: Entries removed by provenance-predicate invalidation.
    invalidated: int = 0

    @property
    def hits(self) -> int:
        """Lookups answered from either tier."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready counters, a superset of ``CacheStats.to_dict()``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "disk_writes": self.disk_writes,
            "invalidated": self.invalidated,
        }


class TieredPlanCache:
    """Memory-over-disk composite cache with promote-on-hit.

    Lookup order is memory first, then disk; a disk hit is promoted into
    memory (unless ``promote_on_hit=False``) so the hot set migrates back
    up after a restart.  Writes follow ``write_policy``:

    * ``"write-through"`` (default) — every put lands on disk immediately;
      a memory eviction is pure accounting (the entry is already durable);
    * ``"write-back"`` — puts stay in memory; the entry reaches disk only
      when the LRU demotes it.  Cheaper per put, but entries still
      memory-resident at a crash are lost.

    All hit/miss/eviction accounting lives in this composite's
    :class:`TieredStats`; the wrapped tiers' own counters are not consulted
    (the composite uses their stat-free operations), so one logical lookup
    is classified exactly once no matter how many tiers it touched.

    :meth:`peek` is memory-only and I/O-free by contract — it is what the
    service's batch dedup and the gateway's singleflight call while holding
    their own locks.  :meth:`get`/:meth:`probe` may read disk and must be
    called unlocked (the gateway does).
    """

    WRITE_POLICIES = ("write-through", "write-back")

    def __init__(
        self,
        memory_capacity: int = 256,
        disk: DiskTier | None = None,
        write_policy: str = "write-through",
        promote_on_hit: bool = True,
    ) -> None:
        if write_policy not in self.WRITE_POLICIES:
            raise ValueError(
                f"write_policy must be one of {self.WRITE_POLICIES}, "
                f"got {write_policy!r}"
            )
        self.disk = disk
        self.write_policy = write_policy
        self.promote_on_hit = promote_on_hit
        self.capacity = memory_capacity
        self.stats = TieredStats()
        self._lock = threading.RLock()
        self.memory: MemoryTier[CacheEntry] = MemoryTier(
            capacity=memory_capacity, on_evict=self._on_memory_evict
        )

    # ----------------------------------------------------------------- lookups

    def get(self, key: str) -> CacheEntry | None:
        """Memory, then disk (promoting), counting one hit or miss total."""
        value = self.memory.touch(key)
        if value is not None:
            with self._lock:
                self.stats.memory_hits += 1
            return value
        value = self._disk_read(key)
        if value is not None:
            return value
        with self._lock:
            self.stats.misses += 1
        return None

    def probe(self, key: str) -> CacheEntry | None:
        """Like :meth:`get` but an absent key counts nothing."""
        value = self.memory.touch(key)
        if value is not None:
            with self._lock:
                self.stats.memory_hits += 1
            return value
        return self._disk_read(key)

    def _disk_read(self, key: str) -> CacheEntry | None:
        """Stat-free disk read plus promotion and disk-hit accounting."""
        if self.disk is None:
            return None
        value = self.disk.peek(key)
        if value is None:
            return None
        promoted = False
        if self.promote_on_hit and self.capacity > 0:
            self.memory.put(key, value)
            promoted = True
        with self._lock:
            self.stats.disk_hits += 1
            if promoted:
                self.stats.promotions += 1
        return value

    def peek(self, key: str) -> CacheEntry | None:
        """Memory-resident value only; never touches disk or statistics."""
        return self.memory.peek(key)

    # ------------------------------------------------------------------ writes

    def put(self, key: str, value: CacheEntry) -> None:
        """Insert per the write policy (see class docstring)."""
        if self.write_policy == "write-through" and self.disk is not None:
            self.disk.put(key, value)
            with self._lock:
                self.stats.disk_writes += 1
        self.memory.put(key, value)

    def _on_memory_evict(self, key: str, value: CacheEntry) -> None:
        """Capacity eviction from memory: demote or count the loss."""
        if self.disk is None:
            with self._lock:
                self.stats.evictions += 1
            return
        if self.write_policy == "write-back":
            self.disk.put(key, value)
            with self._lock:
                self.stats.demotions += 1
                self.stats.disk_writes += 1
        else:
            with self._lock:
                self.stats.demotions += 1

    def evict(self, key: str) -> bool:
        """Drop ``key`` from both tiers; counted once if either held it."""
        dropped_memory = self.memory.evict(key)
        dropped_disk = self.disk.evict(key) if self.disk is not None else False
        if dropped_memory or dropped_disk:
            with self._lock:
                self.stats.evictions += 1
            return True
        return False

    # ------------------------------------------------------- snapshot shipping

    def keys(self) -> list[str]:
        """Distinct live keys across both tiers, sorted."""
        resident = set(self.memory.keys())
        if self.disk is not None:
            resident.update(self.disk.keys())
        return sorted(resident)

    def export_records(self, keys: Iterable[str] | None = None) -> list[dict[str, Any]]:
        """Stat-free wire records for live entries (disk first, then memory).

        The disk tier serves what it holds verbatim (no decode/re-encode
        round trip); entries resident only in memory — the write-back
        policy's window, or a disk-less cache — are encoded on the fly.
        The result is the same ``put``-record form as
        :meth:`DiskTier.export_records`, sorted by key.
        """
        records: dict[str, dict[str, Any]] = {}
        if self.disk is not None:
            for record in self.disk.export_records(keys):
                records[record["k"]] = record
        wanted = list(self.memory.keys()) if keys is None else list(keys)
        for key in wanted:
            if key in records:
                continue
            entry = self.memory.peek(key)
            if entry is not None:
                records[key] = {"t": "put", "k": key, "entry": entry_to_wire(entry)}
        return [records[key] for key in sorted(records)]

    def import_records(
        self, records: Iterable[dict[str, Any]], overwrite: bool = True
    ) -> int:
        """Merge shipped ``put`` records through the normal write path.

        Each entry goes through :meth:`put`, so the write policy applies —
        under the default write-through an imported entry is durable in the
        disk log before this returns, which is what lets a rebalanced key's
        new owner restart and still serve it from cache.
        """
        imported = 0
        for record in records:
            if record.get("t") != "put":
                continue
            key = record["k"]
            if not overwrite and key in self:
                continue
            self.put(key, entry_from_wire(record["entry"]))
            imported += 1
        return imported

    # ------------------------------------------------------------- invalidation

    def invalidate(self, predicate: InvalidationPredicate) -> list[str]:
        """Remove every entry (both tiers) whose provenance matches.

        Returns the removed keys.  Memory entries are checked against their
        own carried provenance, disk entries against the provenance index,
        so an entry resident in both tiers cannot survive in one of them
        and "selective" stays selective after promotions and demotions.
        """
        doomed: set[str] = set()
        if self.disk is not None:
            doomed.update(self.disk.invalidate(predicate))
        for key in self.memory.keys():
            entry = self.memory.peek(key)
            if entry is not None and predicate.matches(entry.provenance):
                doomed.add(key)
        for key in doomed:
            self.memory.evict(key)
        with self._lock:
            self.stats.invalidated += len(doomed)
            self.stats.evictions += len(doomed)
        return sorted(doomed)

    # ------------------------------------------------------------------- stats

    def reclassify_miss_as_hit(self) -> None:
        """Recount one earlier miss as a (memory) hit; never goes negative."""
        with self._lock:
            if self.stats.misses > 0:
                self.stats.misses -= 1
            self.stats.memory_hits += 1

    def snapshot(self) -> TieredStats:
        """A consistent copy of the composite counters."""
        with self._lock:
            return replace(self.stats)

    def snapshot_with_size(self) -> tuple[TieredStats, int]:
        """Counters plus distinct resident keys across both tiers."""
        with self._lock:
            return replace(self.stats), len(self)

    def clear(self) -> None:
        """Drop all entries in both tiers and reset statistics."""
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()
        with self._lock:
            self.stats = TieredStats()

    # --------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release the disk tier's file handles (memory needs no teardown)."""
        if self.disk is not None:
            self.disk.close()

    def __contains__(self, key: str) -> bool:
        if key in self.memory:
            return True
        return self.disk is not None and key in self.disk

    def __len__(self) -> int:
        if self.disk is None:
            return len(self.memory)
        return len(set(self.memory.keys()) | set(self.disk.keys()))
