"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a random Steinbrunn-style query to a JSON file;
* ``optimize`` — optimize a JSON query with MPQ and print the chosen plan
  (or Pareto frontier) plus the cluster accounting the paper reports;
* ``serve-batch`` — run a batch of query files through the
  :class:`~repro.service.OptimizerService` (plan cache + warm worker pool)
  and report per-query plans plus cache statistics; with ``--shards N``
  (N > 1) the batch is served by a
  :class:`~repro.service.ShardedOptimizerGateway` — fingerprint-range
  routing to N independent shards, driven by ``--gateway-threads`` request
  handlers, with in-flight coalescing and aggregated gateway statistics;
  with ``--async`` the batch is submitted concurrently through the
  :class:`~repro.service.AsyncOptimizerGateway` front-end (adaptive
  micro-batching bounded by ``--batch-window-ms``/``--max-batch``,
  admission control bounded by ``--max-pending``) and the report adds
  queue/batching/rejection statistics;
  with ``--cache-dir DIR`` each shard's plan cache gains a persistent disk
  tier (append-only log ``DIR/shard-N.log``), so a later invocation with
  the same directory serves previously-seen queries from disk without
  re-optimizing — warm-restart serving;
  with ``--connect ADDR[,ADDR...]`` the batch is instead routed to
  out-of-process shard servers through the
  :class:`~repro.service.NetworkOptimizerGateway` (consistent-hash
  fingerprint routing, per-shard circuit breakers);
* ``shard-server`` — run one optimizer shard as a long-lived server
  process speaking the length-prefixed frame protocol on a unix socket or
  TCP port; N of these behind a ``--connect`` router are the
  out-of-process deployment shape (each owns its worker pool and, with
  ``--cache-dir``, its own single-writer disk cache log);
* ``shard-fleet`` — run a supervised fleet of N shard servers behind one
  command: the :class:`~repro.service.ShardFleet` supervisor spawns the
  processes on unix sockets under ``--socket-dir``, restarts crashed ones
  with exponential backoff, mirrors the live endpoint map to
  ``--socket-dir/membership.json`` after every change, and (as a library,
  via :meth:`~repro.service.ShardFleet.add_shard` /
  :meth:`~repro.service.ShardFleet.remove_shard`) rebalances the ring live
  by shipping moved keys' cache entries to their new owner first;
* ``cache`` — inspect and manage those persistent plan-cache logs:
  ``inspect`` (entries and their provenance records), ``export`` (write a
  compacted snapshot shippable to another shard or machine), ``import``
  (merge a snapshot into a log), and ``invalidate`` (selectively retire
  entries by provenance predicate — backend, registry generation, creation
  time, settings signature — without touching other entries);
* ``backends`` — print the registered enumeration backends and their
  declared capability matrix (what ``--backend auto`` chooses from).

Examples::

    python -m repro generate --tables 10 --kind star -o query.json
    python -m repro optimize query.json --workers 16
    python -m repro optimize query.json --space bushy --workers 8
    python -m repro optimize query.json --objectives time,buffer --alpha 10
    python -m repro optimize query.json --orders --backend legacy
    python -m repro serve-batch q1.json q2.json --workers 8 --repeat 3
    python -m repro serve-batch q*.json --pool persistent --json
    python -m repro serve-batch q*.json --shards 4 --gateway-threads 8
    python -m repro serve-batch q*.json --shards 4 --async --batch-window-ms 2
    python -m repro serve-batch q*.json --shards 4 --cache-dir /var/cache/mpq
    python -m repro shard-server --listen unix:/run/mpq/shard-0.sock --shard-id 0
    python -m repro shard-server --listen 127.0.0.1:7401 --cache-dir /var/cache/mpq
    python -m repro shard-fleet --shards 3 --socket-dir /run/mpq --cache-dir /var/cache/mpq
    python -m repro serve-batch q*.json --connect unix:/run/mpq/shard-0.sock,unix:/run/mpq/shard-1.sock
    python -m repro serve-batch q*.json --connect unix:/run/mpq/shard-0.sock --hedge-after-ms 50
    python -m repro cache inspect /var/cache/mpq/shard-*.log
    python -m repro cache export /var/cache/mpq/shard-0.log -o snapshot.log
    python -m repro cache import snapshot.log --into /var/cache/mpq/shard-0.log
    python -m repro cache invalidate /var/cache/mpq/*.log --backend fastdp --below-generation 7
    python -m repro backends --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.algorithms.mpq import optimize_mpq
from repro.config import Backend, Objective, OptimizerSettings, PlanSpace
from repro.query.generator import SteinbrunnGenerator
from repro.query.io import load_query, plan_to_dict, save_query
from repro.query.query import JoinGraphKind


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MPQ — massively parallel query optimization "
        "(Trummer & Koch, VLDB 2016).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a random query")
    generate.add_argument("--tables", type=int, default=8)
    generate.add_argument(
        "--kind",
        choices=[kind.value for kind in JoinGraphKind],
        default=JoinGraphKind.STAR.value,
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True, help="output JSON file")

    optimize = commands.add_parser("optimize", help="optimize a JSON or SQL query")
    optimize.add_argument(
        "query", nargs="?", default=None, help="query JSON file"
    )
    optimize.add_argument(
        "--sql",
        default=None,
        help="SPJ SQL text (requires --catalog) instead of a query file",
    )
    optimize.add_argument(
        "--catalog", default=None, help="catalog JSON file for --sql"
    )
    optimize.add_argument("--workers", type=int, default=1)
    optimize.add_argument(
        "--space",
        choices=[space.value for space in PlanSpace],
        default=PlanSpace.LINEAR.value,
    )
    optimize.add_argument(
        "--objectives",
        default="time",
        help="comma-separated cost metrics: time[,buffer]",
    )
    optimize.add_argument("--alpha", type=float, default=1.0)
    optimize.add_argument(
        "--orders", action="store_true", help="track interesting orders"
    )
    optimize.add_argument(
        "--backend",
        choices=[backend.value for backend in Backend],
        default=Backend.AUTO.value,
        help="enumeration core: auto (fastest capable and available, "
        "default), the legacy object DP, the fastdp bitset core, or the "
        "vecdp array core (needs numpy)",
    )
    optimize.add_argument(
        "--parametric",
        action="store_true",
        help="optimize over the parameter theta in [0,1] weighting the two "
        "objectives; returns the full lower-envelope frontier unless "
        "--theta picks one point",
    )
    optimize.add_argument(
        "--theta",
        type=float,
        default=None,
        metavar="T",
        help="bind the parametric request at this theta (requires "
        "--parametric); served from a cached envelope when one exists",
    )
    optimize.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    serve = commands.add_parser(
        "serve-batch",
        help="optimize a batch of query files through the caching service",
    )
    serve.add_argument("queries", nargs="+", help="query JSON files")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--space",
        choices=[space.value for space in PlanSpace],
        default=PlanSpace.LINEAR.value,
    )
    serve.add_argument(
        "--objectives",
        default="time",
        help="comma-separated cost metrics: time[,buffer]",
    )
    serve.add_argument("--alpha", type=float, default=1.0)
    serve.add_argument(
        "--orders", action="store_true", help="track interesting orders"
    )
    serve.add_argument(
        "--backend",
        choices=[backend.value for backend in Backend],
        default=Backend.AUTO.value,
        help="enumeration core: auto (fastest capable and available, "
        "default), the legacy object DP, the fastdp bitset core, or the "
        "vecdp array core (needs numpy)",
    )
    serve.add_argument(
        "--parametric",
        action="store_true",
        help="optimize over the parameter theta in [0,1] weighting the two "
        "objectives; returns the full lower-envelope frontier unless "
        "--theta picks one point",
    )
    serve.add_argument(
        "--theta",
        type=float,
        default=None,
        metavar="T",
        help="bind the parametric request at this theta (requires "
        "--parametric); served from a cached envelope when one exists",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="serve the batch this many times (later rounds hit the cache)",
    )
    serve.add_argument(
        "--pool",
        choices=("serial", "persistent"),
        default="serial",
        help="partition executor: in-process serial, or a warm process pool",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256, help="plan-cache capacity"
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="directory of persistent plan-cache logs (one shard-N.log per "
        "shard); entries survive into later invocations with the same "
        "directory and are served from disk instead of re-optimized",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve through a sharded gateway with this many independent "
        "OptimizerService shards (1 = a single service, the default)",
    )
    serve.add_argument(
        "--gateway-threads",
        type=int,
        default=None,
        help="request-handler threads driving the gateway's per-shard "
        "sub-batches (default: one per shard; requires --shards > 1)",
    )
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve the batch through the asyncio front-end "
        "(AsyncOptimizerGateway): requests are submitted concurrently, "
        "misses micro-batched, and admission control enforced",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=None,
        help="async batching window upper bound in milliseconds "
        "(requires --async; default 2.0)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="flush an async micro-batch early at this many unique "
        "fingerprints (requires --async; default 16)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="async admission-control bound on outstanding requests; "
        "beyond it requests are rejected with a retry-after "
        "(requires --async; default 256)",
    )
    serve.add_argument(
        "--connect",
        default=None,
        metavar="ADDR[,ADDR...]",
        help="route the batch to running shard servers at these endpoints "
        "(unix:/path or host:port, comma-separated) through the "
        "consistent-hash network gateway instead of optimizing in-process",
    )
    serve.add_argument(
        "--hedge-after-ms",
        type=float,
        default=0.0,
        help="with --connect: fire a duplicate request at the next ring "
        "owner when the primary shard has not answered within this floor "
        "(scaled up by its latency EWMA); first usable response wins. "
        "0 (default) disables hedging",
    )
    serve.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    shard_server = commands.add_parser(
        "shard-server",
        help="serve one optimizer shard over a unix socket or TCP port",
    )
    shard_server.add_argument(
        "--listen",
        required=True,
        help="endpoint to bind: unix:/path/to.sock or host:port",
    )
    shard_server.add_argument(
        "--shard-id",
        type=int,
        default=0,
        help="this shard's number (names its cache log and hello frame)",
    )
    shard_server.add_argument("--workers", type=int, default=4)
    shard_server.add_argument(
        "--space",
        choices=[space.value for space in PlanSpace],
        default=PlanSpace.LINEAR.value,
    )
    shard_server.add_argument(
        "--objectives",
        default="time",
        help="comma-separated cost metrics: time[,buffer]",
    )
    shard_server.add_argument("--alpha", type=float, default=1.0)
    shard_server.add_argument(
        "--orders", action="store_true", help="track interesting orders"
    )
    shard_server.add_argument(
        "--backend",
        choices=[backend.value for backend in Backend],
        default=Backend.AUTO.value,
        help="enumeration core: auto (fastest capable and available, "
        "default), the legacy object DP, the fastdp bitset core, or the "
        "vecdp array core (needs numpy)",
    )
    shard_server.add_argument(
        "--cache-size", type=int, default=256, help="plan-cache capacity"
    )
    shard_server.add_argument(
        "--cache-dir",
        default=None,
        help="directory for this shard's persistent cache log "
        "(shard-<id>.log; single-writer, flock-protected)",
    )
    shard_server.add_argument(
        "--max-in-flight",
        type=int,
        default=8,
        help="admission bound on concurrently running optimizations; "
        "beyond it requests are rejected 'overloaded' with a retry-after",
    )
    shard_server.add_argument(
        "--handler-threads",
        type=int,
        default=None,
        help="blocking-optimization thread pool size "
        "(default: --max-in-flight)",
    )
    shard_server.add_argument(
        "--inject-latency-ms",
        type=float,
        default=0.0,
        help="fault injection for tests/benchmarks: sleep this long before "
        "every optimization, simulating a degraded shard (default 0: off)",
    )

    shard_fleet = commands.add_parser(
        "shard-fleet",
        help="run a supervised fleet of shard servers on unix sockets",
    )
    shard_fleet.add_argument(
        "--shards", type=int, default=3, help="initial shard count"
    )
    shard_fleet.add_argument(
        "--socket-dir",
        required=True,
        help="directory for the fleet's unix sockets and membership.json",
    )
    shard_fleet.add_argument(
        "--cache-dir",
        default=None,
        help="directory for per-shard persistent cache logs (shard-<i>.log); "
        "also what lets a restarted shard come back warm",
    )
    shard_fleet.add_argument("--workers", type=int, default=4)
    shard_fleet.add_argument(
        "--cache-size", type=int, default=256, help="plan-cache capacity per shard"
    )
    shard_fleet.add_argument(
        "--max-in-flight",
        type=int,
        default=16,
        help="per-shard admission bound on concurrently running optimizations",
    )
    shard_fleet.add_argument(
        "--health-interval-ms",
        type=float,
        default=200.0,
        help="supervisor liveness-poll cadence",
    )
    shard_fleet.add_argument(
        "--log-dir",
        default=None,
        help="append each shard's stdout/stderr to <log-dir>/<name>.log "
        "(default: inherit the supervisor's stderr)",
    )

    cache = commands.add_parser(
        "cache",
        help="inspect and manage persistent plan-cache logs",
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    inspect = cache_commands.add_parser(
        "inspect", help="list a log's entries and their provenance records"
    )
    inspect.add_argument("logs", nargs="+", help="plan-cache log files")
    inspect.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    export = cache_commands.add_parser(
        "export",
        help="write a compacted snapshot of a log's live entries "
        "(openable as a log on another shard, or imported into one)",
    )
    export.add_argument("log", help="plan-cache log file")
    export.add_argument("-o", "--output", required=True, help="snapshot file")

    cache_import = cache_commands.add_parser(
        "import", help="merge a snapshot's entries into a log"
    )
    cache_import.add_argument("snapshot", help="snapshot (or log) file to read")
    cache_import.add_argument(
        "--into", required=True, help="plan-cache log to merge into"
    )
    cache_import.add_argument(
        "--keep-existing",
        action="store_true",
        help="keep entries already in the target when keys collide "
        "(default: the snapshot wins)",
    )

    invalidate = cache_commands.add_parser(
        "invalidate",
        help="retire entries matching a provenance predicate (all supplied "
        "conditions must hold); other entries keep serving",
    )
    invalidate.add_argument("logs", nargs="+", help="plan-cache log files")
    invalidate.add_argument(
        "--backend", default=None, help="match entries produced by this backend"
    )
    invalidate.add_argument(
        "--below-generation",
        type=int,
        default=None,
        help="match entries created below this backend-registry generation",
    )
    invalidate.add_argument(
        "--created-before",
        type=float,
        default=None,
        help="match entries created before this Unix timestamp",
    )
    invalidate.add_argument(
        "--settings-signature",
        default=None,
        help="match entries with this resolved settings signature",
    )
    invalidate.add_argument(
        "--all",
        dest="match_all",
        action="store_true",
        help="flush every entry (required spelling for the unconditional "
        "predicate; conditions above cannot be combined with it)",
    )
    invalidate.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    backends = commands.add_parser(
        "backends",
        help="list registered enumeration backends and their capabilities",
    )
    backends.add_argument(
        "--require",
        default=None,
        metavar="NAME",
        help="exit non-zero unless backend NAME is registered and available "
        "(deployment preflight check)",
    )
    backends.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    return parser


def _settings_from_args(args: argparse.Namespace) -> OptimizerSettings:
    objectives = []
    for token in args.objectives.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            objectives.append(Objective(token))
        except ValueError:
            raise SystemExit(
                f"unknown objective {token!r}; choose from "
                f"{[o.value for o in Objective]}"
            )
    theta = getattr(args, "theta", None)
    parametric = getattr(args, "parametric", False)
    if theta is not None and not parametric:
        raise SystemExit("--theta requires --parametric")
    if parametric and len(objectives) != 2:
        raise SystemExit(
            "--parametric needs exactly two objectives "
            "(e.g. --objectives time,buffer)"
        )
    return OptimizerSettings(
        plan_space=PlanSpace(args.space),
        objectives=tuple(objectives),
        alpha=args.alpha,
        consider_orders=args.orders,
        backend=Backend(args.backend),
        parametric=parametric,
        theta=theta,
    )


def _run_generate(args: argparse.Namespace) -> int:
    query = SteinbrunnGenerator(args.seed).query(
        args.tables, JoinGraphKind(args.kind)
    )
    save_query(query, args.output)
    print(f"wrote {query.name} ({args.tables} tables) to {args.output}")
    return 0


def _load_query_from_args(args: argparse.Namespace):
    if args.sql is not None:
        if args.catalog is None:
            raise SystemExit("--sql requires --catalog")
        from repro.query.io import load_catalog
        from repro.query.sql import parse_sql

        return parse_sql(args.sql, load_catalog(args.catalog))
    if args.query is None:
        raise SystemExit("provide a query JSON file or --sql with --catalog")
    return load_query(args.query)


def _run_optimize(args: argparse.Namespace) -> int:
    query = _load_query_from_args(args)
    settings = _settings_from_args(args)
    report = optimize_mpq(query, args.workers, settings)
    names = tuple(table.name for table in query.tables)
    if args.json:
        payload = {
            "query": query.name,
            "partitions": report.n_partitions,
            "backend_used": report.backend_used,
            "simulated_time_ms": report.simulated_time_ms,
            "network_bytes": report.network_bytes,
            "max_worker_memory_relations": report.max_worker_memory_relations,
            "plans": [plan_to_dict(plan, names) for plan in report.plans],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"query: {query.name} ({query.n_tables} tables)")
    print(
        f"partitions: {report.n_partitions} "
        f"(requested {args.workers} workers, {settings.plan_space} space)"
    )
    print(f"backend: {report.backend_used} (requested {args.backend})")
    print(f"simulated time: {report.simulated_time_ms:.2f} ms")
    print(f"network: {report.network_bytes:,} bytes")
    print(f"max worker memory: {report.max_worker_memory_relations} relations")
    if settings.is_multi_objective:
        print(f"pareto frontier: {len(report.plans)} plans (alpha={args.alpha})")
    print()
    print(report.best.pretty(names))
    print(f"\nbest cost: {tuple(report.best.cost)}")
    return 0


def _stats_dict(stats) -> dict:
    """JSON-ready cache counters via the stats object's own ``to_dict``.

    Every stats type (``CacheStats``, ``TieredStats``) serializes itself;
    hand-picking dataclass fields here is what once crashed ``--json`` on
    non-serializable members.  The ``getattr`` fallback keeps hand-rolled
    stats doubles in tests working.
    """
    to_dict = getattr(stats, "to_dict", None)
    if to_dict is not None:
        return to_dict()
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "lookups": stats.hits + stats.misses,
        "hit_rate": stats.hit_rate,
    }


def _tier_totals(gateway_stats) -> dict | None:
    """Tier counters summed over a gateway's shards, or ``None`` untiered.

    ``GatewayStats`` aggregates only the protocol-level hit/miss/eviction
    counters; when the shards carry tiered caches (``--cache-dir``), the
    memory/disk breakdown still matters at the top level — a warm restart
    is visible as disk hits, not as generic hits.
    """
    if gateway_stats is None:
        return None
    caches = [shard.cache for shard in gateway_stats.shards]
    if not any(hasattr(cache, "disk_hits") for cache in caches):
        return None
    names = (
        "memory_hits",
        "disk_hits",
        "promotions",
        "demotions",
        "disk_writes",
        "invalidated",
    )
    return {
        name: sum(getattr(cache, name, 0) for cache in caches)
        for name in names
    }


def _run_serve_batch(args: argparse.Namespace) -> int:
    import time

    from repro.cluster.executors import PersistentProcessPoolExecutor
    from repro.service import OptimizerService, ShardedOptimizerGateway

    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.gateway_threads is not None and args.shards < 2:
        raise SystemExit("--gateway-threads requires --shards > 1")
    if args.connect is not None:
        if args.shards > 1 or args.use_async or args.cache_dir is not None:
            raise SystemExit(
                "--connect routes to remote shard servers; "
                "--shards/--async/--cache-dir are server-side options"
            )
        return _run_serve_batch_remote(args)
    if not args.use_async and any(
        value is not None
        for value in (args.batch_window_ms, args.max_batch, args.max_pending)
    ):
        raise SystemExit(
            "--batch-window-ms/--max-batch/--max-pending require --async"
        )
    batch_window_ms = args.batch_window_ms if args.batch_window_ms is not None else 2.0
    max_batch = args.max_batch if args.max_batch is not None else 16
    max_pending = args.max_pending if args.max_pending is not None else 256
    settings = _settings_from_args(args)
    queries = [load_query(path) for path in args.queries]
    cache_factory = None
    if args.cache_dir is not None:
        from pathlib import Path

        from repro.service import DiskTier, TieredPlanCache

        cache_dir = Path(args.cache_dir)

        def cache_factory(index: int) -> "TieredPlanCache":
            return TieredPlanCache(
                memory_capacity=args.cache_size,
                disk=DiskTier(cache_dir / f"shard-{index}.log"),
            )

    rounds = []
    gateway_stats = None
    async_stats = None
    if args.use_async:
        import asyncio

        from repro.service import AsyncOptimizerGateway, GatewayOverloadedError

        executor_factory = (
            (lambda: PersistentProcessPoolExecutor(max_workers=args.workers))
            if args.pool == "persistent"
            else None
        )

        async def submit(front, query):
            for __ in range(1000):
                try:
                    return await front.optimize(query, tenant="cli")
                except GatewayOverloadedError as rejection:
                    await asyncio.sleep(rejection.retry_after_s)
            raise SystemExit("async gateway kept rejecting; raise --max-pending")

        async def run_rounds():
            async with AsyncOptimizerGateway(
                n_shards=args.shards,
                n_workers=args.workers,
                settings=settings,
                executor_factory=executor_factory,
                cache_capacity=args.cache_size,
                cache_factory=cache_factory,
                gateway_threads=args.gateway_threads,
                batch_window_ms=batch_window_ms,
                max_batch=max_batch,
                max_pending=max_pending,
                # The CLI is a single tenant; a fairness share would
                # silently halve --max-pending for it.
                tenant_share=1.0,
            ) as front:
                collected = []
                for __ in range(max(1, args.repeat)):
                    started = time.perf_counter()
                    results = await asyncio.gather(
                        *[submit(front, query) for query in queries]
                    )
                    collected.append((time.perf_counter() - started, list(results)))
                return collected, front.stats()

        rounds, async_stats = asyncio.run(run_rounds())
        gateway_stats = async_stats.gateway
        stats = gateway_stats
    elif args.shards > 1:
        executor_factory = (
            (lambda: PersistentProcessPoolExecutor(max_workers=args.workers))
            if args.pool == "persistent"
            else None
        )
        with ShardedOptimizerGateway(
            n_shards=args.shards,
            n_workers=args.workers,
            settings=settings,
            executor_factory=executor_factory,
            cache_capacity=args.cache_size,
            cache_factory=cache_factory,
            gateway_threads=args.gateway_threads,
        ) as gateway:
            for __ in range(max(1, args.repeat)):
                started = time.perf_counter()
                results = gateway.optimize_batch(queries)
                rounds.append((time.perf_counter() - started, results))
            gateway_stats = gateway.stats()
        stats = gateway_stats  # aggregate hits/misses/evictions/hit_rate
    else:
        executor = (
            PersistentProcessPoolExecutor(max_workers=args.workers)
            if args.pool == "persistent"
            else None
        )
        with OptimizerService(
            n_workers=args.workers,
            settings=settings,
            executor=executor,
            cache_capacity=args.cache_size,
            cache=cache_factory(0) if cache_factory is not None else None,
        ) as service:
            for __ in range(max(1, args.repeat)):
                started = time.perf_counter()
                results = service.optimize_batch(queries)
                rounds.append((time.perf_counter() - started, results))
            stats = service.cache.snapshot()
            envelope_hits = service.envelope_hits
    if gateway_stats is not None:
        envelope_hits = gateway_stats.envelope_hits
    if args.json:
        payload = {
            "workers": args.workers,
            "pool": args.pool,
            "shards": args.shards,
            "async": args.use_async,
            "rounds": [
                {
                    "wall_s": wall,
                    "results": [
                        {
                            "query": query.name,
                            "cached": result.cached,
                            "fingerprint": result.fingerprint,
                            "partitions": result.n_partitions,
                            "backend_used": result.backend_used,
                            "best_cost": list(result.best.cost),
                            "plans": len(result.plans),
                        }
                        for query, result in zip(queries, results)
                    ],
                }
                for wall, results in rounds
            ],
            "cache": _stats_dict(stats),
        }
        tier_totals = _tier_totals(gateway_stats)
        if tier_totals is not None:
            payload["cache"].update(tier_totals)
        payload["envelope_hits"] = envelope_hits
        if args.cache_dir is not None:
            payload["cache_dir"] = args.cache_dir
        if gateway_stats is not None:
            payload["gateway"] = {
                "requests": gateway_stats.requests,
                "optimizations": gateway_stats.optimizations,
                "coalesced": gateway_stats.coalesced,
                "peak_in_flight": gateway_stats.peak_in_flight,
                "envelope_hits": gateway_stats.envelope_hits,
                "shards": [
                    {
                        "shard": shard.shard,
                        "entries": shard.entries,
                        "envelope_hits": shard.envelope_hits,
                        **_stats_dict(shard.cache),
                    }
                    for shard in gateway_stats.shards
                ],
            }
        if async_stats is not None:
            payload["async_front_end"] = {
                "batch_window_ms": batch_window_ms,
                "max_batch": max_batch,
                "max_pending": max_pending,
                "fast_path_hits": async_stats.fast_path_hits,
                "result_memo_hits": async_stats.result_memo_hits,
                "admitted": async_stats.admitted,
                "coalesced": async_stats.coalesced,
                "batched": async_stats.batched,
                "dispatched_batches": async_stats.dispatched_batches,
                "batch_sizes": {
                    str(size): count
                    for size, count in sorted(async_stats.batch_sizes.items())
                },
                "rejections": {
                    "queue_full": async_stats.rejected_queue_full,
                    "tenant_share": async_stats.rejected_tenant_share,
                },
                "cancelled": async_stats.cancelled,
                "tenants": {
                    tenant: {
                        "requests": tenant_stats.requests,
                        "completed": tenant_stats.completed,
                        "rejected": tenant_stats.rejected,
                        "cancelled": tenant_stats.cancelled,
                    }
                    for tenant, tenant_stats in sorted(async_stats.tenants.items())
                },
            }
        print(json.dumps(payload, indent=2))
        return 0
    for round_number, (wall, results) in enumerate(rounds, start=1):
        print(f"round {round_number}: {len(results)} queries in {wall * 1e3:.1f} ms")
        for query, result in zip(queries, results):
            marker = "HIT " if result.cached else "MISS"
            print(
                f"  [{marker}] {query.name}: best cost {tuple(result.best.cost)} "
                f"({result.n_partitions} partitions, "
                f"backend {result.backend_used})"
            )
    print(
        f"cache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate), {stats.evictions} evictions"
    )
    if envelope_hits:
        print(
            f"envelopes: {envelope_hits} theta bindings served from cached "
            "envelopes (no DP run)"
        )
    if hasattr(stats, "disk_hits"):
        print(
            f"tiers: {stats.memory_hits} memory hits, {stats.disk_hits} disk "
            f"hits, {stats.promotions} promotions, {stats.demotions} demotions"
        )
    else:
        tier_totals = _tier_totals(gateway_stats)
        if tier_totals is not None:
            print(
                f"tiers: {tier_totals['memory_hits']} memory hits, "
                f"{tier_totals['disk_hits']} disk hits, "
                f"{tier_totals['promotions']} promotions, "
                f"{tier_totals['demotions']} demotions"
            )
    if async_stats is not None:
        sizes = ", ".join(
            f"{size}x{count}"
            for size, count in sorted(async_stats.batch_sizes.items())
        )
        print(
            f"async: {async_stats.fast_path_hits} fast-path hits, "
            f"{async_stats.coalesced} coalesced, "
            f"{async_stats.dispatched_batches} batches ({sizes or 'none'}), "
            f"{async_stats.rejections} rejections, "
            f"{async_stats.cancelled} cancelled"
        )
    if gateway_stats is not None:
        print(
            f"gateway: {gateway_stats.requests} requests, "
            f"{gateway_stats.optimizations} optimizations, "
            f"{gateway_stats.coalesced} coalesced, "
            f"{gateway_stats.envelope_hits} envelope hits, "
            f"peak in-flight {gateway_stats.peak_in_flight}"
        )
        for shard in gateway_stats.shards:
            print(
                f"  shard {shard.shard}: {shard.cache.hits} hits / "
                f"{shard.cache.misses} misses ({shard.hit_rate:.0%}), "
                f"{shard.entries} entries"
            )
    return 0


def _run_serve_batch_remote(args: argparse.Namespace) -> int:
    """Serve the batch through running shard servers (``--connect``)."""
    import time

    from repro.service import NetworkOptimizerGateway

    settings = _settings_from_args(args)
    queries = [load_query(path) for path in args.queries]
    specs = [spec.strip() for spec in args.connect.split(",") if spec.strip()]
    if not specs:
        raise SystemExit("--connect needs at least one endpoint")
    rounds = []
    hedge_after_ms = getattr(args, "hedge_after_ms", 0.0)
    with NetworkOptimizerGateway(
        specs,
        settings=settings,
        n_workers=args.workers,
        # The CLI submits the whole batch at once; ride out the servers'
        # admission control instead of failing the batch on a burst.
        overload_retries=1000,
        # Hedging: the flag sets the budget floor; the EWMA multiplier is
        # fixed at 2x so a healthy shard's own tail does not trip hedges.
        hedge_multiplier=2.0 if hedge_after_ms > 0 else 0.0,
        hedge_min_s=max(hedge_after_ms / 1000.0, 1e-3),
    ) as gateway:
        for __ in range(max(1, args.repeat)):
            started = time.perf_counter()
            results = gateway.optimize_batch(queries)
            rounds.append((time.perf_counter() - started, results))
        net_stats = gateway.stats()
    if args.json:
        payload = {
            "workers": args.workers,
            "connect": specs,
            "rounds": [
                {
                    "wall_s": wall,
                    "results": [
                        {
                            "query": query.name,
                            "cached": result.cached,
                            "fingerprint": result.fingerprint,
                            "partitions": result.n_partitions,
                            "backend_used": result.backend_used,
                            "best_cost": list(result.best.cost),
                            "plans": len(result.plans),
                        }
                        for query, result in zip(queries, results)
                    ],
                }
                for wall, results in rounds
            ],
            "network": net_stats,
        }
        print(json.dumps(payload, indent=2))
        return 0
    for round_number, (wall, results) in enumerate(rounds, start=1):
        print(f"round {round_number}: {len(results)} queries in {wall * 1e3:.1f} ms")
        for query, result in zip(queries, results):
            marker = "HIT " if result.cached else "MISS"
            print(
                f"  [{marker}] {query.name}: best cost {tuple(result.best.cost)} "
                f"({result.n_partitions} partitions, "
                f"backend {result.backend_used})"
            )
    print(
        f"network: {net_stats['requests']} requests over "
        f"{len(net_stats['shards'])} shards, "
        f"{net_stats['breaker_rejections']} breaker rejections, "
        f"{net_stats['hedged']} hedged "
        f"({net_stats['hedged_wins']} hedge wins)"
    )
    for name, shard in sorted(net_stats["shards"].items()):
        optimizations = shard.get("optimizations", "?")
        envelope_hits = shard.get("envelope_hits", 0)
        shipped = shard.get("snapshot_imported", 0)
        print(
            f"  {name} ({shard['address']}): breaker {shard['breaker']}, "
            f"{optimizations} DP runs server-side, "
            f"{envelope_hits} envelope hits, "
            f"{shipped} snapshot entries imported"
        )
    return 0


def _run_shard_server(args: argparse.Namespace) -> int:
    from repro.service import run_shard_server

    settings = _settings_from_args(args)
    print(
        f"shard-server {args.shard_id} listening on {args.listen} "
        f"(workers={args.workers}, max in-flight={args.max_in_flight}"
        + (f", cache log in {args.cache_dir}" if args.cache_dir else "")
        + ")",
        flush=True,
    )
    run_shard_server(
        listen=args.listen,
        shard_id=args.shard_id,
        n_workers=args.workers,
        settings=settings,
        cache_capacity=args.cache_size,
        cache_dir=args.cache_dir,
        max_in_flight=args.max_in_flight,
        handler_threads=args.handler_threads,
        inject_latency_s=args.inject_latency_ms / 1000.0,
    )
    return 0


def _run_shard_fleet(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import run_shard_fleet

    socket_dir = Path(args.socket_dir)
    print(
        f"shard-fleet: {args.shards} shards under {socket_dir} "
        f"(workers={args.workers}, max in-flight={args.max_in_flight}"
        + (f", cache logs in {args.cache_dir}" if args.cache_dir else "")
        + ")",
        flush=True,
    )
    run_shard_fleet(
        n_shards=args.shards,
        socket_dir=socket_dir,
        cache_dir=args.cache_dir,
        n_workers=args.workers,
        max_in_flight=args.max_in_flight,
        cache_capacity=args.cache_size,
        health_interval_s=args.health_interval_ms / 1000.0,
        log_dir=args.log_dir,
        membership_path=socket_dir / "membership.json",
    )
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    from repro.service import DiskTier, InvalidationPredicate

    if args.cache_command == "inspect":
        import time as _time

        now_s = _time.time()
        reports = []
        for path in args.logs:
            with DiskTier(path) as tier:
                entries = [
                    {
                        "fingerprint": key,
                        "kind": kind,
                        "age_s": (
                            round(max(0.0, now_s - provenance.created_at_s), 3)
                            if provenance is not None
                            else None
                        ),
                        "provenance": (
                            provenance.to_wire() if provenance is not None else None
                        ),
                    }
                    for key, provenance, kind in tier.entries()
                ]
                reports.append(
                    {
                        "log": path,
                        "entries": len(tier),
                        "log_bytes": tier.log_bytes(),
                        "records": entries,
                    }
                )
        if args.json:
            print(json.dumps(reports, indent=2))
            return 0
        for report in reports:
            print(
                f"{report['log']}: {report['entries']} entries, "
                f"{report['log_bytes']:,} bytes"
            )
            for record in report["records"]:
                provenance = record["provenance"]
                if provenance is None:
                    print(
                        f"  {record['fingerprint'][:16]}…  "
                        f"kind={record['kind']} (no provenance)"
                    )
                    continue
                print(
                    f"  {record['fingerprint'][:16]}…  "
                    f"kind={record['kind']} "
                    f"backend={provenance['backend_used']} "
                    f"generation={provenance['registry_generation']} "
                    f"partitions={provenance['n_partitions']} "
                    f"age={record['age_s']:.0f}s"
                )
        return 0

    if args.cache_command == "export":
        with DiskTier(args.log) as tier:
            exported = tier.export_snapshot(args.output)
        print(f"exported {exported} entries from {args.log} to {args.output}")
        return 0

    if args.cache_command == "import":
        with DiskTier(args.into) as tier:
            imported = tier.import_snapshot(
                args.snapshot, overwrite=not args.keep_existing
            )
        print(f"imported {imported} entries from {args.snapshot} into {args.into}")
        return 0

    assert args.cache_command == "invalidate"
    conditions = (
        args.backend,
        args.below_generation,
        args.created_before,
        args.settings_signature,
    )
    if args.match_all and any(value is not None for value in conditions):
        raise SystemExit("--all cannot be combined with other conditions")
    if not args.match_all and all(value is None for value in conditions):
        raise SystemExit(
            "refusing the implicit match-everything predicate: supply at "
            "least one condition, or spell out --all to flush every entry"
        )
    predicate = InvalidationPredicate(
        backend=args.backend,
        below_generation=args.below_generation,
        created_before_s=args.created_before,
        settings_signature=args.settings_signature,
    )
    reports = []
    for path in args.logs:
        with DiskTier(path) as tier:
            removed = tier.invalidate(predicate)
            reports.append(
                {"log": path, "invalidated": len(removed), "remaining": len(tier)}
            )
    if args.json:
        print(
            json.dumps(
                {"predicate": predicate.to_wire(), "logs": reports}, indent=2
            )
        )
        return 0
    for report in reports:
        print(
            f"{report['log']}: invalidated {report['invalidated']} entries, "
            f"{report['remaining']} remaining"
        )
    return 0


def _run_backends(args: argparse.Namespace) -> int:
    from repro.core.worker import capability_matrix, registered_backends

    descriptors = registered_backends()
    matrix = capability_matrix()
    if args.json:
        payload = {
            descriptor.name: {
                "speed_rank": descriptor.speed_rank,
                "capabilities": matrix[descriptor.name],
                "requires": list(descriptor.requires),
                "available": descriptor.available(),
                "unavailable_reason": descriptor.unavailable_reason(),
            }
            for descriptor in descriptors
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            "registered enumeration backends "
            "(AUTO picks the first capable, available one):"
        )
        for descriptor in descriptors:
            declared = ", ".join(
                name
                for name, declared_flag in matrix[descriptor.name].items()
                if declared_flag
            )
            reason = descriptor.unavailable_reason()
            status = "" if reason is None else f" [unavailable: {reason}]"
            print(
                f"  {descriptor.name:>8} (rank {descriptor.speed_rank})"
                f"{status}: {declared}"
            )
    if args.require is not None:
        wanted = {d.name: d for d in descriptors}.get(args.require)
        if wanted is None:
            print(
                f"error: backend {args.require!r} is not registered "
                f"(registered: {', '.join(d.name for d in descriptors)})",
                file=sys.stderr,
            )
            return 1
        reason = wanted.unavailable_reason()
        if reason is not None:
            print(
                f"error: backend {args.require!r} is unavailable: {reason}",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "generate":
        return _run_generate(args)
    if args.command == "serve-batch":
        return _run_serve_batch(args)
    if args.command == "shard-server":
        return _run_shard_server(args)
    if args.command == "shard-fleet":
        return _run_shard_fleet(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "backends":
        return _run_backends(args)
    return _run_optimize(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
