"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a random Steinbrunn-style query to a JSON file;
* ``optimize`` — optimize a JSON query with MPQ and print the chosen plan
  (or Pareto frontier) plus the cluster accounting the paper reports.

Examples::

    python -m repro generate --tables 10 --kind star -o query.json
    python -m repro optimize query.json --workers 16
    python -m repro optimize query.json --space bushy --workers 8
    python -m repro optimize query.json --objectives time,buffer --alpha 10
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.algorithms.mpq import optimize_mpq
from repro.config import Objective, OptimizerSettings, PlanSpace
from repro.query.generator import SteinbrunnGenerator
from repro.query.io import load_query, plan_to_dict, save_query
from repro.query.query import JoinGraphKind


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MPQ — massively parallel query optimization "
        "(Trummer & Koch, VLDB 2016).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a random query")
    generate.add_argument("--tables", type=int, default=8)
    generate.add_argument(
        "--kind",
        choices=[kind.value for kind in JoinGraphKind],
        default=JoinGraphKind.STAR.value,
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True, help="output JSON file")

    optimize = commands.add_parser("optimize", help="optimize a JSON or SQL query")
    optimize.add_argument(
        "query", nargs="?", default=None, help="query JSON file"
    )
    optimize.add_argument(
        "--sql",
        default=None,
        help="SPJ SQL text (requires --catalog) instead of a query file",
    )
    optimize.add_argument(
        "--catalog", default=None, help="catalog JSON file for --sql"
    )
    optimize.add_argument("--workers", type=int, default=1)
    optimize.add_argument(
        "--space",
        choices=[space.value for space in PlanSpace],
        default=PlanSpace.LINEAR.value,
    )
    optimize.add_argument(
        "--objectives",
        default="time",
        help="comma-separated cost metrics: time[,buffer]",
    )
    optimize.add_argument("--alpha", type=float, default=1.0)
    optimize.add_argument(
        "--orders", action="store_true", help="track interesting orders"
    )
    optimize.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    return parser


def _settings_from_args(args: argparse.Namespace) -> OptimizerSettings:
    objectives = []
    for token in args.objectives.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            objectives.append(Objective(token))
        except ValueError:
            raise SystemExit(
                f"unknown objective {token!r}; choose from "
                f"{[o.value for o in Objective]}"
            )
    return OptimizerSettings(
        plan_space=PlanSpace(args.space),
        objectives=tuple(objectives),
        alpha=args.alpha,
        consider_orders=args.orders,
    )


def _run_generate(args: argparse.Namespace) -> int:
    query = SteinbrunnGenerator(args.seed).query(
        args.tables, JoinGraphKind(args.kind)
    )
    save_query(query, args.output)
    print(f"wrote {query.name} ({args.tables} tables) to {args.output}")
    return 0


def _load_query_from_args(args: argparse.Namespace):
    if args.sql is not None:
        if args.catalog is None:
            raise SystemExit("--sql requires --catalog")
        from repro.query.io import load_catalog
        from repro.query.sql import parse_sql

        return parse_sql(args.sql, load_catalog(args.catalog))
    if args.query is None:
        raise SystemExit("provide a query JSON file or --sql with --catalog")
    return load_query(args.query)


def _run_optimize(args: argparse.Namespace) -> int:
    query = _load_query_from_args(args)
    settings = _settings_from_args(args)
    report = optimize_mpq(query, args.workers, settings)
    names = tuple(table.name for table in query.tables)
    if args.json:
        payload = {
            "query": query.name,
            "partitions": report.n_partitions,
            "simulated_time_ms": report.simulated_time_ms,
            "network_bytes": report.network_bytes,
            "max_worker_memory_relations": report.max_worker_memory_relations,
            "plans": [plan_to_dict(plan, names) for plan in report.plans],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"query: {query.name} ({query.n_tables} tables)")
    print(
        f"partitions: {report.n_partitions} "
        f"(requested {args.workers} workers, {settings.plan_space} space)"
    )
    print(f"simulated time: {report.simulated_time_ms:.2f} ms")
    print(f"network: {report.network_bytes:,} bytes")
    print(f"max worker memory: {report.max_worker_memory_relations} relations")
    if settings.is_multi_objective:
        print(f"pareto frontier: {len(report.plans)} plans (alpha={args.alpha})")
    print()
    print(report.best.pretty(names))
    print(f"\nbest cost: {tuple(report.best.cost)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "generate":
        return _run_generate(args)
    return _run_optimize(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
