"""The cost model: the only factory for plan objects.

Workers ask the cost model for scan plans and join candidates; the model
estimates output cardinality, chooses applicable operators (hash and
sort-merge require an equality predicate), determines sortedness, and
evaluates every configured metric.  Candidates are plain tuples so the DP
inner loop can compare costs *before* allocating a plan object — plan nodes
are only materialized for candidates the pruning function keeps.

The model is rebuilt locally on each worker from ``(query, settings)``; it
holds nothing that needs to cross the network beyond those two objects.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.config import OptimizerSettings
from repro.cost.cardinality import CardinalityEstimator
from repro.cost.metrics import Metric, make_metrics
from repro.plans.operators import ALL_JOIN_ALGORITHMS, JoinAlgorithm, ScanAlgorithm
from repro.plans.orders import SortOrder
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.predicates import JoinPredicate
from repro.query.query import Query


class JoinCandidate(NamedTuple):
    """A costed but not yet materialized join of two fixed sub-plans.

    A named tuple rather than a dataclass: millions of candidates are built
    in the DP inner loop, and tuple construction is markedly cheaper.
    """

    algorithm: JoinAlgorithm
    rows: float
    cost: tuple[float, ...]
    order: SortOrder | None
    sort_left: bool
    sort_right: bool


class CostModel:
    """Costs plans for one query under one :class:`OptimizerSettings`."""

    def __init__(self, query: Query, settings: OptimizerSettings) -> None:
        self._query = query
        self._settings = settings
        self._cards = CardinalityEstimator(query)
        self._metrics: tuple[Metric, ...] = make_metrics(settings.objectives)
        if settings.use_all_join_algorithms:
            self._join_algorithms = ALL_JOIN_ALGORITHMS
        else:
            self._join_algorithms = (JoinAlgorithm.BLOCK_NESTED_LOOP,)
        # Pair each algorithm with its (fixed) applicability flag once; the
        # enum property would otherwise be re-evaluated per DP candidate.
        self._algorithm_table = tuple(
            (algorithm, algorithm.requires_equi_predicate)
            for algorithm in self._join_algorithms
        )

    @property
    def query(self) -> Query:
        """The query being optimized."""
        return self._query

    @property
    def settings(self) -> OptimizerSettings:
        """The optimizer configuration this model was built for."""
        return self._settings

    @property
    def metrics(self) -> tuple[Metric, ...]:
        """The metric vector (one entry per objective)."""
        return self._metrics

    @property
    def cardinality(self) -> CardinalityEstimator:
        """The underlying cardinality estimator."""
        return self._cards

    def scan_plans(self, table_number: int) -> list[ScanPlan]:
        """All scan plans for a base table.

        The paper assumes one scan plan per table in its pseudo-code and
        notes the generalization is straightforward — realized here: a
        table clustered on a column additionally offers a clustered-index
        scan whose output carries that column's sort order.  The sorted
        variant only matters (and is only emitted) when interesting orders
        are tracked.
        """
        table = self._query.tables[table_number]
        rows = float(table.cardinality)
        cost = tuple(metric.scan_cost(table, rows) for metric in self._metrics)
        plans = [
            ScanPlan(
                mask=1 << table_number,
                rows=rows,
                cost=cost,
                order=None,
                table=table_number,
                algorithm=ScanAlgorithm.FULL_SCAN,
            )
        ]
        if self._settings.consider_orders and table.clustered_on is not None:
            plans.append(
                ScanPlan(
                    mask=1 << table_number,
                    rows=rows,
                    cost=cost,
                    order=SortOrder(table_number, table.clustered_on),
                    table=table_number,
                    algorithm=ScanAlgorithm.CLUSTERED_INDEX_SCAN,
                )
            )
        return plans

    def join_candidates(self, left: Plan, right: Plan) -> list[JoinCandidate]:
        """All applicable operator instantiations for ``left ⋈ right``."""
        predicates = self._query.predicates_between(left.mask, right.mask)
        out_rows = self._cards.rows(left.mask | right.mask)
        candidates = []
        for algorithm, requires_equi in self._algorithm_table:
            if requires_equi and not predicates:
                continue
            sort_left = sort_right = False
            order: SortOrder | None = None
            if algorithm is JoinAlgorithm.SORT_MERGE:
                predicate = predicates[0]
                left_key, right_key = self._split_keys(predicate, left.mask)
                sort_left = not self._is_sorted(left, left_key)
                sort_right = not self._is_sorted(right, right_key)
                if self._settings.consider_orders:
                    order = left_key
            cost = tuple(
                metric.join_cost(
                    left.cost[i],
                    right.cost[i],
                    left.rows,
                    right.rows,
                    out_rows,
                    algorithm,
                    sort_left,
                    sort_right,
                )
                for i, metric in enumerate(self._metrics)
            )
            candidates.append(
                JoinCandidate(
                    algorithm=algorithm,
                    rows=out_rows,
                    cost=cost,
                    order=order,
                    sort_left=sort_left,
                    sort_right=sort_right,
                )
            )
        return candidates

    def build_join(self, left: Plan, right: Plan, candidate: JoinCandidate) -> JoinPlan:
        """Materialize a plan node for a candidate the pruning kept."""
        return JoinPlan(
            mask=left.mask | right.mask,
            rows=candidate.rows,
            cost=candidate.cost,
            order=candidate.order,
            left=left,
            right=right,
            algorithm=candidate.algorithm,
        )

    def _split_keys(
        self, predicate: JoinPredicate, left_mask: int
    ) -> tuple[SortOrder, SortOrder]:
        """Sort keys of the two operands for a sort-merge on ``predicate``."""
        left_endpoint = SortOrder(predicate.left_table, predicate.left_column)
        right_endpoint = SortOrder(predicate.right_table, predicate.right_column)
        if left_mask & (1 << predicate.left_table):
            return left_endpoint, right_endpoint
        return right_endpoint, left_endpoint

    def _is_sorted(self, plan: Plan, key: SortOrder) -> bool:
        """Whether ``plan`` output is already sorted on ``key``."""
        return self._settings.consider_orders and plan.order == key
