"""Join-result cardinality estimation.

Standard System-R style estimation under the independence assumption: the
cardinality of joining a table set is the product of base cardinalities times
the product of the selectivities of all predicates applicable within the set.
Because it depends only on the table *set* (not the join order), results are
memoized per bitmask — the estimator is consulted once per admissible join
result, matching the constant-time cost calculation assumed by Theorem 6.
"""

from __future__ import annotations

from repro.query.query import Query
from repro.util.bitset import bits


class CardinalityEstimator:
    """Memoized cardinality estimates for table subsets of one query."""

    def __init__(self, query: Query) -> None:
        self._query = query
        self._cache: dict[int, float] = {}
        for number, table in enumerate(query.tables):
            self._cache[1 << number] = float(table.cardinality)

    @property
    def query(self) -> Query:
        """The query whose table subsets this estimator sizes."""
        return self._query

    def rows(self, mask: int) -> float:
        """Estimated cardinality of the join over the table set ``mask``."""
        if mask == 0:
            raise ValueError("cannot estimate cardinality of the empty table set")
        cached = self._cache.get(mask)
        if cached is not None:
            return cached
        rows = 1.0
        for table_number in bits(mask):
            rows *= self._query.tables[table_number].cardinality
        for predicate in self._query.predicates:
            if predicate.applies_within(mask):
                rows *= predicate.selectivity
        rows = max(rows, 1.0)
        self._cache[mask] = rows
        return rows

    def join_selectivity(self, left_mask: int, right_mask: int) -> float:
        """Combined selectivity of all predicates connecting two table sets.

        Returns 1.0 for a Cartesian product.  Satisfies
        ``rows(l | r) ≈ rows(l) * rows(r) * join_selectivity(l, r)`` as long
        as no predicate is internal to both sides (sides are disjoint here).
        """
        if left_mask & right_mask:
            raise ValueError("join operands must be disjoint table sets")
        selectivity = 1.0
        for predicate in self._query.predicates:
            if predicate.connects(left_mask, right_mask):
                selectivity *= predicate.selectivity
        return selectivity
