"""Pruning functions — the single point of variation between optimizer flavours.

The paper stresses that the classical DP scheme, multi-objective optimization,
and parametric optimization differ *only* in the pruning function (Section 4).
This module makes that literal: the worker DP is generic over a
:class:`PruningPolicy` that decides which plans survive per table set.

Three policies are provided:

* :class:`MinCostPruning` — classical single-objective optimization; one best
  plan per table set.
* :class:`InterestingOrderPruning` — one best plan per (table set, output
  order); a costlier sorted plan survives if its order may pay off later.
* :class:`ParetoPruning` — multi-objective optimization keeping an (α-)
  approximate Pareto frontier per table set (Trummer & Koch, SIGMOD 2014).

The memotable is a plain ``dict`` mapping table-set bitmasks to lists of
plans; policies mutate the entry for one mask.  Candidates arrive as
``(cost, order, build)`` where ``build`` materializes the plan node only if
the candidate is kept — this keeps the DP inner loop allocation-free for
rejected plans.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable

from repro.config import OptimizerSettings
from repro.cost.parametric import envelope_filter, needed_on_envelope
from repro.cost.pareto import alpha_dominates, dominates, pareto_filter
from repro.plans.orders import SortOrder, order_satisfies
from repro.plans.plan import Plan

PlanTable = dict[int, list[Plan]]
PlanBuilder = Callable[[], Plan]


class PruningPolicy(ABC):
    """Decides which plans survive per table set."""

    @abstractmethod
    def consider(
        self,
        table: PlanTable,
        mask: int,
        cost: tuple[float, ...],
        order: SortOrder | None,
        build: PlanBuilder,
    ) -> bool:
        """Offer a candidate plan for ``mask``; return True iff it was kept."""

    @abstractmethod
    def final_prune(self, plans: Iterable[Plan]) -> list[Plan]:
        """Master-side pruning across partition-optimal plans (FinalPrune).

        Output order is irrelevant for completed plans (the paper notes the
        master's pruning may differ from the workers' for this reason), so
        dominance here ignores interesting orders.
        """


class MinCostPruning(PruningPolicy):
    """Keep the single cheapest plan per table set (classical optimization)."""

    def consider(
        self,
        table: PlanTable,
        mask: int,
        cost: tuple[float, ...],
        order: SortOrder | None,
        build: PlanBuilder,
    ) -> bool:
        entry = table.get(mask)
        if entry is not None and entry[0].cost[0] <= cost[0]:
            return False
        table[mask] = [build()]
        return True

    def final_prune(self, plans: Iterable[Plan]) -> list[Plan]:
        best: Plan | None = None
        for plan in plans:
            if best is None or plan.cost[0] < best.cost[0]:
                best = plan
        return [] if best is None else [best]


class InterestingOrderPruning(PruningPolicy):
    """Keep one best plan per (table set, interesting order).

    A kept plan ``p`` eliminates candidate ``q`` iff ``p`` costs no more and
    ``p``'s output order satisfies ``q``'s (``q`` unsorted, or same order).
    """

    def consider(
        self,
        table: PlanTable,
        mask: int,
        cost: tuple[float, ...],
        order: SortOrder | None,
        build: PlanBuilder,
    ) -> bool:
        entry = table.get(mask)
        if entry is None:
            table[mask] = [build()]
            return True
        for kept in entry:
            if kept.cost[0] <= cost[0] and order_satisfies(kept.order, order):
                return False
        plan = build()
        entry[:] = [
            kept
            for kept in entry
            if not (cost[0] <= kept.cost[0] and order_satisfies(order, kept.order))
        ]
        entry.append(plan)
        return True

    def final_prune(self, plans: Iterable[Plan]) -> list[Plan]:
        return MinCostPruning().final_prune(plans)


class ParetoPruning(PruningPolicy):
    """Keep an approximate Pareto frontier per table set.

    ``alpha`` here is the *per-comparison* factor: a candidate is discarded
    when some kept plan α-dominates it (cost within factor α in every
    metric, and compatible order when orders are tracked).  When a candidate
    is kept, previously kept plans it *exactly* dominates are removed —
    exact removal preserves the invariant that every discarded plan remains
    α-dominated by some kept plan.

    Because discarding compounds across DP levels (a pruned sub-plan's
    replacement may itself be pruned one level up), a per-comparison factor
    α yields an end-to-end guarantee of α^(n-1) for an n-table query.  The
    approximation scheme of Trummer & Koch (SIGMOD 2014) therefore uses the
    per-level root: :func:`make_pruning` converts a *global* target α into
    the per-comparison factor ``α^(1/(n-1))``, restoring the end-to-end
    factor-α near-optimality guarantee the paper's Table 1 relies on.
    """

    def __init__(self, alpha: float = 1.0, respect_orders: bool = False) -> None:
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1.0, got {alpha}")
        self._alpha = alpha
        self._respect_orders = respect_orders

    @property
    def alpha(self) -> float:
        """The approximation factor used for discarding candidates."""
        return self._alpha

    def consider(
        self,
        table: PlanTable,
        mask: int,
        cost: tuple[float, ...],
        order: SortOrder | None,
        build: PlanBuilder,
    ) -> bool:
        entry = table.get(mask)
        if entry is None:
            table[mask] = [build()]
            return True
        for kept in entry:
            if alpha_dominates(kept.cost, cost, self._alpha) and self._covers(
                kept.order, order
            ):
                return False
        plan = build()
        entry[:] = [
            kept
            for kept in entry
            if not (dominates(cost, kept.cost) and self._covers(order, kept.order))
        ]
        entry.append(plan)
        return True

    def final_prune(self, plans: Iterable[Plan]) -> list[Plan]:
        frontier: list[Plan] = []
        for plan in plans:
            if any(dominates(kept.cost, plan.cost) for kept in frontier):
                continue
            frontier = [
                kept for kept in frontier if not dominates(plan.cost, kept.cost)
            ]
            frontier.append(plan)
        return frontier

    def _covers(self, produced: SortOrder | None, required: SortOrder | None) -> bool:
        if not self._respect_orders:
            return True
        return order_satisfies(produced, required)


class ParametricPruning(PruningPolicy):
    """Keep the plans optimal for some θ ∈ [0, 1] (parametric optimization).

    Cost vectors are interpreted as the endpoints of the linear cost
    function ``(1-θ)·cost[0] + θ·cost[1]``; the entry holds exactly the
    lower envelope of those lines.  Because both metrics compose additively,
    the scalarized problem is a classical DP for every fixed θ, and
    envelope pruning preserves a θ-optimal plan for *all* θ simultaneously —
    the parametric variant the paper cites (Ganguly; Hulgeri & Sudarshan).
    """

    def consider(
        self,
        table: PlanTable,
        mask: int,
        cost: tuple[float, ...],
        order: SortOrder | None,
        build: PlanBuilder,
    ) -> bool:
        entry = table.get(mask)
        if entry is None:
            table[mask] = [build()]
            return True
        kept_costs = [plan.cost for plan in entry]
        if not needed_on_envelope(cost, kept_costs):
            return False
        plan = build()
        candidates = [*entry, plan]
        keep = envelope_filter([p.cost for p in candidates])
        entry[:] = [candidates[index] for index in keep]
        return any(kept is plan for kept in entry)

    def final_prune(self, plans: Iterable[Plan]) -> list[Plan]:
        flat = list(plans)
        keep = envelope_filter([plan.cost for plan in flat])
        return [flat[index] for index in keep]


def per_level_alpha(global_alpha: float, n_tables: int) -> float:
    """Per-comparison factor yielding an end-to-end ``global_alpha`` bound.

    An n-table plan has n-1 join levels; errors multiply once per level, so
    the per-comparison factor is the (n-1)-th root of the global target.
    """
    if n_tables < 1:
        raise ValueError("need at least one table")
    levels = max(n_tables - 1, 1)
    return global_alpha ** (1.0 / levels)


def make_pruning(
    settings: OptimizerSettings, n_tables: int | None = None
) -> PruningPolicy:
    """Instantiate the pruning policy implied by the optimizer settings.

    With ``n_tables`` given (as the worker DP does), the multi-objective
    policy uses the per-level root of ``settings.alpha`` so that the
    *end-to-end* approximation guarantee is α.  Without it, ``alpha`` is
    applied per comparison directly (useful for isolated frontier tests).
    """
    if settings.parametric:
        return ParametricPruning()
    if settings.is_multi_objective:
        alpha = settings.alpha
        if n_tables is not None:
            alpha = per_level_alpha(alpha, n_tables)
        return ParetoPruning(alpha=alpha, respect_orders=settings.consider_orders)
    if settings.consider_orders:
        return InterestingOrderPruning()
    return MinCostPruning()


def final_prune(policy: PruningPolicy, plan_lists: Iterable[Iterable[Plan]]) -> list[Plan]:
    """Flatten partition results and apply the master's final pruning."""
    flat: list[Plan] = []
    for plans in plan_lists:
        flat.extend(plans)
    return policy.final_prune(flat)


def frontier_costs(plans: Iterable[Plan]) -> list[tuple[float, ...]]:
    """Cost vectors of the exact Pareto frontier over the given plans."""
    return pareto_filter(plan.cost for plan in plans)
