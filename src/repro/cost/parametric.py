"""Lower-envelope computations for parametric query optimization.

A plan with (additive) cost vector ``(a, b)`` has scalarized cost
``f(θ) = (1-θ)·a + θ·b = a + θ·(b - a)`` — a line over the parameter
θ ∈ [0, 1].  The plans worth keeping are exactly those appearing on the
*lower envelope* of these lines: optimal for at least one θ.  The envelope
is a minimum of linear functions, so a candidate is needed iff it dips
strictly below the incumbent envelope at an endpoint or at a pairwise
crossing of lines — a finite, exact test.
"""

from __future__ import annotations

from collections.abc import Sequence


def _tolerance(value: float) -> float:
    """Absolute comparison slack scaled to the magnitude at hand."""
    return 1e-9 * max(1.0, abs(value))


def scalarize(cost: Sequence[float], theta: float) -> float:
    """Scalarized cost ``(1-θ)·cost[0] + θ·cost[1]``."""
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    return (1.0 - theta) * cost[0] + theta * cost[1]


def _line_intersections(costs: Sequence[Sequence[float]]) -> list[float]:
    """θ values in (0, 1) where two of the cost lines cross."""
    thetas = []
    for i in range(len(costs)):
        slope_i = costs[i][1] - costs[i][0]
        for j in range(i + 1, len(costs)):
            slope_j = costs[j][1] - costs[j][0]
            denominator = slope_i - slope_j
            if denominator == 0.0:
                continue
            theta = (costs[j][0] - costs[i][0]) / denominator
            if 0.0 < theta < 1.0:
                thetas.append(theta)
    return thetas


def candidate_thetas(costs: Sequence[Sequence[float]]) -> list[float]:
    """θ values at which envelope comparisons must be evaluated.

    The minimum of linear functions changes structure only at pairwise
    crossings; adding the endpoints makes the test over [0, 1] exact.
    """
    return [0.0, 1.0, *_line_intersections(costs)]


def needed_on_envelope(
    cost: Sequence[float], others: Sequence[Sequence[float]]
) -> bool:
    """Whether ``cost``'s line dips strictly below the envelope of ``others``.

    With no competitors every plan is needed.  Ties (a line touching but
    never undercutting the envelope) are *not* needed — this deduplicates
    equal-cost plans.
    """
    if not others:
        return True
    for theta in candidate_thetas([cost, *others]):
        own = scalarize(cost, theta)
        best_other = min(scalarize(other, theta) for other in others)
        if own < best_other - _tolerance(best_other):
            return True
    return False


def envelope_filter(costs: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the cost vectors on the lower envelope.

    Incremental construction: a vector joins the survivor set only if it
    dips strictly below the current envelope, and joining may evict
    survivors it renders redundant.  (Near-)duplicates collapse to their
    first occurrence, and the result is never empty for non-empty input.
    """
    survivors: list[int] = []
    for index, cost in enumerate(costs):
        current = [costs[i] for i in survivors]
        if not needed_on_envelope(cost, current):
            continue
        survivors.append(index)
        evicted = True
        while evicted:
            evicted = False
            for position, kept_index in enumerate(survivors):
                others = [
                    costs[i]
                    for j, i in enumerate(survivors)
                    if j != position
                ]
                if others and not needed_on_envelope(costs[kept_index], others):
                    survivors.pop(position)
                    evicted = True
                    break
    return survivors


def switching_points(costs: Sequence[Sequence[float]]) -> list[float]:
    """θ values where the identity of the scalarized optimum changes.

    Input should already be envelope-filtered; returns sorted θ in (0, 1).
    """
    points = []
    for theta in sorted(set(_line_intersections(costs))):
        best = min(scalarize(cost, theta) for cost in costs)
        touching = sum(
            1
            for cost in costs
            if scalarize(cost, theta) <= best + _tolerance(best)
        )
        if touching >= 2:
            points.append(theta)
    return points
