"""Plan cost metrics.

Two metrics, matching the paper's evaluation (Section 6.1):

* **execution time** — standard cost formulas after Steinbrunn et al.:
  block-nested-loop ``|R|·|S|``, hash ``1.2·(|R|+|S|)``, sort-merge
  ``|R|·log|R| + |S|·log|S| + |R| + |S|`` (sort terms skipped for pre-sorted
  inputs when interesting orders are tracked);
* **buffer space** — memory held by the most memory-hungry operator on any
  root-to-leaf path: hash join buffers its build side, sort-merge its unsorted
  inputs, block-nested-loop only a fixed block.

Each metric defines how a cost component composes from the children's
components — time adds up, buffer space takes a maximum — so the two can be
combined freely into cost vectors for multi-objective optimization.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.config import Objective
from repro.plans.operators import JoinAlgorithm
from repro.query.schema import Table

#: Hash-join constant from Steinbrunn et al. (build + probe overhead).
HASH_FACTOR = 1.2

#: Tuples a block-nested-loop join keeps resident (its buffer footprint).
BNL_BLOCK_TUPLES = 100.0


class Metric(ABC):
    """One plan cost metric: leaf costs plus a composition rule for joins."""

    #: Objective tag; used to build metric vectors from settings.
    objective: Objective

    @property
    def name(self) -> str:
        """Short metric name (``time``, ``buffer``)."""
        return self.objective.value

    @abstractmethod
    def scan_cost(self, table: Table, rows: float) -> float:
        """Cost component of scanning ``table`` producing ``rows`` tuples."""

    @abstractmethod
    def join_cost(
        self,
        left_cost: float,
        right_cost: float,
        left_rows: float,
        right_rows: float,
        out_rows: float,
        algorithm: JoinAlgorithm,
        sort_left: bool,
        sort_right: bool,
    ) -> float:
        """Cost component of a join given operand components and sizes.

        ``sort_left``/``sort_right`` report whether a sort-merge join must
        sort the respective input (False when the input arrives pre-sorted on
        the join attribute).
        """


def _sort_term(rows: float) -> float:
    """n·log2(n) sort cost, safe for tiny inputs."""
    return rows * math.log2(max(rows, 2.0))


class ExecutionTimeMetric(Metric):
    """Estimated execution time; composes additively."""

    objective = Objective.EXECUTION_TIME

    def scan_cost(self, table: Table, rows: float) -> float:
        return rows

    def join_cost(
        self,
        left_cost: float,
        right_cost: float,
        left_rows: float,
        right_rows: float,
        out_rows: float,
        algorithm: JoinAlgorithm,
        sort_left: bool,
        sort_right: bool,
    ) -> float:
        if algorithm is JoinAlgorithm.BLOCK_NESTED_LOOP:
            operator = left_rows * right_rows
        elif algorithm is JoinAlgorithm.HASH:
            operator = HASH_FACTOR * (left_rows + right_rows)
        elif algorithm is JoinAlgorithm.SORT_MERGE:
            operator = left_rows + right_rows
            if sort_left:
                operator += _sort_term(left_rows)
            if sort_right:
                operator += _sort_term(right_rows)
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unknown join algorithm {algorithm!r}")
        return left_cost + right_cost + operator


class BufferSpaceMetric(Metric):
    """Peak operator memory along any pipeline; composes via max."""

    objective = Objective.BUFFER_SPACE

    def scan_cost(self, table: Table, rows: float) -> float:
        return 1.0

    def join_cost(
        self,
        left_cost: float,
        right_cost: float,
        left_rows: float,
        right_rows: float,
        out_rows: float,
        algorithm: JoinAlgorithm,
        sort_left: bool,
        sort_right: bool,
    ) -> float:
        if algorithm is JoinAlgorithm.BLOCK_NESTED_LOOP:
            operator = BNL_BLOCK_TUPLES
        elif algorithm is JoinAlgorithm.HASH:
            operator = right_rows
        elif algorithm is JoinAlgorithm.SORT_MERGE:
            operator = (left_rows if sort_left else 0.0) + (
                right_rows if sort_right else 0.0
            )
            operator = max(operator, 1.0)
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unknown join algorithm {algorithm!r}")
        return max(left_cost, right_cost, operator)


class OutputRowsMetric(Metric):
    """Total intermediate-result size (the classical ``C_out`` metric).

    Additive like execution time, which makes it a valid endpoint for
    parametric scalarization: ``(1-θ)·time + θ·io`` is additive for every θ.
    """

    objective = Objective.OUTPUT_ROWS

    def scan_cost(self, table: Table, rows: float) -> float:
        return 0.0

    def join_cost(
        self,
        left_cost: float,
        right_cost: float,
        left_rows: float,
        right_rows: float,
        out_rows: float,
        algorithm: JoinAlgorithm,
        sort_left: bool,
        sort_right: bool,
    ) -> float:
        return left_cost + right_cost + out_rows


_METRIC_CLASSES: dict[Objective, type[Metric]] = {
    Objective.EXECUTION_TIME: ExecutionTimeMetric,
    Objective.BUFFER_SPACE: BufferSpaceMetric,
    Objective.OUTPUT_ROWS: OutputRowsMetric,
}


def make_metrics(objectives: tuple[Objective, ...]) -> tuple[Metric, ...]:
    """Instantiate the metric vector for the requested objectives."""
    try:
        return tuple(_METRIC_CLASSES[objective]() for objective in objectives)
    except KeyError as exc:  # pragma: no cover - guarded by Objective enum
        raise ValueError(f"no metric implementation for {exc.args[0]!r}") from exc
