"""Cost estimation and pruning: cardinalities, metrics, Pareto frontiers."""

from repro.cost.cardinality import CardinalityEstimator
from repro.cost.costmodel import CostModel, JoinCandidate
from repro.cost.metrics import BufferSpaceMetric, ExecutionTimeMetric, Metric, make_metrics
from repro.cost.pareto import alpha_dominates, dominates, pareto_filter
from repro.cost.pruning import (
    InterestingOrderPruning,
    MinCostPruning,
    ParetoPruning,
    PruningPolicy,
    final_prune,
    make_pruning,
)

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "JoinCandidate",
    "BufferSpaceMetric",
    "ExecutionTimeMetric",
    "Metric",
    "make_metrics",
    "alpha_dominates",
    "dominates",
    "pareto_filter",
    "InterestingOrderPruning",
    "MinCostPruning",
    "ParetoPruning",
    "PruningPolicy",
    "final_prune",
    "make_pruning",
]
