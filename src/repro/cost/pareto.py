"""Pareto dominance and approximate dominance on cost vectors.

Multi-objective query optimization compares plans by dominance: a plan is
Pareto-optimal if no other plan is at least as good in every metric.  The
paper's multi-objective experiments use the α-approximation scheme of
Trummer & Koch (SIGMOD 2014): a stored plan *α-dominates* a candidate if its
cost vector is within factor α of the candidate's in every component —
pruning with α > 1 keeps a smaller frontier while guaranteeing that some kept
plan is within factor α of every possible plan.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Exact Pareto dominance: ``a`` at least as good as ``b`` everywhere.

    Equal vectors dominate each other; callers that must keep one of two
    equal-cost plans break the tie by insertion order.
    """
    if len(a) != len(b):
        raise ValueError("cost vectors must have equal length")
    return all(x <= y for x, y in zip(a, b))


def strictly_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Dominance with at least one strictly better component."""
    return dominates(a, b) and any(x < y for x, y in zip(a, b))


def alpha_dominates(a: Sequence[float], b: Sequence[float], alpha: float) -> bool:
    """Approximate dominance: ``a <= alpha * b`` component-wise.

    With ``alpha == 1`` this is exact dominance.  Note the relation is not
    transitive for α > 1, which is why pruning only ever compares candidates
    against *kept* plans.
    """
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1.0, got {alpha}")
    if len(a) != len(b):
        raise ValueError("cost vectors must have equal length")
    return all(x <= alpha * y for x, y in zip(a, b))


def pareto_filter(vectors: Iterable[Sequence[float]]) -> list[tuple[float, ...]]:
    """Return the exact Pareto frontier of the given cost vectors.

    Duplicates collapse to a single representative.  Quadratic in the number
    of vectors; intended for result assembly and tests, not the DP inner
    loop (which uses incremental insertion in ``repro.cost.pruning``).
    """
    frontier: list[tuple[float, ...]] = []
    for vector in vectors:
        candidate = tuple(vector)
        if any(dominates(kept, candidate) for kept in frontier):
            continue
        frontier = [kept for kept in frontier if not dominates(candidate, kept)]
        frontier.append(candidate)
    return frontier
