"""Optimizer configuration shared by master, workers, and cost model.

A single :class:`OptimizerSettings` value describes *what* is being optimized
(plan space, operators, objectives, pruning precision).  It is a small,
picklable, frozen object: in a shared-nothing deployment the master ships it
to every worker together with the query, so workers can rebuild their cost
model and pruning function locally without any shared state — the paper's
"no communication between workers" property.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PlanSpace(enum.Enum):
    """The two plan spaces of the paper: left-deep (linear) and bushy."""

    LINEAR = "linear"
    BUSHY = "bushy"

    @property
    def group_size(self) -> int:
        """Tables per constraint group: pairs for linear, triples for bushy."""
        return 2 if self is PlanSpace.LINEAR else 3

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Backend(enum.Enum):
    """Enumeration-core implementations of the worker DP.

    Every backend searches exactly the same plan space and produces the same
    cost frontiers — equivalence is enforced by the differential-testing
    oracle in :mod:`repro.testing` — they differ only in how the hot path is
    executed:

    * :attr:`LEGACY` — the original object-based DP in ``repro.core.worker``:
      one :class:`~repro.plans.plan.Plan` object per stored sub-plan, pruning
      dispatched through a :class:`~repro.cost.pruning.PruningPolicy`.
    * :attr:`FASTDP` — the flat enumeration core in ``repro.core.fastdp``:
      level-wise bitset subset enumeration over precomputed admissible-mask
      lists, packed cost/order-id/back-pointer state instead of plan
      objects, and dominance pruning that short-circuits to a scalar minimum
      for the single-objective case.  Covers interesting orders (interned
      order ids) and parametric costs (lower-envelope frontiers) natively;
      plan trees are materialized once, at the end.
    * :attr:`VECDP` — the array-native core in ``repro.core.vecdp``:
      level-at-a-time DP over contiguous numpy arrays (dense per-mask cost
      columns, bulk split generation, whole-array join costing, vectorized
      dominance pruning).  Declares plain and multi-objective optimization
      over both plan spaces; interesting orders, parametric costs, and
      α-approximation are honestly undeclared, so ``AUTO`` routes those to
      ``fastdp``.  Requires numpy (an optional extra); registered always,
      *available* only when numpy is importable.
    * :attr:`AUTO` — not a core of its own: the dispatch in
      :mod:`repro.core.worker` resolves it to the fastest *registered*,
      *available* backend whose declared capabilities cover the settings
      (see :class:`repro.core.worker.EnumerationBackend`).  This is the
      default.

    Explicitly requesting a backend that does not declare the capabilities a
    settings value needs is an error — there is no silent fallback; the
    backend that actually ran is recorded in
    :attr:`repro.core.worker.WorkerStats.backend_used`.
    """

    LEGACY = "legacy"
    FASTDP = "fastdp"
    VECDP = "vecdp"
    AUTO = "auto"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Objective(enum.Enum):
    """Plan cost metrics.

    The paper's evaluation uses execution time and buffer space; output rows
    (the classical ``C_out`` metric, additive like time) additionally powers
    the parametric-optimization extension.
    """

    EXECUTION_TIME = "time"
    BUFFER_SPACE = "buffer"
    OUTPUT_ROWS = "io"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Default single-objective configuration (paper's first experiment series).
SINGLE_OBJECTIVE: tuple[Objective, ...] = (Objective.EXECUTION_TIME,)

#: Two-metric configuration (paper's second series: time + buffer space).
MULTI_OBJECTIVE: tuple[Objective, ...] = (
    Objective.EXECUTION_TIME,
    Objective.BUFFER_SPACE,
)

#: Parametric configuration: both metrics additive, so the scalarization
#: ``(1-θ)·time + θ·io`` admits exact dynamic programming for every θ.
PARAMETRIC_OBJECTIVES: tuple[Objective, ...] = (
    Objective.EXECUTION_TIME,
    Objective.OUTPUT_ROWS,
)


@dataclass(frozen=True)
class OptimizerSettings:
    """Everything a worker needs, beyond the query, to run its partition.

    Attributes:
        plan_space: search left-deep (:attr:`PlanSpace.LINEAR`) or bushy plans.
        objectives: one cost metric for classical optimization, several for
            multi-objective optimization.
        alpha: approximation factor for multi-objective pruning; ``1.0`` keeps
            the exact Pareto frontier, larger values prune more aggressively
            with a formal factor-``alpha`` near-optimality guarantee
            (Trummer & Koch, SIGMOD 2014).  Ignored for single objectives.
        consider_orders: track interesting orders (sort-merge output order)
            and keep one best plan per (table set, order).
        use_all_join_algorithms: when False, only block-nested-loop join is
            considered — useful to make tests' expected costs easy to derive.
        parametric: treat the two (additive) objectives as the endpoints of
            a parametric cost function ``(1-θ)·cost[0] + θ·cost[1]`` and keep
            exactly the plans optimal for some θ in [0, 1] (lower-envelope
            pruning; see ``repro.algorithms.pqo``).
        theta: an optional θ *binding* for a parametric request: the caller
            wants the single plan optimal at this θ, not the whole envelope.
            θ is a request parameter, **not** part of the optimization
            problem — the DP always computes the full lower envelope, and
            the serving layer answers a bound request by envelope lookup
            (:mod:`repro.core.envelope`).  Accordingly θ is excluded from
            settings signatures and cache fingerprints
            (:mod:`repro.service.fingerprint`), so every θ of one query
            shape shares one cache entry.  Requires ``parametric=True``.
        backend: which enumeration core runs the worker DP (see
            :class:`Backend`).  Accepts the enum or its string value.  The
            default :attr:`Backend.AUTO` resolves to the fastest registered
            backend capable of the settings — ``fastdp`` for everything this
            package ships.
    """

    plan_space: PlanSpace = PlanSpace.LINEAR
    objectives: tuple[Objective, ...] = SINGLE_OBJECTIVE
    alpha: float = 1.0
    consider_orders: bool = False
    use_all_join_algorithms: bool = True
    parametric: bool = False
    backend: Backend = Backend.AUTO
    theta: float | None = None

    def __post_init__(self) -> None:
        if isinstance(self.backend, str):
            object.__setattr__(self, "backend", Backend(self.backend))
        if not self.objectives:
            raise ValueError("at least one objective is required")
        if len(set(self.objectives)) != len(self.objectives):
            raise ValueError("objectives must be distinct")
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1.0, got {self.alpha}")
        if self.parametric:
            if len(self.objectives) != 2:
                raise ValueError("parametric optimization needs exactly 2 objectives")
            if Objective.BUFFER_SPACE in self.objectives:
                raise ValueError(
                    "parametric optimization requires additive metrics; "
                    "buffer space composes via max"
                )
            if self.consider_orders:
                raise ValueError(
                    "parametric optimization does not support interesting orders"
                )
        if self.theta is not None:
            if not self.parametric:
                raise ValueError("theta requires parametric=True")
            if not 0.0 <= self.theta <= 1.0:
                raise ValueError(f"theta must be in [0, 1], got {self.theta}")

    @property
    def is_multi_objective(self) -> bool:
        """Whether plans are compared by Pareto dominance over several metrics."""
        return len(self.objectives) > 1

    def replace(self, **changes: object) -> "OptimizerSettings":
        """Return a copy with the given fields changed (dataclasses.replace)."""
        import dataclasses

        return dataclasses.replace(self, **changes)

    def without_theta(self) -> "OptimizerSettings":
        """The θ-free base settings — what fingerprints and DP runs use.

        Identity (no copy) when no θ is bound, so the common non-parametric
        path pays nothing.
        """
        if self.theta is None:
            return self
        return self.replace(theta=None)


#: Settings used when none are supplied: classical single-objective
#: optimization of left-deep plans with all join operators.
DEFAULT_SETTINGS = OptimizerSettings()
