"""Sharded gateway vs a single service under concurrent clients.

The gateway's claim, measured: when many clients race the same cold
fingerprints, in-flight coalescing (singleflight) turns N duplicate DP
enumerations into one, so **concurrent-client throughput through the
gateway is at least that of a single bare** :class:`OptimizerService`
serving the same threads.  The workload is deliberately adversarial for an
uncoalesced service — every client submits the same unique queries in the
same order, so all clients miss each fingerprint nearly simultaneously —
because that is exactly the thundering-herd shape a production cache sees
after a restart.

Also verified while measuring (a benchmark that silently benchmarks a wrong
optimizer is worse than no benchmark):

* every request's best-plan cost equals serial optimization;
* the gateway performed **exactly one** DP run per unique fingerprint
  (counted both by its own counters and by the shard executors).

Dual-use module:

* **pytest** (how the rest of ``benchmarks/`` runs)::

      PYTHONPATH=src python -m pytest -q benchmarks/bench_gateway.py

* **script** (the CI benchmark-regression job)::

      PYTHONPATH=src python benchmarks/bench_gateway.py \
          --repeats 2 --json BENCH_gateway.json --min-speedup 1.0

  Exits non-zero if gateway throughput falls below ``--min-speedup`` times
  the single-service baseline, if any plan diverges from serial, or if the
  gateway ran more than one optimization for any fingerprint.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

try:  # script mode: bootstrap the src layout without installation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - exercised by the CI script job
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster.executors import SerialPartitionExecutor
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.service import OptimizerService, ShardedOptimizerGateway

N_THREADS = 8
N_UNIQUE = 4
#: 9-table queries make each DP run long enough (a few ms) that concurrent
#: cold clients genuinely pile up on the same fingerprint — the regime the
#: coalescing claim is about.  Smaller queries finish before the herd forms
#: and measure only lock overhead.
N_TABLES = 9
N_WORKERS = 4
N_SHARDS = 4


class CountingSerialExecutor(SerialPartitionExecutor):
    """Serial executor counting DP runs (``map_partitions`` invocations)."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def map_partitions(self, query, n_partitions, settings):
        with self._lock:
            self.calls += 1
        return super().map_partitions(query, n_partitions, settings)


def make_workload(n_unique: int = N_UNIQUE, n_tables: int = N_TABLES, seed: int = 61):
    generator = SteinbrunnGenerator(seed)
    return [generator.query(n_tables) for __ in range(n_unique)]


def _drive_concurrently(submit, queries, n_threads: int):
    """Every thread submits the whole workload; returns (wall_s, results)."""
    results: list[list] = [[] for __ in range(n_threads)]
    errors: list[BaseException | None] = [None] * n_threads
    barrier = threading.Barrier(n_threads + 1)

    def client(index: int) -> None:
        barrier.wait()
        try:
            results[index] = [submit(query) for query in queries]
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors[index] = error

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    for error in errors:
        if error is not None:
            raise error
    return wall_s, results


def measure_single_service(queries, n_threads: int = N_THREADS):
    """Concurrent clients against one bare (uncoalesced) OptimizerService."""
    executor = CountingSerialExecutor()
    with OptimizerService(n_workers=N_WORKERS, executor=executor) as service:
        wall_s, results = _drive_concurrently(service.optimize, queries, n_threads)
    return {
        "wall_s": wall_s,
        "throughput_qps": n_threads * len(queries) / wall_s,
        "optimizations": executor.calls,
        "results": results,
    }


def measure_gateway(queries, n_threads: int = N_THREADS, n_shards: int = N_SHARDS):
    """The same concurrent clients through the sharded coalescing gateway."""
    executors: list[CountingSerialExecutor] = []

    def factory():
        executor = CountingSerialExecutor()
        executors.append(executor)
        return executor

    with ShardedOptimizerGateway(
        n_shards=n_shards, n_workers=N_WORKERS, executor_factory=factory
    ) as gateway:
        wall_s, results = _drive_concurrently(gateway.optimize, queries, n_threads)
        stats = gateway.stats()
    return {
        "wall_s": wall_s,
        "throughput_qps": n_threads * len(queries) / wall_s,
        "optimizations": stats.optimizations,
        "executor_runs": sum(executor.calls for executor in executors),
        "coalesced": stats.coalesced,
        "peak_in_flight": stats.peak_in_flight,
        "hit_rate": stats.hit_rate,
        "results": results,
    }


def _plans_agree(queries, measured) -> bool:
    references = [best_plan(optimize_serial(query)).cost for query in queries]
    return all(
        result.best.cost == reference
        for per_thread in measured["results"]
        for result, reference in zip(per_thread, references)
    )


def run_benchmark(
    n_threads: int = N_THREADS,
    n_unique: int = N_UNIQUE,
    n_tables: int = N_TABLES,
    n_shards: int = N_SHARDS,
    seed: int = 61,
    repeats: int = 2,
) -> dict:
    """Best-of-``repeats`` cold-start comparison; returns the full report."""
    queries = make_workload(n_unique, n_tables, seed)
    single_best = None
    gateway_best = None
    plans_agree = True
    one_run_per_fingerprint = True
    for __ in range(repeats):
        single = measure_single_service(queries, n_threads)
        gateway = measure_gateway(queries, n_threads, n_shards)
        plans_agree = (
            plans_agree
            and _plans_agree(queries, single)
            and _plans_agree(queries, gateway)
        )
        one_run_per_fingerprint = one_run_per_fingerprint and (
            gateway["optimizations"] == n_unique
            and gateway["executor_runs"] == n_unique
        )
        if single_best is None or single["wall_s"] < single_best["wall_s"]:
            single_best = single
        if gateway_best is None or gateway["wall_s"] < gateway_best["wall_s"]:
            gateway_best = gateway
    assert single_best is not None and gateway_best is not None
    single_best = {k: v for k, v in single_best.items() if k != "results"}
    gateway_best = {k: v for k, v in gateway_best.items() if k != "results"}
    return {
        "config": {
            "n_threads": n_threads,
            "n_unique_queries": n_unique,
            "n_tables": n_tables,
            "n_shards": n_shards,
            "n_workers": N_WORKERS,
            "seed": seed,
            "repeats": repeats,
        },
        "single_service": single_best,
        "gateway": gateway_best,
        "speedup": single_best["wall_s"] / gateway_best["wall_s"],
        "plans_agree": plans_agree,
        "one_run_per_fingerprint": one_run_per_fingerprint,
        # How many duplicate DP runs the herd forced on the bare service
        # (n_unique is the floor; anything above it is wasted work the
        # gateway's coalescing avoids by construction).
        "single_service_duplicate_runs": single_best["optimizations"] - n_unique,
    }


# ------------------------------------------------------------------ pytest


def test_gateway_throughput_at_least_single_service():
    """Acceptance: the gateway serves the thundering herd no slower than a
    bare service, with every plan still agreeing with serial DP."""
    report = run_benchmark(repeats=2)
    assert report["plans_agree"], report
    assert report["one_run_per_fingerprint"], report
    assert report["speedup"] >= 1.0, report


def test_gateway_coalesces_the_herd():
    report = run_benchmark(repeats=1)
    gateway = report["gateway"]
    assert gateway["optimizations"] == N_UNIQUE, report
    assert gateway["coalesced"] + gateway["hit_rate"] > 0, report


# ------------------------------------------------------------------ script


def _print_report(report: dict) -> None:
    config = report["config"]
    single = report["single_service"]
    gateway = report["gateway"]
    print(
        f"gateway benchmark: {config['n_threads']} client threads x "
        f"{config['n_unique_queries']} unique {config['n_tables']}-table "
        f"queries, {config['n_shards']} shards, repeats={config['repeats']}"
    )
    print(
        f"  single service: {single['wall_s'] * 1e3:8.1f} ms  "
        f"({single['throughput_qps']:8.1f} req/s, "
        f"{single['optimizations']} DP runs)"
    )
    print(
        f"  gateway:        {gateway['wall_s'] * 1e3:8.1f} ms  "
        f"({gateway['throughput_qps']:8.1f} req/s, "
        f"{gateway['optimizations']} DP runs, "
        f"{gateway['coalesced']} coalesced)"
    )
    print(
        f"  speedup {report['speedup']:5.2f}x   "
        f"duplicate runs avoided: {report['single_service_duplicate_runs']}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=N_THREADS)
    parser.add_argument("--uniques", type=int, default=N_UNIQUE)
    parser.add_argument("--tables", type=int, default=N_TABLES)
    parser.add_argument("--shards", type=int, default=N_SHARDS)
    parser.add_argument("--seed", type=int, default=61)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--json", default=None, help="write the full report to this file"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail unless gateway throughput reaches this multiple of the "
        "single-service baseline",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(
        n_threads=args.threads,
        n_unique=args.uniques,
        n_tables=args.tables,
        n_shards=args.shards,
        seed=args.seed,
        repeats=args.repeats,
    )
    _print_report(report)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["plans_agree"]:
        print("FAIL: a concurrent answer diverged from serial DP", file=sys.stderr)
        return 2
    if not report["one_run_per_fingerprint"]:
        print(
            "FAIL: the gateway ran more than one optimization for a "
            "fingerprint (coalescing broken)",
            file=sys.stderr,
        )
        return 3
    if report["speedup"] < args.min_speedup:
        print(
            f"FAIL: gateway speedup {report['speedup']:.2f}x below the "
            f"{args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
