"""Figure 3 — join-graph structure has negligible impact on DP time.

Because cross products are allowed, the DP examines the same table sets for
any topology; only operator applicability differs slightly.  Benchmarks time
serial DP per topology; the series report checks the spread is small.
"""

from __future__ import annotations

import statistics

import pytest

from repro.bench.experiments import fig3
from repro.core.serial import optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind

KINDS = [JoinGraphKind.CHAIN, JoinGraphKind.STAR, JoinGraphKind.CYCLE]


@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
def test_serial_dp_by_topology(benchmark, linear_settings, kind):
    query = SteinbrunnGenerator(43).query(9, kind)
    result = benchmark.pedantic(
        optimize_serial, args=(query, linear_settings), rounds=3, iterations=1
    )
    assert result.plans


@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
def test_bushy_dp_by_topology(benchmark, bushy_settings, kind):
    query = SteinbrunnGenerator(43).query(7, kind)
    result = benchmark.pedantic(
        optimize_serial, args=(query, bushy_settings), rounds=3, iterations=1
    )
    assert result.plans


def test_fig3_series_report(benchmark):
    """Regenerate Figure 3 (CI scale): topology changes time only slightly."""
    result = benchmark.pedantic(fig3, args=("ci",), rounds=1, iterations=1)
    print()
    print(result.format())
    # Group series by algorithm+size prefix; compare topologies pointwise.
    groups: dict[str, list] = {}
    for series in result.series:
        prefix = series.label.split("/")[0].strip()
        groups.setdefault(prefix, []).append(series)
    for prefix, family in groups.items():
        workers = set(family[0].time_by_workers())
        for at in workers:
            times = [series.time_by_workers()[at] for series in family]
            spread = max(times) / min(times)
            # The paper reports "negligible impact"; operator applicability
            # differences keep our spread well under 2x.
            assert spread < 2.0, (prefix, at, times)
