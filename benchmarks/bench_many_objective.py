"""Ablation: DP cost growth with the number of cost metrics (Section 5.4).

The paper's analysis: memory and network grow linearly in the number of
plans stored per table set, time cubically — because each split must pair
all stored plans of both operands and pruning compares against whole
frontiers.  Benchmarks one query under 1, 2, and 3 metrics.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.config import Objective, OptimizerSettings
from repro.core.serial import optimize_serial

OBJECTIVE_SETS = {
    "1-metric": (Objective.EXECUTION_TIME,),
    "2-metrics": (Objective.EXECUTION_TIME, Objective.BUFFER_SPACE),
    "3-metrics": (
        Objective.EXECUTION_TIME,
        Objective.BUFFER_SPACE,
        Objective.OUTPUT_ROWS,
    ),
}


@pytest.mark.parametrize("name", list(OBJECTIVE_SETS), ids=list(OBJECTIVE_SETS))
def test_dp_cost_by_metric_count(benchmark, name):
    query = star_query(9)
    settings = OptimizerSettings(objectives=OBJECTIVE_SETS[name])
    result = benchmark.pedantic(
        optimize_serial, args=(query, settings), rounds=3, iterations=1
    )
    assert result.plans


def test_stored_plans_grow_with_metrics():
    query = star_query(9)
    stored = []
    for objectives in OBJECTIVE_SETS.values():
        settings = OptimizerSettings(objectives=objectives)
        stats = optimize_serial(query, settings).stats
        stored.append(stats.stored_plans)
    assert stored[0] <= stored[1] <= stored[2]
