"""Figure 1 — MPQ vs SMA, single objective (time and network vs workers).

pytest-benchmark rows time individual optimizer runs at representative
worker counts; ``test_fig1_series_report`` regenerates and prints the full
figure series at CI scale (run with ``-s`` to see it inline; the series also
lands in the bench log).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.algorithms.mpq import optimize_mpq
from repro.algorithms.sma import optimize_sma
from repro.bench.experiments import fig1


@pytest.mark.parametrize("workers", [1, 8, 32])
def test_mpq_linear8(benchmark, linear_settings, workers):
    query = star_query(8)
    report = benchmark.pedantic(
        optimize_mpq, args=(query, workers, linear_settings), rounds=3, iterations=1
    )
    assert report.best.cost[0] > 0


@pytest.mark.parametrize("workers", [1, 8, 32])
def test_sma_linear8(benchmark, linear_settings, workers):
    query = star_query(8)
    report = benchmark.pedantic(
        optimize_sma, args=(query, workers, linear_settings), rounds=3, iterations=1
    )
    assert report.best.cost[0] > 0


@pytest.mark.parametrize("workers", [1, 4])
def test_mpq_bushy8(benchmark, bushy_settings, workers):
    query = star_query(8)
    report = benchmark.pedantic(
        optimize_mpq, args=(query, workers, bushy_settings), rounds=3, iterations=1
    )
    assert report.best.cost[0] > 0


@pytest.mark.parametrize("workers", [1, 4])
def test_sma_bushy8(benchmark, bushy_settings, workers):
    query = star_query(8)
    report = benchmark.pedantic(
        optimize_sma, args=(query, workers, bushy_settings), rounds=3, iterations=1
    )
    assert report.best.cost[0] > 0


def test_fig1_series_report(benchmark):
    """Regenerate the Figure 1 series (CI scale) and check its shape."""
    result = benchmark.pedantic(fig1, args=("ci",), rounds=1, iterations=1)
    print()
    print(result.format())
    by_label = {series.label: series for series in result.series}
    for label, series in by_label.items():
        if not label.startswith("MPQ"):
            continue
        sma = by_label[label.replace("MPQ", "SMA")]
        shared = set(series.network_by_workers()) & set(sma.network_by_workers())
        shared = {w for w in shared if w >= 4}
        # SMA moves more bytes than MPQ at every shared worker count >= 4.
        for workers in shared:
            assert (
                sma.network_by_workers()[workers]
                > series.network_by_workers()[workers]
            )
