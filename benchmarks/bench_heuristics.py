"""Heuristic baselines vs DP: speed and plan quality.

The paper's motivation for parallelizing DP rather than randomized search:
heuristics are fast and easy to parallelize but sacrifice the optimality
guarantee.  Benchmarks the classical heuristics (GOO, iterated improvement,
simulated annealing) against serial DP and reports the quality gap.

Also ablates interesting orders: the extra DP work (more stored plans per
set) against the cost reduction it can unlock.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.algorithms.randomized import (
    greedy_operator_ordering,
    iterated_improvement,
    simulated_annealing,
)
from repro.config import OptimizerSettings, PlanSpace
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator


def test_dp_baseline(benchmark, linear_settings):
    query = star_query(10)
    result = benchmark.pedantic(
        optimize_serial, args=(query, linear_settings), rounds=3, iterations=1
    )
    assert result.plans


def test_goo(benchmark, bushy_settings):
    query = star_query(10)
    plan = benchmark.pedantic(
        greedy_operator_ordering, args=(query, bushy_settings), rounds=3, iterations=1
    )
    assert plan.mask == query.all_tables_mask


def test_iterated_improvement(benchmark):
    query = star_query(10)
    plan = benchmark.pedantic(
        lambda: iterated_improvement(query, n_restarts=3, seed=1),
        rounds=3,
        iterations=1,
    )
    assert plan.mask == query.all_tables_mask


def test_simulated_annealing(benchmark):
    query = star_query(10)
    plan = benchmark.pedantic(
        lambda: simulated_annealing(query, seed=1), rounds=3, iterations=1
    )
    assert plan.mask == query.all_tables_mask


def test_quality_report():
    """Print the quality gap across a small workload (run with -s)."""
    print()
    print(f"{'seed':>5} {'DP':>14} {'GOO':>8} {'II':>8} {'SA':>8}  (ratio to DP)")
    worst = {"goo": 1.0, "ii": 1.0, "sa": 1.0}
    for seed in range(5):
        query = SteinbrunnGenerator(400 + seed).query(9)
        bushy = OptimizerSettings(plan_space=PlanSpace.BUSHY)
        linear = OptimizerSettings(plan_space=PlanSpace.LINEAR)
        dp = best_plan(optimize_serial(query, bushy)).cost[0]
        goo = greedy_operator_ordering(query, bushy).cost[0] / dp
        ii = iterated_improvement(query, n_restarts=3, seed=seed).cost[0] / dp
        sa = simulated_annealing(query, seed=seed).cost[0] / dp
        worst["goo"] = max(worst["goo"], goo)
        worst["ii"] = max(worst["ii"], ii)
        worst["sa"] = max(worst["sa"], sa)
        print(f"{seed:>5} {dp:>14.4g} {goo:>8.2f} {ii:>8.2f} {sa:>8.2f}")
    # Heuristics stay within sane factors but DP is the reference.
    assert all(ratio >= 1.0 - 1e-9 for ratio in worst.values())


@pytest.mark.parametrize("orders", [False, True], ids=["orders-off", "orders-on"])
def test_interesting_orders_ablation(benchmark, orders):
    generator = SteinbrunnGenerator(55, clustered_tables=True)
    query = generator.query(9)
    settings = OptimizerSettings(consider_orders=orders)
    result = benchmark.pedantic(
        optimize_serial, args=(query, settings), rounds=3, iterations=1
    )
    assert result.plans


def test_orders_cost_vs_benefit():
    generator = SteinbrunnGenerator(55, clustered_tables=True)
    query = generator.query(9)
    off = optimize_serial(query, OptimizerSettings())
    on = optimize_serial(query, OptimizerSettings(consider_orders=True))
    assert on.stats.stored_plans >= off.stats.stored_plans
    assert min(p.cost[0] for p in on.plans) <= min(p.cost[0] for p in off.plans)
