"""Figure 5 — multi-objective MPQ scaling (linear plans, alpha = 10)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.algorithms.mpq import optimize_mpq
from repro.bench.experiments import fig5


@pytest.mark.parametrize("workers", [1, 4, 16])
def test_moq_scaling_linear10(benchmark, moq_settings, workers):
    query = star_query(10)
    report = benchmark.pedantic(
        optimize_mpq, args=(query, workers, moq_settings), rounds=3, iterations=1
    )
    assert report.n_partitions == workers


def test_fig5_series_report(benchmark):
    """Regenerate Figure 5 (CI scale) and assert steady scaling."""
    result = benchmark.pedantic(fig5, args=("ci",), rounds=1, iterations=1)
    print()
    print(result.format())
    for series in result.series:
        points = series.points
        # Worker time must decrease monotonically with the worker count.
        worker_times = [point.worker_time_ms for point in points]
        assert worker_times == sorted(worker_times, reverse=True)
        # Network bytes grow with the worker count (more result messages,
        # each carrying a partition's Pareto frontier).
        networks = [point.network_bytes for point in points]
        assert networks == sorted(networks)
