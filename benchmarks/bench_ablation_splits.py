"""Ablations for the design choices DESIGN.md calls out.

1. Bushy split generation: the paper's constrained Cartesian-product
   generation (complexity linear in *admissible* splits) vs the naive
   enumerate-all-then-filter strategy (linear in *possible* splits).
2. Constraint count: per-worker DP work as l grows, validating the 3/4 and
   21/27 per-constraint factors end to end on real runs.
3. Speedup summary: the paper's Section 6.2 headline numbers at CI scale.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.bench.experiments import speedups
from repro.config import PlanSpace
from repro.core.constraints import partition_constraints
from repro.core.partitioning import admissible_join_results
from repro.core.worker import (
    _bushy_groups,
    bushy_operands,
    naive_bushy_operands,
    optimize_partition,
)
from repro.util.bitset import popcount


def _bushy_partition(n_tables, n_constraints):
    constraints = partition_constraints(
        n_tables, 0, 1 << n_constraints, PlanSpace.BUSHY
    )
    masks = [
        mask
        for mask in admissible_join_results(n_tables, constraints, PlanSpace.BUSHY)
        if popcount(mask) >= 2
    ]
    return constraints, masks


class TestSplitGenerationAblation:
    def test_constrained_generation(self, benchmark):
        constraints, masks = _bushy_partition(12, 4)
        groups = _bushy_groups(12, constraints)

        def run():
            return sum(len(bushy_operands(mask, groups)) for mask in masks)

        total = benchmark.pedantic(run, rounds=3, iterations=1)
        assert total > 0

    def test_naive_generation(self, benchmark):
        constraints, masks = _bushy_partition(12, 4)

        def run():
            return sum(
                len(naive_bushy_operands(mask, constraints)) for mask in masks
            )

        total = benchmark.pedantic(run, rounds=3, iterations=1)
        assert total > 0

    def test_same_output(self):
        constraints, masks = _bushy_partition(9, 3)
        groups = _bushy_groups(9, constraints)
        for mask in masks[:200]:
            assert sorted(bushy_operands(mask, groups)) == sorted(
                naive_bushy_operands(mask, constraints)
            )


class TestConstraintCountAblation:
    @pytest.mark.parametrize("n_constraints", [0, 2, 4])
    def test_linear_work_by_constraints(self, benchmark, linear_settings, n_constraints):
        query = star_query(10)
        result = benchmark.pedantic(
            optimize_partition,
            args=(query, 0, 1 << n_constraints, linear_settings),
            rounds=3,
            iterations=1,
        )
        assert result.plans

    def test_linear_factor_end_to_end(self, linear_settings):
        query = star_query(10)
        splits = [
            optimize_partition(query, 0, 1 << l, linear_settings).stats.splits_considered
            for l in range(5)
        ]
        for previous, current in zip(splits, splits[1:]):
            assert 0.70 < current / previous < 0.78

    def test_bushy_factor_end_to_end(self, bushy_settings):
        query = star_query(9)
        splits = [
            optimize_partition(query, 0, 1 << l, bushy_settings).stats.splits_considered
            for l in range(4)
        ]
        for previous, current in zip(splits, splits[1:]):
            # 21/27 with slack: removing the degenerate operands (0 and U)
            # shifts the ratio slightly on small queries.
            assert 0.72 < current / previous < 0.82


def test_speedups_report(benchmark):
    """Section 6.2 headline speedups at CI scale."""
    result = benchmark.pedantic(speedups, args=("ci",), rounds=1, iterations=1)
    print()
    print(result.format())
    # The paper notes parallelization does not pay off for sub-second
    # optimizations; at CI scale the smallest configs sit at the break-even
    # point, so require near-break-even everywhere and a clear win overall.
    for row in result.rows:
        assert row.speedup > 0.7, row
    assert max(row.speedup for row in result.rows) > 1.5
