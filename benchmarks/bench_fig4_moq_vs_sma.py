"""Figure 4 — multi-objective MPQ vs SMA (two metrics, alpha = 10)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.algorithms.mpq import optimize_mpq
from repro.algorithms.sma import optimize_sma
from repro.bench.experiments import fig4
from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace


@pytest.mark.parametrize("workers", [1, 8])
def test_moq_mpq_linear8(benchmark, moq_settings, workers):
    query = star_query(8)
    report = benchmark.pedantic(
        optimize_mpq, args=(query, workers, moq_settings), rounds=3, iterations=1
    )
    assert all(len(plan.cost) == 2 for plan in report.plans)


@pytest.mark.parametrize("workers", [1, 8])
def test_moq_sma_linear8(benchmark, moq_settings, workers):
    query = star_query(8)
    report = benchmark.pedantic(
        optimize_sma, args=(query, workers, moq_settings), rounds=3, iterations=1
    )
    assert report.plans


def test_moq_bushy6(benchmark):
    settings = OptimizerSettings(
        plan_space=PlanSpace.BUSHY, objectives=MULTI_OBJECTIVE, alpha=10.0
    )
    query = star_query(6)
    report = benchmark.pedantic(
        optimize_mpq, args=(query, 4, settings), rounds=3, iterations=1
    )
    assert report.plans


def test_fig4_series_report(benchmark):
    """Regenerate Figure 4 (CI scale): MPQ beats SMA on traffic and time."""
    result = benchmark.pedantic(fig4, args=("ci",), rounds=1, iterations=1)
    print()
    print(result.format())
    by_label = {series.label: series for series in result.series}
    for label, series in by_label.items():
        if not label.startswith("MPQ"):
            continue
        sma = by_label[label.replace("MPQ", "SMA")]
        shared = {
            w
            for w in set(series.network_by_workers()) & set(sma.network_by_workers())
            if w >= 4
        }
        for workers in shared:
            assert (
                sma.network_by_workers()[workers]
                > series.network_by_workers()[workers]
            )
