"""Out-of-process shard servers vs the in-process gateway, same herd.

The network gateway's claim, measured: moving shards into their own
processes buys real CPU parallelism for DP enumeration.  In-process, the
:class:`~repro.service.ShardedOptimizerGateway` runs every DP enumeration
under one interpreter lock no matter how many client threads pile in;
shard *processes* run them truly concurrently, and that must outweigh the
tax the network stack adds (JSON codecs, unix-socket round trips, the
router's hashing and breaker bookkeeping).

One workload, deterministic: a seeded Zipf/burst schedule from
:mod:`repro.bench.traffic` replayed by a 64-client herd against

* **in-process** — a ``ShardedOptimizerGateway`` with ``N_SHARDS`` thread
  shards, called directly;
* **multi-process** — ``N_SHARDS`` ``python -m repro shard-server``
  subprocesses on unix sockets behind a :class:`NetworkOptimizerGateway`
  with consistent-hash routing.

Verified while measuring, on both stacks:

* every request's best-plan cost agrees across the two stacks;
* exactly one DP enumeration per unique fingerprint — for the network
  stack that is the *sum of the per-server counters*, i.e. the invariant
  holds across process boundaries.

The gate is hardware-aware, transparently: with >= 2 CPUs available the
multi-process stack must reach ``--min-speedup`` (1.0 in CI — shard
processes must at least pay for their own wire tax).  On a single
available CPU process parallelism physically cannot exist — the
multi-process stack is the in-process stack plus codec/socket work, so
demanding parity would demand a negative protocol cost.  There the gate
degrades to the **wire-tax bound** ``SINGLE_CPU_FLOOR``: serving the herd
through real sockets, frames, and routing may cost at most ~20% of
throughput.  The applied floor and the CPU count are recorded in the
report, so a regenerated ``BENCH_net.json`` always states which claim it
proves.

Dual-use module:

* **pytest**::

      PYTHONPATH=src python -m pytest -q benchmarks/bench_net.py

* **script** (the CI benchmark-regression job)::

      PYTHONPATH=src python benchmarks/bench_net.py \
          --repeats 2 --json BENCH_net.json --min-speedup 1.0
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

try:  # script mode: bootstrap the src layout without installation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - exercised by the CI script job
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    replay_threaded,
    unique_fingerprints,
)
from repro.service import NetworkOptimizerGateway, ShardedOptimizerGateway

ROOT = Path(__file__).resolve().parents[1]

N_CLIENTS = 64
N_SHARDS = 2
#: Simulated-cluster worker count per shard server process.
N_WORKERS = 4
#: Admission bound per shard server.  The whole herd fits, so the
#: measurement never includes overload retry sleeps; admission control
#: itself is exercised (and asserted) in tests/test_net.py instead.
MAX_IN_FLIGHT = 64
#: DP-heavy profile: many unique queries at 8-9 tables makes enumeration
#: (which shard processes parallelize) dominate serving overhead (which
#: they add to).  A hit-dominated profile would measure socket tax instead.
PROFILE = TrafficProfile(n_requests=72, n_unique=24, tables=(8, 9), seed=71)
#: The gate on a single available CPU (see the module docstring): no
#: parallel speedup is physically possible, so bound the wire tax instead.
SINGLE_CPU_FLOOR = 0.8


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_floor(min_speedup: float) -> float:
    return min_speedup if available_cpus() >= 2 else SINGLE_CPU_FLOOR


def spawn_shard_servers(n_shards: int, run_dir: Path) -> tuple[dict, list]:
    """Start ``n_shards`` shard-server subprocesses on unix sockets."""
    shards: dict[str, str] = {}
    procs: list[subprocess.Popen] = []
    for index in range(n_shards):
        sock = run_dir / f"shard-{index}.sock"
        procs.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "shard-server",
                    "--listen",
                    f"unix:{sock}",
                    "--shard-id",
                    str(index),
                    "--workers",
                    str(N_WORKERS),
                    "--max-in-flight",
                    str(MAX_IN_FLIGHT),
                ],
                env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        )
        shards[f"shard-{index}"] = f"unix:{sock}"
    deadline = time.perf_counter() + 30.0
    for index in range(n_shards):
        sock = run_dir / f"shard-{index}.sock"
        while not sock.exists():
            if procs[index].poll() is not None:
                raise RuntimeError(
                    f"shard-{index} died at startup:\n{procs[index].stdout.read()}"
                )
            if time.perf_counter() > deadline:
                raise RuntimeError(f"shard socket {sock} never appeared")
            time.sleep(0.05)
    return shards, procs


def reap(procs: list[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(10)
        proc.stdout.close()


def measure_in_process(schedule, n_clients: int = N_CLIENTS) -> dict:
    with ShardedOptimizerGateway(n_shards=N_SHARDS, n_workers=N_WORKERS) as gateway:
        report = replay_threaded(gateway, schedule, n_clients=n_clients)
        optimizations = gateway.stats().optimizations
    return {
        "wall_s": report.wall_s,
        "throughput_qps": report.throughput_qps,
        "optimizations": optimizations,
        "latency_ms": report.latency_percentiles(),
        "results": report.results,
    }


def measure_multi_process(
    schedule, n_clients: int = N_CLIENTS, n_shards: int = N_SHARDS
) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-net-") as run_dir:
        shards, procs = spawn_shard_servers(n_shards, Path(run_dir))
        try:
            with NetworkOptimizerGateway(
                shards, overload_retries=10_000, request_timeout_s=300.0
            ) as gateway:
                report = replay_threaded(gateway, schedule, n_clients=n_clients)
                stats = gateway.stats()
                drained = gateway.drain()
        finally:
            reap(procs)
    per_shard = {
        name: {
            "optimizations": shard["optimizations"],
            "served": shard["served"],
            "rejected_overload": shard["rejected_overload"],
            "cache_hits": shard["cache_hits"],
        }
        for name, shard in stats["shards"].items()
    }
    return {
        "wall_s": report.wall_s,
        "throughput_qps": report.throughput_qps,
        "optimizations": sum(s["optimizations"] for s in per_shard.values()),
        "per_shard": per_shard,
        "drained": drained,
        "latency_ms": report.latency_percentiles(),
        "results": report.results,
    }


def _stacks_agree(in_process: dict, multi_process: dict) -> bool:
    """Every fingerprint's best-plan cost matches across the stacks."""
    reference = {
        result.fingerprint: result.best.cost for result in in_process["results"]
    }
    return all(
        reference[result.fingerprint] == result.best.cost
        for result in multi_process["results"]
    )


def run_benchmark(
    n_clients: int = N_CLIENTS,
    n_shards: int = N_SHARDS,
    profile: TrafficProfile = PROFILE,
    repeats: int = 2,
) -> dict:
    """Best-of-``repeats`` comparison; fresh (cold) stacks every repeat."""
    schedule = generate_traffic(profile)
    n_unique = len(unique_fingerprints(schedule))
    in_best = None
    multi_best = None
    plans_agree = True
    one_run_per_fingerprint = True
    for __ in range(repeats):
        in_process = measure_in_process(schedule, n_clients)
        multi_process = measure_multi_process(schedule, n_clients, n_shards)
        plans_agree = plans_agree and _stacks_agree(in_process, multi_process)
        one_run_per_fingerprint = one_run_per_fingerprint and (
            in_process["optimizations"] == n_unique
            and multi_process["optimizations"] == n_unique
            and all(multi_process["drained"].values())
        )
        if in_best is None or in_process["wall_s"] < in_best["wall_s"]:
            in_best = in_process
        if multi_best is None or multi_process["wall_s"] < multi_best["wall_s"]:
            multi_best = multi_process
    assert in_best is not None and multi_best is not None
    in_best = {k: v for k, v in in_best.items() if k != "results"}
    multi_best = {k: v for k, v in multi_best.items() if k != "results"}
    return {
        "config": {
            "n_clients": n_clients,
            "n_shards": n_shards,
            "n_workers": N_WORKERS,
            "max_in_flight": MAX_IN_FLIGHT,
            "n_requests": profile.n_requests,
            "n_unique_queries": profile.n_unique,
            "tables": list(profile.tables),
            "seed": profile.seed,
            "repeats": repeats,
            "available_cpus": available_cpus(),
        },
        "n_unique_fingerprints": n_unique,
        "in_process": in_best,
        "multi_process": multi_best,
        "speedup": in_best["wall_s"] / multi_best["wall_s"],
        "plans_agree": plans_agree,
        "one_run_per_fingerprint": one_run_per_fingerprint,
    }


# ------------------------------------------------------------------ pytest


def test_multi_process_throughput_at_least_in_process():
    """Acceptance: shard server processes serve the 64-client Zipf herd no
    slower than the in-process threaded gateway (given >= 2 CPUs; on one
    CPU the wire-tax bound applies — see the module docstring), with both
    stacks agreeing on every plan and paying exactly one DP run per unique
    fingerprint — the singleflight invariant held *across process
    boundaries*."""
    report = run_benchmark(repeats=2)
    assert report["plans_agree"], report
    assert report["one_run_per_fingerprint"], report
    assert report["speedup"] >= effective_floor(1.0), report


# ------------------------------------------------------------------ script


def _print_report(report: dict) -> None:
    config = report["config"]
    print(
        f"network benchmark: {config['n_clients']} clients, "
        f"{config['n_requests']} requests over "
        f"{report['n_unique_fingerprints']} unique fingerprints, "
        f"{config['n_shards']} shards, repeats={config['repeats']}"
    )
    for label, side in (
        ("in-process", report["in_process"]),
        ("multi-proc", report["multi_process"]),
    ):
        latency = side["latency_ms"]
        print(
            f"  {label:>10}: {side['wall_s'] * 1e3:8.1f} ms  "
            f"({side['throughput_qps']:8.1f} req/s, "
            f"{side['optimizations']} DP runs)  "
            f"p50/p90/p99 = {latency['p50']:.2f}/{latency['p90']:.2f}/"
            f"{latency['p99']:.2f} ms"
        )
    for name, shard in report["multi_process"]["per_shard"].items():
        print(
            f"    {name}: {shard['optimizations']} DP runs, "
            f"{shard['served']} served, {shard['cache_hits']} cache hits, "
            f"{shard['rejected_overload']} overload rejections"
        )
    print(
        f"  speedup {report['speedup']:5.2f}x "
        f"({config['available_cpus']} CPU(s) available)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    parser.add_argument("--shards", type=int, default=N_SHARDS)
    parser.add_argument("--requests", type=int, default=PROFILE.n_requests)
    parser.add_argument("--uniques", type=int, default=PROFILE.n_unique)
    parser.add_argument("--seed", type=int, default=PROFILE.seed)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--json", default=None, help="write the full report to this file"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail unless multi-process throughput reaches this multiple "
        "of the in-process gateway",
    )
    args = parser.parse_args(argv)
    profile = TrafficProfile(
        n_requests=args.requests,
        n_unique=args.uniques,
        tables=PROFILE.tables,
        seed=args.seed,
    )
    report = run_benchmark(
        n_clients=args.clients,
        n_shards=args.shards,
        profile=profile,
        repeats=args.repeats,
    )
    floor = effective_floor(args.min_speedup)
    report["gate"] = {
        "min_speedup": args.min_speedup,
        "applied_floor": floor,
        "parallel_hardware": available_cpus() >= 2,
        "passed": (
            report["plans_agree"]
            and report["one_run_per_fingerprint"]
            and report["speedup"] >= floor
        ),
    }
    _print_report(report)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["plans_agree"]:
        print(
            "FAIL: a network-served answer diverged from the in-process "
            "gateway",
            file=sys.stderr,
        )
        return 2
    if not report["one_run_per_fingerprint"]:
        print(
            "FAIL: more than one DP run for a fingerprint across the shard "
            "processes (routing/coalescing broken), or a shard failed to "
            "drain",
            file=sys.stderr,
        )
        return 3
    if report["speedup"] < floor:
        print(
            f"FAIL: multi-process speedup {report['speedup']:.2f}x below "
            f"the {floor:.2f}x floor "
            f"({available_cpus()} CPU(s) available)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
