"""Paper-scale Figure 2, analytically.

Executing 24-table DP is out of reach for pure Python, but the per-worker
work/memory counts are exact closed forms (Theorems 2/3/6/7, property-tested
against enumeration).  This bench prints the predicted Figure 2 series at
the paper's original sizes on the paper-like cluster model and asserts the
paper's headline magnitudes and speedups.
"""

from __future__ import annotations

import pytest

from repro.bench.analytic import paper_scale_fig2, predict_series
from repro.config import PlanSpace


def test_paper_scale_fig2_report(benchmark):
    series_list = benchmark.pedantic(paper_scale_fig2, rounds=1, iterations=1)
    print()
    print("== Predicted Figure 2 at the paper's query sizes (analytic)")
    for series in series_list:
        print(series.format())

    by_label = {series.label: series for series in series_list}

    # Paper: optimization of large queries "takes minutes on a single node";
    # its Figure 2 y-axes span ~10^3..10^5 ms.
    linear24 = by_label["analytic linear 24"]
    assert linear24.points[0].time_ms > 6e4

    # Paper text: speedup 8.1 for 24 tables at 128 workers (linear).
    speedup = linear24.points[0].time_ms / linear24.time_by_workers()[128]
    assert 6.0 < speedup < 10.0

    # Paper text: bushy scaling is slower (21/27 per doubling).
    bushy18 = by_label["analytic bushy 18"]
    for previous, current in zip(bushy18.points, bushy18.points[1:]):
        ratio = current.worker_time_ms / previous.worker_time_ms
        assert 0.74 < ratio < 0.82

    # Memory factors: exactly 3/4 and 7/8 per doubling.
    for label, factor in (
        ("analytic linear 20", 0.75),
        ("analytic bushy 15", 0.875),
    ):
        points = by_label[label].points
        for previous, current in zip(points, points[1:]):
            observed = current.memory_relations / previous.memory_relations
            assert observed == pytest.approx(factor, rel=0.02)


def test_analytic_point_speed(benchmark):
    """Prediction itself is cheap — usable inside planners."""
    series = benchmark(
        lambda: predict_series(
            24, PlanSpace.LINEAR, 128, candidates_per_split=3.0
        )
    )
    assert len(series.points) == 8
