"""Fleet operations under load: live rebalancing and request hedging.

Two operational claims of the shard-fleet supervisor, measured against a
real fleet of ``python -m repro shard-server`` processes:

* **rebalancing is free for moved keys** — a warm 3-shard fleet serving a
  client herd gains a 4th shard mid-replay.  Because :class:`ShardFleet`
  ships the moved keys' cache entries (``snapshot`` export → import) to
  the new owner *before* republishing the ring to the router, the total
  DP-run count across all four servers stays exactly one per unique
  fingerprint and the new shard performs **zero** enumerations of its own
  — every answer it serves was shipped to it.  Plans are bit-identical
  across the flip.
* **hedging caps the tail** — one shard of two is slowed by an injected
  per-request latency (``--inject-latency-ms``, a real ``time.sleep`` in
  the server's handler pool).  The same warm herd is replayed through an
  unhedged router and through a hedging router
  (``hedge_multiplier=2``): the hedged p99 must not exceed the unhedged
  p99 — slow primaries are duplicated to the next ring owner, whose
  shipped-nothing-but-cached-everything copy answers in microseconds.

Both phases surface the new counters (``snapshot_shipped``, ``restarts``,
``hedged``, ``hedged_wins``) in the report, and the fleet's supervisor
logs land in ``--log-dir`` so CI can upload them when a gate fails.

Dual-use module:

* **pytest**::

      PYTHONPATH=src python -m pytest -q benchmarks/bench_fleet.py

* **script** (the CI benchmark-regression job)::

      PYTHONPATH=src python benchmarks/bench_fleet.py \
          --json BENCH_fleet.json --log-dir fleet-logs
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

try:  # script mode: bootstrap the src layout without installation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - exercised by the CI script job
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    replay_threaded,
    unique_fingerprints,
)
from repro.service import NetworkOptimizerGateway, ShardFleet
from repro.service.net import result_to_wire

ROOT = Path(__file__).resolve().parents[1]

N_CLIENTS = 32
N_SHARDS = 3
N_WORKERS = 4
#: The whole herd fits every shard: the measurement never includes
#: overload retry sleeps.
MAX_IN_FLIGHT = 64
#: Hit-dominated profile: few cheap uniques, many repeats.  The rebalance
#: claim is about *cache* movement and the hedging claim is about *tail*
#: latency — both are served-from-cache phenomena, so DP weight would only
#: blur them.
PROFILE = TrafficProfile(n_requests=120, n_unique=12, tables=(4, 5), seed=83)
#: Injected per-request latency of the deliberately slow shard (phase 2).
INJECT_LATENCY_MS = 150.0
HEDGE_MULTIPLIER = 2.0
HEDGE_MIN_S = 0.02


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_rebalance(
    schedule, run_dir: Path, log_dir: Path, n_clients: int = N_CLIENTS
) -> dict:
    """Warm a 3-shard fleet, expand to 4 mid-replay, count every DP run."""
    n_unique = len(unique_fingerprints(schedule))
    with ShardFleet(
        N_SHARDS,
        run_dir / "rebalance-socks",
        cache_dir=run_dir / "rebalance-cache",
        n_workers=N_WORKERS,
        max_in_flight=MAX_IN_FLIGHT,
        log_dir=log_dir / "rebalance",
    ) as fleet:
        with NetworkOptimizerGateway(
            fleet.endpoints(), overload_retries=10_000, request_timeout_s=300.0
        ) as gateway:
            fleet.attach_router(gateway)
            started = time.perf_counter()
            warmup = replay_threaded(gateway, schedule, n_clients=n_clients)
            warm_wall_s = time.perf_counter() - started
            baseline = {
                result.fingerprint: result_to_wire(result)["plans"]
                for result in warmup.results
            }

            half = len(schedule) // 2
            started = time.perf_counter()
            first = replay_threaded(gateway, schedule[:half], n_clients=n_clients)
            added = fleet.add_shard()
            second = replay_threaded(gateway, schedule[half:], n_clients=n_clients)
            replay_wall_s = time.perf_counter() - started

            stats = gateway.stats()
            fleet_stats = fleet.stats()
    per_shard = {
        name: shard["optimizations"] for name, shard in stats["shards"].items()
    }
    plans_identical = all(
        result_to_wire(result)["plans"] == baseline[result.fingerprint]
        for result in [*first.results, *second.results]
    )
    return {
        "n_unique_fingerprints": n_unique,
        "total_dp_runs": sum(per_shard.values()),
        "new_shard": added,
        "new_shard_dp_runs": per_shard.get(added, -1),
        "per_shard_dp_runs": per_shard,
        "snapshot_shipped": fleet_stats["snapshot_shipped"],
        "rebalances": fleet_stats["rebalances"],
        "restarts": fleet_stats["restarts"],
        "plans_bit_identical": plans_identical,
        "warm_wall_s": warm_wall_s,
        "expanded_replay_wall_s": replay_wall_s,
        "expanded_replay_latency_ms": second.latency_percentiles(),
    }


def measure_hedging(
    schedule, run_dir: Path, log_dir: Path, n_clients: int = N_CLIENTS
) -> dict:
    """Replay a warm herd with and without hedging against a slow shard."""
    with ShardFleet(
        2,
        run_dir / "hedge-socks",
        n_workers=N_WORKERS,
        max_in_flight=MAX_IN_FLIGHT,
        log_dir=log_dir / "hedging",
        inject_latency_ms={"shard-1": INJECT_LATENCY_MS},
    ) as fleet:
        # Warm every fingerprint on both shards' owners once, so the
        # measured replays are pure serving (the injected sleep still
        # applies to cache hits — it models a struggling process, not a
        # slow enumeration).
        with NetworkOptimizerGateway(
            fleet.endpoints(), overload_retries=10_000, request_timeout_s=300.0
        ) as warmer:
            replay_threaded(warmer, schedule, n_clients=n_clients)

        with NetworkOptimizerGateway(
            fleet.endpoints(), overload_retries=10_000, request_timeout_s=300.0
        ) as unhedged_gw:
            unhedged = replay_threaded(unhedged_gw, schedule, n_clients=n_clients)
            unhedged_stats = unhedged_gw.stats()

        with NetworkOptimizerGateway(
            fleet.endpoints(),
            overload_retries=10_000,
            request_timeout_s=300.0,
            hedge_multiplier=HEDGE_MULTIPLIER,
            hedge_min_s=HEDGE_MIN_S,
        ) as hedged_gw:
            hedged = replay_threaded(hedged_gw, schedule, n_clients=n_clients)
            hedged_stats = hedged_gw.stats()
    return {
        "inject_latency_ms": INJECT_LATENCY_MS,
        "hedge_multiplier": HEDGE_MULTIPLIER,
        "hedge_min_s": HEDGE_MIN_S,
        "unhedged": {
            "wall_s": unhedged.wall_s,
            "throughput_qps": unhedged.throughput_qps,
            "latency_ms": unhedged.latency_percentiles(),
            "hedged": unhedged_stats["hedged"],
        },
        "hedged": {
            "wall_s": hedged.wall_s,
            "throughput_qps": hedged.throughput_qps,
            "latency_ms": hedged.latency_percentiles(),
            "hedged": hedged_stats["hedged"],
            "hedged_wins": hedged_stats["hedged_wins"],
        },
    }


def run_benchmark(
    profile: TrafficProfile = PROFILE,
    n_clients: int = N_CLIENTS,
    log_dir: Path | None = None,
) -> dict:
    schedule = generate_traffic(profile)
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as run_dir:
        run_path = Path(run_dir)
        logs = log_dir if log_dir is not None else run_path / "logs"
        rebalance = measure_rebalance(schedule, run_path, logs, n_clients)
        hedging = measure_hedging(schedule, run_path, logs, n_clients)
    report = {
        "config": {
            "n_clients": n_clients,
            "n_shards": N_SHARDS,
            "n_workers": N_WORKERS,
            "max_in_flight": MAX_IN_FLIGHT,
            "n_requests": profile.n_requests,
            "n_unique_queries": profile.n_unique,
            "tables": list(profile.tables),
            "seed": profile.seed,
            "inject_latency_ms": INJECT_LATENCY_MS,
            "available_cpus": available_cpus(),
        },
        "rebalance": rebalance,
        "hedging": hedging,
    }
    report["gates"] = {
        "zero_extra_dp_runs": (
            rebalance["total_dp_runs"] == rebalance["n_unique_fingerprints"]
            and rebalance["new_shard_dp_runs"] == 0
            and rebalance["snapshot_shipped"] > 0
            and rebalance["plans_bit_identical"]
        ),
        "hedged_p99_not_worse": (
            hedging["hedged"]["latency_ms"]["p99"]
            <= hedging["unhedged"]["latency_ms"]["p99"]
        ),
    }
    report["gates"]["passed"] = all(
        report["gates"][name] for name in ("zero_extra_dp_runs", "hedged_p99_not_worse")
    )
    return report


# ------------------------------------------------------------------ pytest


def test_rebalanced_keys_pay_zero_extra_dp_runs():
    """Acceptance: adding a 4th shard to a warm 3-shard fleet mid-replay
    moves keys with zero additional DP runs (entries shipped before the
    ring flip, plans bit-identical), and hedging caps the p99 under an
    injected slow shard at or below the unhedged p99."""
    report = run_benchmark()
    assert report["gates"]["zero_extra_dp_runs"], report["rebalance"]
    assert report["gates"]["hedged_p99_not_worse"], report["hedging"]


# ------------------------------------------------------------------ script


def _print_report(report: dict) -> None:
    config = report["config"]
    rebalance = report["rebalance"]
    hedging = report["hedging"]
    print(
        f"fleet benchmark: {config['n_clients']} clients, "
        f"{config['n_requests']} requests over "
        f"{rebalance['n_unique_fingerprints']} unique fingerprints, "
        f"{config['n_shards']}→{config['n_shards'] + 1} shards"
    )
    print(
        f"  rebalance: {rebalance['total_dp_runs']} DP runs total "
        f"({rebalance['new_shard_dp_runs']} on the new shard), "
        f"{rebalance['snapshot_shipped']} entries shipped, "
        f"plans identical: {rebalance['plans_bit_identical']}"
    )
    print(f"    per shard: {rebalance['per_shard_dp_runs']}")
    for label in ("unhedged", "hedged"):
        side = hedging[label]
        latency = side["latency_ms"]
        extra = (
            f", {side['hedged']} hedged ({side.get('hedged_wins', 0)} wins)"
            if label == "hedged"
            else ""
        )
        print(
            f"  {label:>9}: p50/p90/p99 = {latency['p50']:.2f}/"
            f"{latency['p90']:.2f}/{latency['p99']:.2f} ms "
            f"({side['throughput_qps']:.1f} req/s{extra})"
        )
    print(
        f"  gates: zero_extra_dp_runs={report['gates']['zero_extra_dp_runs']} "
        f"hedged_p99_not_worse={report['gates']['hedged_p99_not_worse']}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    parser.add_argument("--requests", type=int, default=PROFILE.n_requests)
    parser.add_argument("--uniques", type=int, default=PROFILE.n_unique)
    parser.add_argument("--seed", type=int, default=PROFILE.seed)
    parser.add_argument(
        "--json", default=None, help="write the full report to this file"
    )
    parser.add_argument(
        "--log-dir",
        default=None,
        help="write the fleet's per-shard supervisor logs here "
        "(CI uploads them when a gate fails)",
    )
    args = parser.parse_args(argv)
    profile = TrafficProfile(
        n_requests=args.requests,
        n_unique=args.uniques,
        tables=PROFILE.tables,
        seed=args.seed,
    )
    log_dir = Path(args.log_dir) if args.log_dir else None
    report = run_benchmark(profile=profile, n_clients=args.clients, log_dir=log_dir)
    _print_report(report)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["gates"]["zero_extra_dp_runs"]:
        print(
            "FAIL: the rebalance cost extra DP runs (or shipped nothing, "
            "or changed a plan) — snapshot shipping is broken",
            file=sys.stderr,
        )
        return 1
    if not report["gates"]["hedged_p99_not_worse"]:
        print(
            "FAIL: hedged p99 exceeded unhedged p99 under the injected "
            "slow shard",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
