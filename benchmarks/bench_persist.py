"""Warm-restart serving from the persistent plan-cache tier, measured.

The disk tier's claim: plans computed before a restart are an asset, not a
loss — after the process comes back, every previously-seen fingerprint is
served from the on-disk log with **zero** DP runs, at a latency within a
small factor of a memory hit.  This benchmark measures exactly that:

* **cold phase** — replay the seeded multi-tenant Zipf schedule (the same
  profile the async benchmark replays) through a sharded gateway whose
  shards carry tiered caches over per-shard disk logs.  DP runs equal the
  schedule's unique fingerprints (singleflight holds with the disk tier
  enabled);
* **warm phase** — close the gateway, build a brand-new one over the same
  logs (fresh executors, empty memory tiers: a process restart in
  miniature), and replay the identical schedule.  Gates: **0 DP runs**,
  every response served from cache, and every fingerprint the cold phase
  touched answered — the first warm touch of each unique key is a *disk*
  hit, later ones memory hits off its promotion;
* **latency** — repeated single-query serves of a 9-table query against a
  memory-resident entry versus a disk-only cache (memory capacity 0, so
  every lookup decodes the log record).  Gate: disk-hit p50 within
  ``--max-latency-ratio`` (default 5x) of memory-hit p50.

Dual-use module:

* **pytest**::

      PYTHONPATH=src python -m pytest -q benchmarks/bench_persist.py

* **script** (the CI benchmark-regression job)::

      PYTHONPATH=src python benchmarks/bench_persist.py \
          --json BENCH_persist.json --max-latency-ratio 5.0
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

try:  # script mode: bootstrap the src layout without installation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - exercised by the CI script job
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    latency_percentiles,
    replay_threaded,
    unique_fingerprints,
)
from repro.cluster.executors import SerialPartitionExecutor
from repro.query.generator import SteinbrunnGenerator
from repro.service import (
    DiskTier,
    OptimizerService,
    ShardedOptimizerGateway,
    TieredPlanCache,
)

N_CLIENTS = 8
N_SHARDS = 4
N_WORKERS = 4
#: 9-table queries, per the acceptance gate: long enough plans that decode
#: cost is visible, the scale the latency comparison is specified at.
N_TABLES = 9
LATENCY_REPS = 400
#: The async benchmark's Zipf replay profile, reused verbatim so this
#: benchmark restarts the very traffic the serving benchmarks established.
PROFILE = dict(n_requests=192, n_unique=16, tables=(5, 7))


class CountingSerialExecutor(SerialPartitionExecutor):
    """Serial executor counting DP runs (``map_partitions`` invocations)."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def map_partitions(self, query, n_partitions, settings):
        with self._lock:
            self.calls += 1
        return super().map_partitions(query, n_partitions, settings)


def _tiered_gateway(cache_dir: Path, executors: list) -> ShardedOptimizerGateway:
    """A sharded gateway with counting executors and per-shard disk logs."""

    def executor_factory():
        executor = CountingSerialExecutor()
        executors.append(executor)
        return executor

    return ShardedOptimizerGateway(
        n_shards=N_SHARDS,
        n_workers=N_WORKERS,
        executor_factory=executor_factory,
        cache_factory=lambda index: TieredPlanCache(
            memory_capacity=256, disk=DiskTier(cache_dir / f"shard-{index}.log")
        ),
    )


def _replay_phase(cache_dir: Path, schedule, n_clients: int) -> dict:
    """One gateway lifetime: replay the schedule, snapshot, close."""
    executors: list[CountingSerialExecutor] = []
    with _tiered_gateway(cache_dir, executors) as gateway:
        report = replay_threaded(gateway, schedule, n_clients=n_clients)
        stats = gateway.stats()
    tier_totals = {
        name: sum(getattr(shard.cache, name, 0) for shard in stats.shards)
        for name in ("memory_hits", "disk_hits", "promotions", "demotions")
    }
    return {
        "wall_s": report.wall_s,
        "throughput_qps": report.throughput_qps,
        "latency_ms": report.latency_percentiles(),
        "optimizations": stats.optimizations,
        "executor_runs": sum(executor.calls for executor in executors),
        "served_cached": sum(1 for result in report.results if result.cached),
        "served_total": len(report.results),
        "served_fingerprints": sorted(
            {result.fingerprint for result in report.results}
        ),
        **tier_totals,
    }


def measure_restart(seed: int = 71, n_clients: int = N_CLIENTS) -> dict:
    """Cold replay, simulated restart, warm replay — all against one cache dir."""
    schedule = generate_traffic(TrafficProfile(seed=seed, **PROFILE))
    n_unique = len(unique_fingerprints(schedule))
    with tempfile.TemporaryDirectory(prefix="bench-persist-") as tmp:
        cache_dir = Path(tmp)
        cold = _replay_phase(cache_dir, schedule, n_clients)
        warm = _replay_phase(cache_dir, schedule, n_clients)
    replayed_from_cache = set(warm.pop("served_fingerprints")) == set(
        cold.pop("served_fingerprints")
    )
    return {
        "n_requests": len(schedule),
        "n_unique_fingerprints": n_unique,
        "n_clients": n_clients,
        "cold": cold,
        "warm": warm,
        "gates": {
            # The cold phase pays exactly one DP run per unique fingerprint …
            "cold_one_run_per_fingerprint": (
                cold["optimizations"] == n_unique
                and cold["executor_runs"] == n_unique
            ),
            # … and the warm phase pays none at all: every answer comes from
            # the tiers, seeded purely by what the restart found on disk.
            "warm_zero_dp_runs": (
                warm["optimizations"] == 0 and warm["executor_runs"] == 0
            ),
            "warm_all_served_cached": warm["served_cached"]
            == warm["served_total"],
            "warm_covers_cold_fingerprints": replayed_from_cache,
            "warm_disk_seeded": warm["disk_hits"] >= n_unique,
        },
    }


def measure_hit_latency(
    seed: int = 71, reps: int = LATENCY_REPS, n_tables: int = N_TABLES
) -> dict:
    """Serve one 9-table query repeatedly: memory-resident vs disk-only."""
    query = SteinbrunnGenerator(seed).query(n_tables)

    def sample(service: OptimizerService) -> list[float]:
        latencies = []
        for __ in range(reps):
            begin = time.perf_counter()
            result = service.optimize(query)
            latencies.append((time.perf_counter() - begin) * 1e3)
            assert result.cached, "latency sample must not include a DP run"
        return latencies

    with tempfile.TemporaryDirectory(prefix="bench-persist-lat-") as tmp:
        log = Path(tmp) / "latency.log"
        with OptimizerService(
            n_workers=N_WORKERS,
            cache=TieredPlanCache(memory_capacity=64, disk=DiskTier(log)),
        ) as service:
            service.optimize(query)  # the one real run fills both tiers
            memory_ms = sample(service)
        # A fresh process image over the same log; capacity 0 disables the
        # memory tier, so every serve decodes the on-disk record.
        with OptimizerService(
            n_workers=N_WORKERS,
            executor=CountingSerialExecutor(),
            cache=TieredPlanCache(memory_capacity=0, disk=DiskTier(log)),
        ) as service:
            disk_ms = sample(service)
            disk_runs = service.executor.calls
    memory_p = latency_percentiles(memory_ms)
    disk_p = latency_percentiles(disk_ms)
    return {
        "n_tables": n_tables,
        "reps": reps,
        "memory_hit_ms": memory_p,
        "disk_hit_ms": disk_p,
        "disk_dp_runs": disk_runs,
        "p50_ratio": disk_p["p50"] / memory_p["p50"] if memory_p["p50"] else 0.0,
    }


def run_benchmark(seed: int = 71, n_clients: int = N_CLIENTS) -> dict:
    report = {
        "config": {
            "n_clients": n_clients,
            "n_shards": N_SHARDS,
            "n_workers": N_WORKERS,
            "n_tables_latency": N_TABLES,
            "seed": seed,
            "profile": PROFILE,
        },
        "restart": measure_restart(seed, n_clients),
        "latency": measure_hit_latency(seed),
    }
    return report


# ------------------------------------------------------------------ pytest


def test_warm_restart_serves_everything_from_disk():
    """Acceptance: after a restart, the full replayed schedule is answered
    with zero DP runs, every response cached, and the disk tier seeding the
    working set (first warm touch of each unique fingerprint reads disk)."""
    restart = measure_restart()
    assert all(restart["gates"].values()), restart["gates"]


def test_disk_hit_latency_within_bound_of_memory_hit():
    """Acceptance: a disk hit costs at most 5x a memory hit at 9 tables,
    and a disk-only cache never falls back to a DP run."""
    latency = measure_hit_latency()
    assert latency["disk_dp_runs"] == 0, latency
    assert latency["p50_ratio"] <= 5.0, latency


# ------------------------------------------------------------------ script


def _print_report(report: dict) -> None:
    restart = report["restart"]
    latency = report["latency"]
    print(
        f"persist benchmark: {restart['n_requests']} requests, "
        f"{restart['n_unique_fingerprints']} unique fingerprints, "
        f"{restart['n_clients']} clients, {report['config']['n_shards']} shards"
    )
    for label in ("cold", "warm"):
        phase = restart[label]
        print(
            f"  {label:>4}: {phase['wall_s'] * 1e3:8.1f} ms  "
            f"({phase['throughput_qps']:8.1f} req/s)  "
            f"{phase['optimizations']} DP runs, "
            f"{phase['memory_hits']} memory hits, {phase['disk_hits']} disk hits"
        )
    print(
        f"  latency at {latency['n_tables']} tables: memory p50 "
        f"{latency['memory_hit_ms']['p50']:.3f} ms, disk p50 "
        f"{latency['disk_hit_ms']['p50']:.3f} ms "
        f"({latency['p50_ratio']:.2f}x)"
    )
    for gate, passed in restart["gates"].items():
        print(f"  gate {gate}: {'ok' if passed else 'FAIL'}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=71)
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    parser.add_argument(
        "--json", default=None, help="write the full report to this file"
    )
    parser.add_argument(
        "--max-latency-ratio",
        type=float,
        default=5.0,
        help="fail if disk-hit p50 exceeds this multiple of memory-hit p50",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(seed=args.seed, n_clients=args.clients)
    _print_report(report)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not all(report["restart"]["gates"].values()):
        failed = [
            gate
            for gate, passed in report["restart"]["gates"].items()
            if not passed
        ]
        print(f"FAIL: restart gates failed: {failed}", file=sys.stderr)
        return 2
    if report["latency"]["disk_dp_runs"] != 0:
        print("FAIL: disk-only serving fell back to a DP run", file=sys.stderr)
        return 3
    if report["latency"]["p50_ratio"] > args.max_latency_ratio:
        print(
            f"FAIL: disk-hit p50 is {report['latency']['p50_ratio']:.2f}x the "
            f"memory hit, above the {args.max_latency_ratio:.2f}x bound",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
