"""fastdp vs legacy enumeration core: measured speedup on the DP hot path.

Dual-use module:

* **pytest** (how the rest of ``benchmarks/`` runs)::

      PYTHONPATH=src python -m pytest -q benchmarks/bench_fastdp.py

* **script** (the CI benchmark-regression job)::

      PYTHONPATH=src python benchmarks/bench_fastdp.py \
          --tables 12 --repeats 2 --json BENCH_fastdp.json --min-speedup 1.0

  Exits non-zero if the best observed speedup across topologies falls below
  ``--min-speedup``, or if the two backends ever disagree on the best plan
  cost — a benchmark that silently benchmarks a *wrong* optimizer is worse
  than no benchmark.

The measured quantity is end-to-end serial optimization (identical settings,
identical queries) under each value of ``OptimizerSettings.backend``; each
backend takes the minimum over ``--repeats`` runs to suppress scheduler
noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # script mode: bootstrap the src layout without installation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - exercised by the CI script job
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import Backend, OptimizerSettings, PlanSpace
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind

#: Topologies of the regression run: the paper's default star, plus the
#: extremes of join-graph density.
DEFAULT_TOPOLOGIES = ("chain", "star", "clique")


def _time_backend(
    query, settings: OptimizerSettings, repeats: int
) -> tuple[float, float]:
    """(best wall seconds, best-plan first-metric cost) over ``repeats`` runs."""
    best_wall = float("inf")
    cost = float("nan")
    for _ in range(repeats):
        started = time.perf_counter()
        result = optimize_serial(query, settings)
        elapsed = time.perf_counter() - started
        best_wall = min(best_wall, elapsed)
        cost = best_plan(result).cost[0]
    return best_wall, cost


def run_benchmark(
    n_tables: int = 12,
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    seed: int = 41,
    repeats: int = 2,
    plan_space: PlanSpace = PlanSpace.LINEAR,
) -> dict:
    """Benchmark both backends on one query per topology; return the report."""
    rows = []
    for topology in topologies:
        query = SteinbrunnGenerator(seed).query(
            n_tables, JoinGraphKind(topology)
        )
        base = OptimizerSettings(plan_space=plan_space)
        legacy_s, legacy_cost = _time_backend(
            query, base.replace(backend=Backend.LEGACY), repeats
        )
        fastdp_s, fastdp_cost = _time_backend(
            query, base.replace(backend=Backend.FASTDP), repeats
        )
        rows.append(
            {
                "topology": topology,
                "n_tables": n_tables,
                "plan_space": plan_space.value,
                "legacy_s": legacy_s,
                "fastdp_s": fastdp_s,
                "speedup": legacy_s / fastdp_s if fastdp_s > 0 else float("inf"),
                "best_cost": legacy_cost,
                "plans_agree": legacy_cost == fastdp_cost,
            }
        )
    speedups = [row["speedup"] for row in rows]
    return {
        "config": {
            "n_tables": n_tables,
            "topologies": list(topologies),
            "seed": seed,
            "repeats": repeats,
            "plan_space": plan_space.value,
        },
        "results": rows,
        "max_speedup": max(speedups),
        "min_speedup": min(speedups),
        "all_plans_agree": all(row["plans_agree"] for row in rows),
    }


# ------------------------------------------------------------------ pytest


def test_fastdp_speedup_at_12_relations():
    """Acceptance: ≥1.5× over the legacy worker on at least one topology."""
    report = run_benchmark(n_tables=12, repeats=1)
    assert report["all_plans_agree"], report
    assert report["max_speedup"] >= 1.5, report


def test_fastdp_never_changes_the_answer_at_bench_scale():
    report = run_benchmark(n_tables=10, repeats=1)
    assert report["all_plans_agree"], report


# ------------------------------------------------------------------ script


def _print_report(report: dict) -> None:
    config = report["config"]
    print(
        f"fastdp benchmark: {config['n_tables']} tables, "
        f"{config['plan_space']} space, repeats={config['repeats']}"
    )
    for row in report["results"]:
        agree = "ok" if row["plans_agree"] else "DISAGREE"
        print(
            f"  {row['topology']:>6}: legacy {row['legacy_s'] * 1e3:8.1f} ms   "
            f"fastdp {row['fastdp_s'] * 1e3:8.1f} ms   "
            f"speedup {row['speedup']:5.2f}x   plans {agree}"
        )
    print(
        f"speedup: max {report['max_speedup']:.2f}x, "
        f"min {report['min_speedup']:.2f}x"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tables", type=int, default=12)
    parser.add_argument(
        "--topologies",
        default=",".join(DEFAULT_TOPOLOGIES),
        help="comma-separated join-graph kinds",
    )
    parser.add_argument("--seed", type=int, default=41)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--space",
        choices=[space.value for space in PlanSpace],
        default=PlanSpace.LINEAR.value,
    )
    parser.add_argument(
        "--json", default=None, help="write the full report to this file"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail unless the best topology speedup reaches this factor",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(
        n_tables=args.tables,
        topologies=tuple(t.strip() for t in args.topologies.split(",") if t.strip()),
        seed=args.seed,
        repeats=args.repeats,
        plan_space=PlanSpace(args.space),
    )
    _print_report(report)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["all_plans_agree"]:
        print("FAIL: backends disagree on best plan cost", file=sys.stderr)
        return 2
    if report["max_speedup"] < args.min_speedup:
        print(
            f"FAIL: best speedup {report['max_speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
