"""Enumeration-core speedups on the DP hot path, one pair per configuration.

Four benchmark configurations, matching the query classes each core covers
natively.  The first three race ``fastdp`` against the ``legacy`` object DP;
the fourth races the array-native ``vecdp`` core against ``fastdp`` itself:

* ``plain`` — classical single-objective optimization (legacy vs fastdp);
* ``orders`` — interesting-order tracking over clustered tables;
* ``parametric`` — one-parameter lower-envelope optimization;
* ``vecdp`` — plain 14-relation queries, fastdp as the baseline.  Skipped
  (and excluded from the gate) when numpy is not installed.

Dual-use module:

* **pytest** (how the rest of ``benchmarks/`` runs)::

      PYTHONPATH=src python -m pytest -q benchmarks/bench_fastdp.py

* **script** (the CI benchmark-regression job)::

      PYTHONPATH=src python benchmarks/bench_fastdp.py \
          --features plain,orders,parametric,vecdp --repeats 2 \
          --json BENCH_fastdp.json --min-speedup 1.0 --floor vecdp=5.0

  Exits non-zero if, for *any* configuration, the best observed speedup
  across topologies falls below its floor (``--min-speedup`` globally,
  ``--floor feature=value`` per configuration), or if the two backends
  ever disagree on the best plan cost — a benchmark that silently
  benchmarks a *wrong* optimizer is worse than no benchmark.

The measured quantity is end-to-end serial optimization (identical settings,
identical queries) under each value of ``OptimizerSettings.backend``; each
backend takes the minimum over ``--repeats`` runs to suppress scheduler
noise.  The report records the hardware it ran on: speedup factors are only
comparable against the same class of machine, and the vecdp target (≥10× on
developer hardware, ≥5× floor on shared single-CPU CI runners) is stated
relative to that record.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import platform
import sys
import time
from pathlib import Path

try:  # script mode: bootstrap the src layout without installation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - exercised by the CI script job
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import (
    PARAMETRIC_OBJECTIVES,
    Backend,
    OptimizerSettings,
    PlanSpace,
)
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind

#: Topologies of the regression run: the paper's default star, plus the
#: extremes of join-graph density.
DEFAULT_TOPOLOGIES = ("chain", "star", "clique")

#: Benchmark configurations: feature -> (default tables, clustered tables,
#: baseline backend, candidate backend).  Orders multiply per-set entries
#: and parametric pruning pays envelope arithmetic per candidate, so those
#: configurations use smaller queries to keep the regression job fast at
#: comparable per-case wall time; the vecdp configuration uses the larger
#: 14-relation queries its ≥10× target is stated for.
FEATURES: dict[str, tuple[int, bool, Backend, Backend]] = {
    "plain": (12, False, Backend.LEGACY, Backend.FASTDP),
    "orders": (11, True, Backend.LEGACY, Backend.FASTDP),
    "parametric": (10, False, Backend.LEGACY, Backend.FASTDP),
    "vecdp": (14, False, Backend.FASTDP, Backend.VECDP),
}


def feature_unavailable_reason(feature: str) -> str | None:
    """Why a configuration cannot run here, or ``None`` if it can."""
    if feature == "vecdp" and importlib.util.find_spec("numpy") is None:
        return "numpy not installed"
    return None


def hardware_record() -> dict:
    """What this report's wall-clock numbers were measured on."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def _feature_settings(feature: str, plan_space: PlanSpace) -> OptimizerSettings:
    if feature in ("plain", "vecdp"):
        return OptimizerSettings(plan_space=plan_space)
    if feature == "orders":
        return OptimizerSettings(plan_space=plan_space, consider_orders=True)
    if feature == "parametric":
        return OptimizerSettings(
            plan_space=plan_space,
            objectives=PARAMETRIC_OBJECTIVES,
            parametric=True,
        )
    raise ValueError(f"unknown feature {feature!r}; known: {list(FEATURES)}")


def _time_backend(
    query, settings: OptimizerSettings, repeats: int
) -> tuple[float, float, str]:
    """Best wall seconds, best-plan cost, and the backend that actually ran."""
    best_wall = float("inf")
    cost = float("nan")
    backend_used = ""
    for _ in range(repeats):
        started = time.perf_counter()
        result = optimize_serial(query, settings)
        elapsed = time.perf_counter() - started
        best_wall = min(best_wall, elapsed)
        cost = best_plan(result).cost[0]
        backend_used = result.stats.backend_used
    return best_wall, cost, backend_used


def run_benchmark(
    n_tables: int | None = None,
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    seed: int = 41,
    repeats: int = 2,
    plan_space: PlanSpace = PlanSpace.LINEAR,
    feature: str = "plain",
) -> dict:
    """Benchmark the feature's backend pair on one query per topology."""
    default_tables, clustered, baseline, candidate = FEATURES[feature]
    if n_tables is None:
        n_tables = default_tables
    rows = []
    for topology in topologies:
        query = SteinbrunnGenerator(seed, clustered_tables=clustered).query(
            n_tables, JoinGraphKind(topology)
        )
        base = _feature_settings(feature, plan_space)
        baseline_s, baseline_cost, baseline_ran = _time_backend(
            query, base.replace(backend=baseline), repeats
        )
        candidate_s, candidate_cost, candidate_ran = _time_backend(
            query, base.replace(backend=candidate), repeats
        )
        rows.append(
            {
                "feature": feature,
                "topology": topology,
                "n_tables": n_tables,
                "plan_space": plan_space.value,
                "baseline_s": baseline_s,
                "candidate_s": candidate_s,
                "speedup": baseline_s / candidate_s
                if candidate_s > 0
                else float("inf"),
                "best_cost": baseline_cost,
                "plans_agree": baseline_cost == candidate_cost,
                # Routing honesty: a candidate row that secretly ran the
                # baseline core would report a meaningless 1.0x "speedup".
                "backends_honest": baseline_ran == baseline.value
                and candidate_ran == candidate.value,
            }
        )
    speedups = [row["speedup"] for row in rows]
    return {
        "config": {
            "feature": feature,
            "n_tables": n_tables,
            "topologies": list(topologies),
            "seed": seed,
            "repeats": repeats,
            "plan_space": plan_space.value,
            "baseline": baseline.value,
            "candidate": candidate.value,
        },
        "results": rows,
        "max_speedup": max(speedups),
        "min_speedup": min(speedups),
        "all_plans_agree": all(row["plans_agree"] for row in rows),
        "all_backends_honest": all(row["backends_honest"] for row in rows),
    }


def run_all_features(
    features: tuple[str, ...],
    n_tables: int | None = None,
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    seed: int = 41,
    repeats: int = 2,
    plan_space: PlanSpace = PlanSpace.LINEAR,
) -> dict:
    """Run every requested configuration; aggregate into one report.

    Configurations whose backend pair cannot run here (vecdp without numpy)
    are recorded under ``"skipped"`` with the reason instead of failing the
    whole run — the regression gate then covers what actually ran.
    """
    skipped = {
        feature: reason
        for feature in features
        if (reason := feature_unavailable_reason(feature)) is not None
    }
    configurations = {
        feature: run_benchmark(
            n_tables=n_tables,
            topologies=topologies,
            seed=seed,
            repeats=repeats,
            plan_space=plan_space,
            feature=feature,
        )
        for feature in features
        if feature not in skipped
    }
    return {
        "hardware": hardware_record(),
        "configurations": configurations,
        "skipped": skipped,
        "all_plans_agree": all(
            report["all_plans_agree"] for report in configurations.values()
        ),
        "all_backends_honest": all(
            report["all_backends_honest"] for report in configurations.values()
        ),
        #: The regression gate: every configuration's best topology speedup.
        "per_feature_max_speedup": {
            feature: report["max_speedup"]
            for feature, report in configurations.items()
        },
    }


# ------------------------------------------------------------------ pytest


def test_fastdp_speedup_at_12_relations():
    """Acceptance: ≥1.5× over the legacy worker on at least one topology."""
    report = run_benchmark(n_tables=12, repeats=1, feature="plain")
    assert report["all_plans_agree"], report
    assert report["all_backends_honest"], report
    assert report["max_speedup"] >= 1.5, report


def test_fastdp_orders_speedup():
    """Interesting orders run natively and beat the legacy core."""
    report = run_benchmark(n_tables=10, repeats=1, feature="orders")
    assert report["all_plans_agree"], report
    assert report["all_backends_honest"], report
    assert report["max_speedup"] >= 1.0, report


def test_fastdp_parametric_speedup():
    """Parametric envelopes run natively and reach at least legacy parity."""
    report = run_benchmark(n_tables=9, repeats=1, feature="parametric")
    assert report["all_plans_agree"], report
    assert report["all_backends_honest"], report
    assert report["max_speedup"] >= 1.0, report


def test_fastdp_never_changes_the_answer_at_bench_scale():
    for feature, n_tables in (("plain", 10), ("orders", 9), ("parametric", 8)):
        report = run_benchmark(n_tables=n_tables, repeats=1, feature=feature)
        assert report["all_plans_agree"], report


def test_vecdp_speedup_at_14_relations():
    """Acceptance: the array core clears the ≥5× CI floor over fastdp on
    plain 14-relation queries (the target on quiet hardware is ≥10×)."""
    if feature_unavailable_reason("vecdp"):
        import pytest

        pytest.skip(feature_unavailable_reason("vecdp"))
    report = run_benchmark(repeats=2, feature="vecdp")
    assert report["all_plans_agree"], report
    assert report["all_backends_honest"], report
    assert report["max_speedup"] >= 5.0, report


def test_vecdp_never_changes_the_answer_at_bench_scale():
    if feature_unavailable_reason("vecdp"):
        import pytest

        pytest.skip(feature_unavailable_reason("vecdp"))
    report = run_benchmark(n_tables=10, repeats=1, feature="vecdp")
    assert report["all_plans_agree"], report
    assert report["all_backends_honest"], report


# ------------------------------------------------------------------ script


def _print_report(report: dict) -> None:
    config = report["config"]
    baseline, candidate = config["baseline"], config["candidate"]
    print(
        f"{candidate} benchmark [{config['feature']}]: "
        f"{config['n_tables']} tables, {config['plan_space']} space, "
        f"repeats={config['repeats']}, baseline={baseline}"
    )
    for row in report["results"]:
        agree = "ok" if row["plans_agree"] else "DISAGREE"
        print(
            f"  {row['topology']:>6}: "
            f"{baseline} {row['baseline_s'] * 1e3:8.1f} ms   "
            f"{candidate} {row['candidate_s'] * 1e3:8.1f} ms   "
            f"speedup {row['speedup']:5.2f}x   plans {agree}"
        )
    print(
        f"  speedup: max {report['max_speedup']:.2f}x, "
        f"min {report['min_speedup']:.2f}x"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tables",
        type=int,
        default=None,
        help="override per-feature default table counts "
        f"({ {f: spec[0] for f, spec in FEATURES.items()} })",
    )
    parser.add_argument(
        "--topologies",
        default=",".join(DEFAULT_TOPOLOGIES),
        help="comma-separated join-graph kinds",
    )
    parser.add_argument(
        "--features",
        default=",".join(FEATURES),
        help="comma-separated benchmark configurations "
        f"(from {list(FEATURES)})",
    )
    parser.add_argument("--seed", type=int, default=41)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--space",
        choices=[space.value for space in PlanSpace],
        default=PlanSpace.LINEAR.value,
    )
    parser.add_argument(
        "--json", default=None, help="write the full report to this file"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail unless every configuration's best topology speedup "
        "reaches this factor",
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="FEATURE=FACTOR",
        help="per-configuration speedup floor overriding --min-speedup "
        "(e.g. --floor vecdp=5.0); repeatable",
    )
    args = parser.parse_args(argv)
    floors: dict[str, float] = {}
    for spec in args.floor:
        feature, _sep, value = spec.partition("=")
        if not _sep:
            parser.error(f"--floor expects FEATURE=FACTOR, got {spec!r}")
        if feature not in FEATURES:
            parser.error(f"unknown feature {feature!r}; known: {list(FEATURES)}")
        floors[feature] = float(value)
    features = tuple(f.strip() for f in args.features.split(",") if f.strip())
    for feature in features:
        if feature not in FEATURES:
            parser.error(f"unknown feature {feature!r}; known: {list(FEATURES)}")
    report = run_all_features(
        features,
        n_tables=args.tables,
        topologies=tuple(
            t.strip() for t in args.topologies.split(",") if t.strip()
        ),
        seed=args.seed,
        repeats=args.repeats,
        plan_space=PlanSpace(args.space),
    )
    for feature_report in report["configurations"].values():
        _print_report(feature_report)
    for feature, reason in report["skipped"].items():
        print(f"skipping {feature} configuration: {reason}")
    print(
        "per-feature speedup: "
        + ", ".join(
            f"{feature} {speedup:.2f}x"
            for feature, speedup in report["per_feature_max_speedup"].items()
        )
    )
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["all_plans_agree"]:
        print("FAIL: backends disagree on best plan cost", file=sys.stderr)
        return 2
    if not report["all_backends_honest"]:
        print(
            "FAIL: a run was served by a different backend than requested",
            file=sys.stderr,
        )
        return 3
    failing = {
        feature: (speedup, floors.get(feature, args.min_speedup))
        for feature, speedup in report["per_feature_max_speedup"].items()
        if speedup < floors.get(feature, args.min_speedup)
    }
    if failing:
        print(
            "FAIL: configurations below their speedup floor: "
            + ", ".join(
                f"{feature} ({speedup:.2f}x < {floor:.2f}x)"
                for feature, (speedup, floor) in failing.items()
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
