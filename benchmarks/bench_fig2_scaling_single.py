"""Figure 2 — MPQ scaling with one cost metric on larger search spaces.

Benchmarks the full MPQ run (all partitions executed in-process) at growing
worker counts: wall-clock grows ~(3/2)^l in the partition count while the
*simulated* per-worker time shrinks by 3/4 (linear) / 21/27 (bushy) per
doubling — the series report asserts the simulated shape.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.algorithms.mpq import optimize_mpq
from repro.bench.experiments import fig2
from repro.config import PlanSpace
from repro.core.counting import memory_reduction_factor, work_reduction_factor


@pytest.mark.parametrize("workers", [1, 4, 16])
def test_mpq_linear10_scaling(benchmark, linear_settings, workers):
    query = star_query(10)
    report = benchmark.pedantic(
        optimize_mpq, args=(query, workers, linear_settings), rounds=3, iterations=1
    )
    assert report.n_partitions == workers


@pytest.mark.parametrize("workers", [1, 4, 8])
def test_mpq_bushy9_scaling(benchmark, bushy_settings, workers):
    query = star_query(9)
    report = benchmark.pedantic(
        optimize_mpq, args=(query, workers, bushy_settings), rounds=3, iterations=1
    )
    assert report.n_partitions == workers


def test_fig2_series_report(benchmark):
    """Regenerate Figure 2 (CI scale) and assert the theoretical factors."""
    result = benchmark.pedantic(fig2, args=("ci",), rounds=1, iterations=1)
    print()
    print(result.format())
    for series in result.series:
        space = PlanSpace.LINEAR if "linear" in series.label else PlanSpace.BUSHY
        memory_factor = memory_reduction_factor(space)
        work_factor = work_reduction_factor(space)
        points = series.points
        for previous, current in zip(points, points[1:]):
            if current.workers != previous.workers * 2:
                continue
            # Memory (relations) shrinks by ~the theoretical factor.
            observed = current.memory_relations / previous.memory_relations
            assert observed == pytest.approx(memory_factor, rel=0.12)
            # Worker time shrinks at least as fast as predicted - 15% slack.
            speed = current.worker_time_ms / previous.worker_time_ms
            assert speed < work_factor * 1.15
