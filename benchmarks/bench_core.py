"""Micro-benchmarks of the optimizer's hot paths."""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.config import OptimizerSettings, PlanSpace
from repro.core.constraints import partition_constraints
from repro.core.partitioning import admissible_join_results
from repro.core.serial import optimize_serial
from repro.cost.cardinality import CardinalityEstimator
from repro.cost.costmodel import CostModel
from repro.cost.pruning import MinCostPruning, ParetoPruning
from repro.plans.plan import ScanPlan
from repro.util.bitset import iter_subsets


def test_admissible_generation_linear(benchmark):
    constraints = partition_constraints(16, 5, 64, PlanSpace.LINEAR)

    def run():
        return len(admissible_join_results(16, constraints, PlanSpace.LINEAR))

    count = benchmark(run)
    assert count == 3**6 * 4**2


def test_admissible_generation_bushy(benchmark):
    constraints = partition_constraints(15, 3, 32, PlanSpace.BUSHY)

    def run():
        return len(admissible_join_results(15, constraints, PlanSpace.BUSHY))

    count = benchmark(run)
    assert count == 7**5


def test_cardinality_estimation(benchmark):
    query = star_query(14)
    estimator = CardinalityEstimator(query)
    masks = list(range(1, 1 << 14, 37))

    def run():
        total = 0.0
        for mask in masks:
            total += estimator.rows(mask)
        return total

    assert benchmark(run) > 0


def test_join_candidate_generation(benchmark):
    query = star_query(10)
    model = CostModel(query, OptimizerSettings())
    scans = [model.scan_plans(i)[0] for i in range(10)]

    def run():
        count = 0
        for left in scans:
            for right in scans:
                if left.mask != right.mask:
                    count += len(model.join_candidates(left, right))
        return count

    assert benchmark(run) > 0


def test_min_cost_pruning_insert(benchmark):
    policy = MinCostPruning()

    def run():
        table = {}
        for i in range(2000):
            cost = (float(i % 50),)
            plan = ScanPlan(mask=1, rows=1.0, cost=cost, order=None, table=0)
            policy.consider(table, 1, cost, None, lambda p=plan: p)
        return len(table)

    assert benchmark(run) == 1


def test_pareto_pruning_insert(benchmark):
    policy = ParetoPruning(alpha=1.0)

    def run():
        table = {}
        for i in range(500):
            cost = (float(i % 40), float(40 - i % 40))
            plan = ScanPlan(mask=1, rows=1.0, cost=cost, order=None, table=0)
            policy.consider(table, 1, cost, None, lambda p=plan: p)
        return len(table[1])

    assert benchmark(run) > 1


def test_subset_enumeration(benchmark):
    mask = (1 << 18) - 1

    def run():
        count = 0
        for _ in iter_subsets(mask):
            count += 1
        return count

    assert benchmark(run) == 1 << 18


def test_serial_dp_linear12(benchmark, linear_settings):
    query = star_query(12)
    result = benchmark.pedantic(
        optimize_serial, args=(query, linear_settings), rounds=2, iterations=1
    )
    assert result.plans


def test_serial_dp_bushy9(benchmark, bushy_settings):
    query = star_query(9)
    result = benchmark.pedantic(
        optimize_serial, args=(query, bushy_settings), rounds=2, iterations=1
    )
    assert result.plans
