"""Shared benchmark fixtures: deterministic queries and settings."""

from __future__ import annotations

import pytest

from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace
from repro.query.generator import SteinbrunnGenerator


@pytest.fixture(scope="session")
def linear_settings():
    return OptimizerSettings(plan_space=PlanSpace.LINEAR)


@pytest.fixture(scope="session")
def bushy_settings():
    return OptimizerSettings(plan_space=PlanSpace.BUSHY)


@pytest.fixture(scope="session")
def moq_settings():
    return OptimizerSettings(
        plan_space=PlanSpace.LINEAR, objectives=MULTI_OBJECTIVE, alpha=10.0
    )


def star_query(n_tables: int, seed: int = 41):
    return SteinbrunnGenerator(seed).query(n_tables)
