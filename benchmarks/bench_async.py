"""Async front-end vs the threaded gateway under the 8-client herd.

The async gateway's claim, measured: parking requests on
:class:`asyncio.Future` objects and micro-batching misses serves the same
herd **at least as fast** as dedicating an OS thread per client to the
threaded :class:`~repro.service.ShardedOptimizerGateway` — while also
reporting latency percentiles, which a thread-per-client design can only
match by burning a thread per in-flight request.

Two workloads, both deterministic:

* **herd** — the same adversarial shape as ``bench_gateway.py``: 8 clients
  submit the same unique queries in the same order (several rounds, so the
  steady state is hit-dominated the way a warmed production cache is).
  This is the CI regression gate: async throughput must be >= the threaded
  gateway's on the identical request stream.
* **zipf** — a seeded multi-tenant Zipf/burst schedule from
  :mod:`repro.bench.traffic`, replayed by both stacks; reported for latency
  percentiles and the one-DP-run-per-fingerprint invariant, not gated.

Verified while measuring (both stacks, both workloads):

* every request's best-plan cost equals serial optimization;
* exactly one DP run per unique fingerprint (counters *and* executor runs).

Dual-use module:

* **pytest**::

      PYTHONPATH=src python -m pytest -q benchmarks/bench_async.py

* **script** (the CI benchmark-regression job)::

      PYTHONPATH=src python benchmarks/bench_async.py \
          --repeats 3 --json BENCH_async.json --min-speedup 1.0
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
from pathlib import Path

try:  # script mode: bootstrap the src layout without installation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - exercised by the CI script job
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    latency_percentiles,
    replay_async,
    replay_threaded,
    unique_fingerprints,
)
from repro.cluster.executors import SerialPartitionExecutor
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.service import AsyncOptimizerGateway, ShardedOptimizerGateway

N_CLIENTS = 8
N_UNIQUE = 4
#: 9-table queries keep each DP run long enough (a few ms) that the cold
#: herd genuinely piles up on the same fingerprints (see bench_gateway.py).
N_TABLES = 9
#: Rounds per client over the unique list: round 1 is the cold thundering
#: herd, later rounds are the hit-dominated steady state where serving
#: overhead (threads vs futures) is the entire cost.
N_ROUNDS = 6
N_WORKERS = 4
N_SHARDS = 4


class CountingSerialExecutor(SerialPartitionExecutor):
    """Serial executor counting DP runs (``map_partitions`` invocations)."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def map_partitions(self, query, n_partitions, settings):
        with self._lock:
            self.calls += 1
        return super().map_partitions(query, n_partitions, settings)


def make_workload(n_unique: int = N_UNIQUE, n_tables: int = N_TABLES, seed: int = 71):
    generator = SteinbrunnGenerator(seed)
    return [generator.query(n_tables) for __ in range(n_unique)]


# ------------------------------------------------------------------ herd


def measure_threaded_herd(queries, n_clients=N_CLIENTS, n_rounds=N_ROUNDS):
    """N client threads, each submitting the unique list ``n_rounds`` times."""
    executors: list[CountingSerialExecutor] = []

    def factory():
        executor = CountingSerialExecutor()
        executors.append(executor)
        return executor

    latencies: list[list[float]] = [[] for __ in range(n_clients)]
    results: list[list] = [[] for __ in range(n_clients)]
    errors: list[BaseException | None] = [None] * n_clients
    barrier = threading.Barrier(n_clients + 1)

    with ShardedOptimizerGateway(
        n_shards=N_SHARDS, n_workers=N_WORKERS, executor_factory=factory
    ) as gateway:

        def client(index: int) -> None:
            barrier.wait()
            try:
                for __ in range(n_rounds):
                    for query in queries:
                        begin = time.perf_counter()
                        results[index].append(gateway.optimize(query))
                        latencies[index].append((time.perf_counter() - begin) * 1e3)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors[index] = error

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - started
        stats = gateway.stats()
    for error in errors:
        if error is not None:
            raise error
    flat_latencies = [value for per_client in latencies for value in per_client]
    n_requests = n_clients * n_rounds * len(queries)
    return {
        "wall_s": wall_s,
        "throughput_qps": n_requests / wall_s,
        "optimizations": stats.optimizations,
        "executor_runs": sum(executor.calls for executor in executors),
        "latency_ms": latency_percentiles(flat_latencies),
        "results": results,
    }


def measure_async_herd(queries, n_clients=N_CLIENTS, n_rounds=N_ROUNDS):
    """The same herd as client tasks on one loop through the async gateway."""
    executors: list[CountingSerialExecutor] = []

    def factory():
        executor = CountingSerialExecutor()
        executors.append(executor)
        return executor

    async def run():
        latencies: list[float] = []
        results: list[list] = [[] for __ in range(n_clients)]
        gateway = ShardedOptimizerGateway(
            n_shards=N_SHARDS, n_workers=N_WORKERS, executor_factory=factory
        )
        async with AsyncOptimizerGateway(
            gateway, own_gateway=True, max_pending=4 * n_clients * len(queries)
        ) as front:
            loop = asyncio.get_running_loop()

            async def client(index: int) -> None:
                for __ in range(n_rounds):
                    for query in queries:
                        begin = loop.time()
                        results[index].append(await front.optimize(query))
                        latencies.append((loop.time() - begin) * 1e3)

            started = time.perf_counter()
            await asyncio.gather(*[client(index) for index in range(n_clients)])
            wall_s = time.perf_counter() - started
            stats = front.stats()
        return wall_s, results, latencies, stats

    wall_s, results, latencies, stats = asyncio.run(run())
    n_requests = n_clients * n_rounds * len(queries)
    return {
        "wall_s": wall_s,
        "throughput_qps": n_requests / wall_s,
        "optimizations": stats.gateway.optimizations,
        "executor_runs": sum(executor.calls for executor in executors),
        "coalesced": stats.coalesced,
        "fast_path_hits": stats.fast_path_hits,
        "result_memo_hits": stats.result_memo_hits,
        "batch_sizes": {str(size): count for size, count in sorted(stats.batch_sizes.items())},
        "rejections": stats.rejections,
        "latency_ms": latency_percentiles(latencies),
        "results": results,
    }


def _herd_plans_agree(queries, measured) -> bool:
    references = [best_plan(optimize_serial(query)).cost for query in queries]
    for per_client in measured["results"]:
        for position, result in enumerate(per_client):
            if result.best.cost != references[position % len(references)]:
                return False
    return True


# ------------------------------------------------------------------ zipf


def measure_zipf(seed: int = 71):
    """Replay one seeded multi-tenant Zipf schedule through both stacks."""
    profile = TrafficProfile(
        n_requests=192, n_unique=16, tables=(5, 7), seed=seed
    )
    schedule = generate_traffic(profile)
    n_unique = len(unique_fingerprints(schedule))

    with ShardedOptimizerGateway(n_shards=N_SHARDS, n_workers=N_WORKERS) as gateway:
        threaded = replay_threaded(gateway, schedule, n_clients=N_CLIENTS)
        threaded_optimizations = gateway.stats().optimizations

    async def run():
        async with AsyncOptimizerGateway(
            n_shards=N_SHARDS, n_workers=N_WORKERS, max_pending=256
        ) as front:
            report = await replay_async(front, schedule, n_clients=N_CLIENTS)
            return report, front.stats()

    async_report, async_stats = asyncio.run(run())
    return {
        "n_requests": len(schedule),
        "n_unique_fingerprints": n_unique,
        "threaded": {
            "wall_s": threaded.wall_s,
            "throughput_qps": threaded.throughput_qps,
            "optimizations": threaded_optimizations,
            "latency_ms": threaded.latency_percentiles(),
        },
        "async": {
            "wall_s": async_report.wall_s,
            "throughput_qps": async_report.throughput_qps,
            "optimizations": async_stats.gateway.optimizations,
            "retries": async_report.retries,
            "rejections": async_stats.rejections,
            "latency_ms": async_report.latency_percentiles(),
        },
        "one_run_per_fingerprint": (
            threaded_optimizations == n_unique
            and async_stats.gateway.optimizations == n_unique
        ),
    }


# ------------------------------------------------------------- parametric


def measure_parametric_serve(seed: int = 71):
    """θ-varying parametric replay: one envelope DP per shape, zero after.

    Every request is parametric with a concrete θ drawn from a fixed grid.
    Fingerprints are θ-free, so the first request per shape materializes the
    lower-envelope entry and every later θ — same shape, any θ — binds by
    breakpoint lookup.  Measured on both stacks; the envelope-hit counters
    and the DP-run invariant (runs == unique shapes, not unique (shape, θ)
    pairs) are part of the report.
    """
    profile = TrafficProfile(
        n_requests=192,
        n_unique=12,
        tables=(5, 7),
        features=(("parametric", 1.0),),
        parametric_thetas=(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
        seed=seed,
    )
    schedule = generate_traffic(profile)
    n_unique = len(unique_fingerprints(schedule))
    n_bound = sum(1 for request in schedule if request.theta is not None)

    with ShardedOptimizerGateway(n_shards=N_SHARDS, n_workers=N_WORKERS) as gateway:
        threaded = replay_threaded(gateway, schedule, n_clients=N_CLIENTS)
        threaded_stats = gateway.stats()

    async def run():
        async with AsyncOptimizerGateway(
            n_shards=N_SHARDS, n_workers=N_WORKERS, max_pending=256
        ) as front:
            report = await replay_async(front, schedule, n_clients=N_CLIENTS)
            return report, front.stats()

    async_report, async_stats = asyncio.run(run())
    return {
        "n_requests": len(schedule),
        "n_unique_shapes": n_unique,
        "n_theta_bound_requests": n_bound,
        "threaded": {
            "wall_s": threaded.wall_s,
            "throughput_qps": threaded.throughput_qps,
            "optimizations": threaded_stats.optimizations,
            "envelope_hits": threaded_stats.envelope_hits,
            "latency_ms": threaded.latency_percentiles(),
        },
        "async": {
            "wall_s": async_report.wall_s,
            "throughput_qps": async_report.throughput_qps,
            "optimizations": async_stats.gateway.optimizations,
            "envelope_hits": async_stats.gateway.envelope_hits,
            "retries": async_report.retries,
            "latency_ms": async_report.latency_percentiles(),
        },
        # The tentpole invariant: after the first envelope materialization
        # per shape, θ-varying traffic costs zero additional DP runs.
        "zero_additional_dp_runs": (
            threaded_stats.optimizations == n_unique
            and async_stats.gateway.optimizations == n_unique
        ),
    }


# ------------------------------------------------------------------ report


def run_benchmark(
    n_clients: int = N_CLIENTS,
    n_unique: int = N_UNIQUE,
    n_tables: int = N_TABLES,
    n_rounds: int = N_ROUNDS,
    seed: int = 71,
    repeats: int = 2,
    include_zipf: bool = True,
) -> dict:
    """Best-of-``repeats`` herd comparison plus one Zipf replay."""
    queries = make_workload(n_unique, n_tables, seed)
    threaded_best = None
    async_best = None
    plans_agree = True
    one_run_per_fingerprint = True
    for __ in range(repeats):
        threaded = measure_threaded_herd(queries, n_clients, n_rounds)
        asynchronous = measure_async_herd(queries, n_clients, n_rounds)
        plans_agree = (
            plans_agree
            and _herd_plans_agree(queries, threaded)
            and _herd_plans_agree(queries, asynchronous)
        )
        one_run_per_fingerprint = one_run_per_fingerprint and (
            threaded["optimizations"] == n_unique
            and threaded["executor_runs"] == n_unique
            and asynchronous["optimizations"] == n_unique
            and asynchronous["executor_runs"] == n_unique
        )
        if threaded_best is None or threaded["wall_s"] < threaded_best["wall_s"]:
            threaded_best = threaded
        if async_best is None or asynchronous["wall_s"] < async_best["wall_s"]:
            async_best = asynchronous
    assert threaded_best is not None and async_best is not None
    threaded_best = {k: v for k, v in threaded_best.items() if k != "results"}
    async_best = {k: v for k, v in async_best.items() if k != "results"}
    report = {
        "config": {
            "n_clients": n_clients,
            "n_unique_queries": n_unique,
            "n_tables": n_tables,
            "n_rounds": n_rounds,
            "n_shards": N_SHARDS,
            "n_workers": N_WORKERS,
            "seed": seed,
            "repeats": repeats,
        },
        "threaded_gateway": threaded_best,
        "async_gateway": async_best,
        "speedup": threaded_best["wall_s"] / async_best["wall_s"],
        "plans_agree": plans_agree,
        "one_run_per_fingerprint": one_run_per_fingerprint,
    }
    if include_zipf:
        report["zipf_replay"] = measure_zipf(seed)
        report["parametric_serve"] = measure_parametric_serve(seed)
    return report


# ------------------------------------------------------------------ pytest


def test_async_throughput_at_least_threaded_gateway():
    """Acceptance: the async front-end serves the 8-client herd no slower
    than the threaded gateway, with every plan agreeing with serial DP.
    Best-of-3 on both sides, matching the CI script gate, to keep the
    near-parity comparison out of scheduler-noise territory."""
    report = run_benchmark(repeats=3, include_zipf=False)
    assert report["plans_agree"], report
    assert report["one_run_per_fingerprint"], report
    assert report["speedup"] >= 1.0, report


def test_zipf_replay_preserves_singleflight_on_both_stacks():
    zipf = measure_zipf()
    assert zipf["one_run_per_fingerprint"], zipf
    assert zipf["async"]["optimizations"] == zipf["n_unique_fingerprints"], zipf


def test_parametric_serve_costs_zero_additional_dp_runs():
    """Acceptance: θ-varying parametric traffic on both stacks pays exactly
    one DP run per query *shape* — every other θ binds from the cached
    envelope, and the envelope-hit counters prove the fast path ran."""
    report = measure_parametric_serve()
    assert report["zero_additional_dp_runs"], report
    assert report["threaded"]["envelope_hits"] > 0, report
    assert report["async"]["envelope_hits"] > 0, report


# ------------------------------------------------------------------ script


def _print_report(report: dict) -> None:
    config = report["config"]
    threaded = report["threaded_gateway"]
    asynchronous = report["async_gateway"]
    print(
        f"async benchmark: {config['n_clients']} clients x "
        f"{config['n_rounds']} rounds x {config['n_unique_queries']} unique "
        f"{config['n_tables']}-table queries, {config['n_shards']} shards, "
        f"repeats={config['repeats']}"
    )
    for label, side in (("threaded", threaded), ("async", asynchronous)):
        latency = side["latency_ms"]
        print(
            f"  {label:>8}: {side['wall_s'] * 1e3:8.1f} ms  "
            f"({side['throughput_qps']:8.1f} req/s, "
            f"{side['optimizations']} DP runs)  "
            f"p50/p90/p99 = {latency['p50']:.2f}/{latency['p90']:.2f}/"
            f"{latency['p99']:.2f} ms"
        )
    print(f"  speedup {report['speedup']:5.2f}x")
    zipf = report.get("zipf_replay")
    if zipf:
        print(
            f"  zipf replay: {zipf['n_requests']} requests, "
            f"{zipf['n_unique_fingerprints']} unique fingerprints, "
            f"async p99 {zipf['async']['latency_ms']['p99']:.2f} ms, "
            f"retries {zipf['async']['retries']}"
        )
    parametric = report.get("parametric_serve")
    if parametric:
        print(
            f"  parametric serve: {parametric['n_requests']} requests "
            f"({parametric['n_theta_bound_requests']} theta-bound) over "
            f"{parametric['n_unique_shapes']} shapes -> "
            f"{parametric['threaded']['optimizations']} DP runs threaded / "
            f"{parametric['async']['optimizations']} async, "
            f"envelope hits {parametric['threaded']['envelope_hits']}/"
            f"{parametric['async']['envelope_hits']}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    parser.add_argument("--uniques", type=int, default=N_UNIQUE)
    parser.add_argument("--tables", type=int, default=N_TABLES)
    parser.add_argument("--rounds", type=int, default=N_ROUNDS)
    parser.add_argument("--seed", type=int, default=71)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--json", default=None, help="write the full report to this file"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail unless async throughput reaches this multiple of the "
        "threaded gateway",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(
        n_clients=args.clients,
        n_unique=args.uniques,
        n_tables=args.tables,
        n_rounds=args.rounds,
        seed=args.seed,
        repeats=args.repeats,
    )
    _print_report(report)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["plans_agree"]:
        print("FAIL: a served answer diverged from serial DP", file=sys.stderr)
        return 2
    if not report["one_run_per_fingerprint"]:
        print(
            "FAIL: more than one DP run for a fingerprint "
            "(batching/coalescing broken)",
            file=sys.stderr,
        )
        return 3
    if report["speedup"] < args.min_speedup:
        print(
            f"FAIL: async speedup {report['speedup']:.2f}x below the "
            f"{args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
