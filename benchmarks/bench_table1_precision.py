"""Table 1 — minimal parallelism to reach precision alpha within a budget.

Benchmarks multi-objective runs across the alpha grid (pruning gets cheaper
as alpha grows), then regenerates the table at CI scale and asserts its
qualitative structure: more parallelism buys tighter precision.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import star_query
from repro.algorithms.mpq import optimize_mpq
from repro.bench.experiments import table1
from repro.bench.workloads import TABLE1_ALPHAS
from repro.config import MULTI_OBJECTIVE, OptimizerSettings, PlanSpace


@pytest.mark.parametrize("alpha", [1.01, 1.5, 10.0])
def test_moq_cost_by_alpha(benchmark, alpha):
    settings = OptimizerSettings(
        plan_space=PlanSpace.LINEAR, objectives=MULTI_OBJECTIVE, alpha=alpha
    )
    query = star_query(8)
    report = benchmark.pedantic(
        optimize_mpq, args=(query, 4, settings), rounds=3, iterations=1
    )
    assert report.plans


def test_alpha_monotone_work():
    """Tighter alpha means more retained plans and more DP work."""
    query = star_query(9)
    considered = []
    for alpha in (1.01, 2.0, 10.0):
        settings = OptimizerSettings(
            plan_space=PlanSpace.LINEAR, objectives=MULTI_OBJECTIVE, alpha=alpha
        )
        report = optimize_mpq(query, 1, settings)
        considered.append(report.result.partition_results[0].stats.plans_considered)
    assert considered == sorted(considered, reverse=True)


def test_table1_report(benchmark):
    """Regenerate Table 1 (CI scale) and assert its monotone structure."""
    result = benchmark.pedantic(table1, args=("ci",), rounds=1, iterations=1)
    print()
    print(result.format())

    def required(budget, n_tables, alpha):
        value = result.entries[(budget, n_tables, alpha)]
        return value if value is not None else float("inf")

    for n_tables in result.tables:
        for alpha_lo, alpha_hi in zip(TABLE1_ALPHAS, TABLE1_ALPHAS[1:]):
            for budget in result.budgets_s:
                # Coarser precision never needs more workers.
                assert required(budget, n_tables, alpha_hi) <= required(
                    budget, n_tables, alpha_lo
                )
        for budget_lo, budget_hi in zip(result.budgets_s, result.budgets_s[1:]):
            for alpha in TABLE1_ALPHAS:
                # A larger budget never needs more workers.
                assert required(budget_hi, n_tables, alpha) <= required(
                    budget_lo, n_tables, alpha
                )
