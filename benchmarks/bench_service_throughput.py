"""Service throughput: cold vs warm plan cache, per-query vs persistent pools.

The service layer's two claims, measured:

1. **Warm-cache batch throughput >= 10x cold single-query throughput** — a
   cache hit costs one fingerprint plus one plan remap, orders of magnitude
   below the DP it replaces.
2. **Cached/batched answers are cost-identical to serial optimization** —
   the cache only ever short-circuits work, never changes it.

It also compares per-query process pools (a fresh pool per optimization,
the shape of the one-shot :class:`ProcessPoolPartitionExecutor`) against a
:class:`PersistentProcessPoolExecutor` batching every query onto one warm
pool — the service-shaped alternative.

Run standalone (``python benchmarks/bench_service_throughput.py``) for a
report, or under pytest for the assertions.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.cluster.executors import (
    PersistentProcessPoolExecutor,
    ProcessPoolPartitionExecutor,
)
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.service import OptimizerService

N_QUERIES = 6
N_TABLES = 8
N_WORKERS = 4


def make_workload(n_queries: int = N_QUERIES, n_tables: int = N_TABLES, seed: int = 51):
    generator = SteinbrunnGenerator(seed)
    return [generator.query(n_tables) for __ in range(n_queries)]


def measure_cold_and_warm(queries) -> tuple[float, float, list]:
    """Seconds for a cold batch (all misses) and a warm batch (all hits)."""
    with OptimizerService(n_workers=N_WORKERS) as service:
        started = time.perf_counter()
        cold_results = service.optimize_batch(queries)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm_results = service.optimize_batch(queries)
        warm_s = time.perf_counter() - started
    assert not any(result.cached for result in cold_results)
    assert all(result.cached for result in warm_results)
    return cold_s, warm_s, warm_results


def measure_per_query_pools(queries) -> float:
    """Seconds to optimize the workload with a fresh process pool per query."""
    started = time.perf_counter()
    for query in queries:
        executor = ProcessPoolPartitionExecutor(max_workers=N_WORKERS)
        with OptimizerService(n_workers=N_WORKERS, executor=executor) as service:
            service.optimize(query)
    return time.perf_counter() - started


def measure_persistent_pool(queries) -> tuple[float, int]:
    """Seconds for one warm pool serving the whole batch, plus pools started."""
    with PersistentProcessPoolExecutor(max_workers=N_WORKERS) as executor:
        with OptimizerService(n_workers=N_WORKERS, executor=executor) as service:
            started = time.perf_counter()
            service.optimize_batch(queries)
            elapsed = time.perf_counter() - started
        return elapsed, executor.pools_started


def test_warm_cache_batch_at_least_10x_cold():
    queries = make_workload()
    cold_s, warm_s, __ = measure_cold_and_warm(queries)
    cold_throughput = len(queries) / cold_s
    warm_throughput = len(queries) / warm_s
    assert warm_throughput >= 10 * cold_throughput, (
        f"warm {warm_throughput:.0f} q/s vs cold {cold_throughput:.0f} q/s"
    )


def test_batch_plans_cost_identical_to_serial():
    queries = make_workload()
    with OptimizerService(n_workers=N_WORKERS) as service:
        cold = service.optimize_batch(queries)
        warm = service.optimize_batch(queries)
    for query, cold_result, warm_result in zip(queries, cold, warm):
        reference = best_plan(optimize_serial(query))
        assert cold_result.best.cost == reference.cost
        assert warm_result.best.cost == reference.cost


def test_persistent_pool_starts_once_and_beats_per_query_pools():
    queries = make_workload(n_queries=4)
    per_query_s = measure_per_query_pools(queries)
    persistent_s, pools_started = measure_persistent_pool(queries)
    assert pools_started == 1
    assert persistent_s < per_query_s, (
        f"persistent {persistent_s:.3f}s vs per-query {per_query_s:.3f}s"
    )


def main() -> int:
    queries = make_workload()
    cold_s, warm_s, __ = measure_cold_and_warm(queries)
    per_query_s = measure_per_query_pools(queries)
    persistent_s, pools_started = measure_persistent_pool(queries)
    n = len(queries)
    print(f"workload: {n} queries x {N_TABLES} tables, {N_WORKERS} workers each")
    print(f"cold batch (cache misses):   {cold_s * 1e3:8.1f} ms  "
          f"({n / cold_s:10.1f} q/s)")
    print(f"warm batch (cache hits):     {warm_s * 1e3:8.1f} ms  "
          f"({n / warm_s:10.1f} q/s)")
    print(f"warm/cold throughput ratio:  {cold_s / warm_s:8.1f}x")
    print(f"per-query process pools:     {per_query_s * 1e3:8.1f} ms")
    print(f"persistent pool (batched):   {persistent_s * 1e3:8.1f} ms  "
          f"({pools_started} pool start)")
    print(f"pool reuse speedup:          {per_query_s / persistent_s:8.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
