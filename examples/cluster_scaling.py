"""Scaling MPQ on the simulated shared-nothing cluster (mini Figure 2).

Sweeps the worker count for one query and prints the four series the paper
plots: total simulated time, max worker time, per-worker memory in stored
relations, and network traffic.  Worker time shrinks by ~3/4 per doubling
(linear plans), memory by exactly 3/4, and network grows linearly in the
worker count.

Run:  python examples/cluster_scaling.py
"""

from __future__ import annotations

from repro import ClusterModel, NetworkModel, OptimizerSettings, PlanSpace, make_star_query
from repro.algorithms.mpq import optimize_mpq
from repro.core.constraints import max_partitions


def main() -> None:
    query = make_star_query(12, seed=31)
    settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
    # A cluster with modest overheads, matched to this query size (the
    # paper's Spark cluster had ~100 ms task overhead against minute-long
    # optimizations; see DESIGN.md on scale matching).
    cluster = ClusterModel(
        network=NetworkModel(latency_s=1e-4), task_setup_s=0.005
    )

    limit = max_partitions(query.n_tables, settings.plan_space)
    print(f"{query.name}: up to {limit} partitions available")
    print(f"{'workers':>8} {'time_ms':>10} {'w_time_ms':>10} "
          f"{'memory_rel':>11} {'network_B':>10}")

    workers = 1
    previous = None
    while workers <= min(limit, 64):
        report = optimize_mpq(query, workers, settings, cluster)
        print(
            f"{report.n_partitions:>8d} {report.simulated_time_ms:>10.2f} "
            f"{report.max_worker_time_ms:>10.2f} "
            f"{report.max_worker_memory_relations:>11d} "
            f"{report.network_bytes:>10,d}"
        )
        if previous is not None:
            shrink = (
                report.max_worker_memory_relations
                / previous.max_worker_memory_relations
            )
            assert abs(shrink - 0.75) < 0.02, "memory must shrink by 3/4"
        previous = report
        workers *= 2

    print()
    print("Memory shrinks by exactly 3/4 per worker doubling (Theorem 2);")
    print("worker time tracks the same factor (Theorem 6); network bytes")
    print("grow linearly in the worker count (Theorem 1).")


if __name__ == "__main__":
    main()
