"""Genuine shared-nothing parallelism with a process pool.

Every other example executes partitions in one process and *simulates*
cluster timing.  Here the partitions really run in separate OS processes:
each child receives exactly the task payload the paper's master ships
(query + partition ID + partition count + settings), rebuilds its cost model
locally, and returns complete plans — one round of communication.

Python's GIL makes threads useless for CPU-bound DP (the repro-band caveat),
so the process pool is the honest local analogue of the paper's cluster.

Run:  python examples/true_parallelism.py
"""

from __future__ import annotations

import os
import time

from repro import (
    OptimizerSettings,
    PlanSpace,
    ProcessPoolPartitionExecutor,
    SerialPartitionExecutor,
    make_star_query,
    optimize_parallel,
)


def timed(label, executor, query, workers, settings):
    started = time.perf_counter()
    result = optimize_parallel(query, workers, settings, executor=executor)
    elapsed = time.perf_counter() - started
    print(f"{label:>28}: {elapsed * 1e3:>8.0f} ms "
          f"(best cost {result.best.cost[0]:,.0f})")
    return result, elapsed


def main() -> None:
    query = make_star_query(13, seed=61)
    settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
    workers = 8
    print(f"{query.name}: {workers} partitions\n")

    serial_result, serial_s = timed(
        "serial executor", SerialPartitionExecutor(), query, workers, settings
    )
    process_result, process_s = timed(
        f"process pool ({workers} procs)",
        ProcessPoolPartitionExecutor(max_workers=workers),
        query,
        workers,
        settings,
    )

    assert serial_result.best.cost[0] == process_result.best.cost[0]
    print()
    total_work = sum(
        r.stats.wall_time_s for r in serial_result.partition_results
    )
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    print(f"sum of partition work:        {total_work * 1e3:>8.0f} ms")
    print(f"available CPU cores:          {cores:>8d}")
    print(f"real speedup over serial:     {serial_s / process_s:>8.2f}x")
    print()
    if cores > 1:
        print("Partitioned DP does (3/2)^l times the serial algorithm's work")
        print("in total, but each partition runs independently — so with")
        print("enough cores the wall-clock still drops, the paper's trade.")
    else:
        print("Only one CPU core is available here, so the process pool")
        print("cannot beat the serial loop — on a multi-core machine (or the")
        print("paper's cluster) the independent partitions run concurrently")
        print("and the wall-clock drops despite the extra total work.")


if __name__ == "__main__":
    main()
