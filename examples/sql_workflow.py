"""End-to-end workflow: catalog → SQL → parallel optimization → execution.

A downstream user's path through the library on a TPC-H-flavoured schema:

1. define a catalog (statistics only, no data);
2. write an SPJ join query in SQL;
3. optimize it with MPQ over 16 plan-space partitions;
4. execute the chosen plan — and a deliberately bad plan — on synthetic
   tuples to confirm both the semantics (identical results) and the cost
   model's ranking (the optimizer's plan does far less work).

Run:  python examples/sql_workflow.py
"""

from __future__ import annotations

from repro import Catalog, Column, Table, optimize_mpq
from repro.algorithms.randomized import plan_for_order
from repro.config import OptimizerSettings
from repro.cost.costmodel import CostModel
from repro.exec import execute_plan, generate_database, plans_equivalent
from repro.query.sql import parse_sql


def tpch_like_catalog() -> Catalog:
    """A miniature TPC-H-shaped schema, scaled so the demo data joins.

    Cardinalities and key domains keep TPC-H's *ratios* (lineitem is the
    big fact table, nation is tiny) at 1/500 scale, which lets the
    execution step at the end produce visible result rows on a small
    synthetic sample.
    """
    catalog = Catalog()
    catalog.add(
        Table(
            "lineitem",
            1_200,
            (Column("okey", 300), Column("pkey", 40), Column("skey", 10)),
        )
    )
    catalog.add(Table("orders", 300, (Column("okey", 300), Column("ckey", 30))))
    catalog.add(Table("customer", 30, (Column("ckey", 30), Column("nkey", 5))))
    catalog.add(Table("part", 40, (Column("pkey", 40),)))
    catalog.add(Table("supplier", 10, (Column("skey", 10), Column("nkey", 5))))
    catalog.add(Table("nation", 5, (Column("nkey", 5),)))
    return catalog


SQL = """
SELECT * FROM lineitem l, orders o, customer c, part p, supplier s, nation n
WHERE l.okey = o.okey AND o.ckey = c.ckey AND l.pkey = p.pkey
  AND l.skey = s.skey AND s.nkey = n.nkey
"""


def main() -> None:
    catalog = tpch_like_catalog()
    query = parse_sql(SQL, catalog)
    print(f"parsed {query.n_tables}-table join with {len(query.predicates)} predicates")

    report = optimize_mpq(query, n_workers=16)
    names = tuple(table.name for table in query.tables)
    print(f"\noptimal plan (MPQ, {report.n_partitions} partitions):")
    print(report.best.pretty(names))
    print(f"estimated cost: {report.best.cost[0]:,.0f}")

    # A worst-practice plan: join in FROM order regardless of statistics.
    model = CostModel(query, OptimizerSettings())
    naive = plan_for_order(range(query.n_tables), model)
    print(f"\nnaive FROM-order plan cost: {naive.cost[0]:,.0f}")
    print(f"optimizer advantage: {naive.cost[0] / report.best.cost[0]:,.1f}x cheaper")

    # Both plans must mean the same query: execute them on synthetic tuples.
    database = generate_database(query, seed=7, max_rows=120)
    assert plans_equivalent([report.best, naive], database)
    rows = execute_plan(report.best, database)
    print(f"\nexecuted on synthetic data: {len(rows)} result rows from both plans")
    print("plans are semantically equivalent; the cost model only changes speed.")


if __name__ == "__main__":
    main()
