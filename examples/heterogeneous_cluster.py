"""Heterogeneous clusters: partitions proportional to worker speed.

The paper's footnote: "If worker nodes are heterogeneous then the number of
partitions treated by a worker should be proportional to its performance."
Because every partition has exactly the same size, proportional assignment
is all that is needed — this example quantifies how much it buys on a
cluster whose nodes differ by up to 4x in speed.

Run:  python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

from repro import ClusterModel, OptimizerSettings, make_star_query, optimize_parallel
from repro.core.scheduling import (
    WorkerProfile,
    assign_partitions,
    simulate_heterogeneous_run,
)


def main() -> None:
    query = make_star_query(12, seed=53)
    settings = OptimizerSettings()
    cluster = ClusterModel()
    result = optimize_parallel(query, 32, settings)
    print(f"{query.name}: {result.n_partitions} equal-size partitions\n")

    nodes = [
        WorkerProfile("fast-0", 4.0),
        WorkerProfile("fast-1", 4.0),
        WorkerProfile("mid-0", 2.0),
        WorkerProfile("mid-1", 2.0),
        WorkerProfile("slow-0", 1.0),
        WorkerProfile("slow-1", 1.0),
    ]
    assignment = assign_partitions(result.n_partitions, nodes)
    print(f"{'node':>8} {'speed':>6} {'partitions':>11}")
    for node, partitions in zip(nodes, assignment):
        print(f"{node.name:>8} {node.speed:>6.1f} {len(partitions):>11d}")
    print()

    proportional = simulate_heterogeneous_run(cluster, query, result, nodes)
    uniform_nodes = [WorkerProfile(node.name, 1.0) for node in nodes]
    # A naive scheduler ignores speeds: equal partition counts per node, but
    # nodes still run at their true speeds.  Emulate by scaling each node's
    # uniform-share compute time with its real speed.
    uniform_assignment = assign_partitions(result.n_partitions, uniform_nodes)
    from repro.cluster.simulator import worker_compute_seconds

    naive_times = []
    for partitions, node in zip(uniform_assignment, nodes):
        work = sum(
            worker_compute_seconds(cluster, result.partition_results[p].stats)
            for p in partitions
        )
        naive_times.append(cluster.task_setup_s + work / node.speed)
    naive_makespan = max(naive_times)

    print(f"speed-aware makespan: {proportional.workers_done_s * 1e3:8.2f} ms")
    print(f"speed-blind makespan: {naive_makespan * 1e3:8.2f} ms")
    print(f"improvement:          {naive_makespan / proportional.workers_done_s:8.2f}x")
    print()
    print("Equal-size partitions make heterogeneity a pure scheduling")
    print("problem: proportional assignment removes the slow-node straggler.")


if __name__ == "__main__":
    main()
