"""Quickstart: optimize a join query serially and with MPQ.

Builds a small star-schema catalog by hand, finds the optimal left-deep plan
with classical dynamic programming, then runs MPQ over 8 plan-space
partitions and verifies both agree — the paper's core guarantee.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Column,
    JoinPredicate,
    OptimizerSettings,
    PlanSpace,
    Query,
    Table,
    optimize_mpq,
    optimize_serial,
)
from repro.core.serial import best_plan
from repro.query.predicates import equi_join_selectivity


def build_query() -> Query:
    """A hand-made 6-table star query: fact table + five dimensions."""
    key = Column("id", 10_000)
    fact = Table(
        "sales",
        cardinality=80_000,
        columns=tuple(Column(f"fk{i}", 10_000) for i in range(5)),
    )
    dimensions = [
        Table(f"dim{i}", cardinality=500 * (i + 1), columns=(key,)) for i in range(5)
    ]
    predicates = tuple(
        JoinPredicate(
            left_table=0,
            left_column=f"fk{i}",
            right_table=i + 1,
            right_column="id",
            selectivity=equi_join_selectivity(fact.columns[i], key),
        )
        for i in range(5)
    )
    return Query(tables=(fact, *dimensions), predicates=predicates, name="sales-star")


def main() -> None:
    query = build_query()
    print(query.describe())
    print()

    # Classical serial dynamic programming (Selinger) over left-deep plans.
    settings = OptimizerSettings(plan_space=PlanSpace.LINEAR)
    serial = optimize_serial(query, settings)
    serial_best = best_plan(serial)
    print("Serial DP optimal plan:")
    print(serial_best.pretty(tuple(t.name for t in query.tables)))
    print(f"cost = {serial_best.cost[0]:,.0f}")
    print()

    # MPQ: same query, 8 plan-space partitions, one task per worker.
    report = optimize_mpq(query, n_workers=8, settings=settings)
    print(f"MPQ with {report.n_partitions} partitions:")
    print(f"  best cost            = {report.best.cost[0]:,.0f}")
    print(f"  simulated time       = {report.simulated_time_ms:.1f} ms")
    print(f"  max worker time      = {report.max_worker_time_ms:.3f} ms")
    print(f"  network traffic      = {report.network_bytes:,} bytes")
    print(f"  max worker memory    = {report.max_worker_memory_relations} relations")
    print()

    assert report.best.cost[0] == serial_best.cost[0], "MPQ must match serial DP"
    print("MPQ found the same optimal cost as serial DP — as Theorem 1 promises.")

    # The same query in the bushy plan space (possibly cheaper plans).
    bushy = optimize_mpq(query, 4, OptimizerSettings(plan_space=PlanSpace.BUSHY))
    print(f"Bushy-space optimum: {bushy.best.cost[0]:,.0f} "
          f"(left-deep was {serial_best.cost[0]:,.0f})")


if __name__ == "__main__":
    main()
