"""Optimizer-as-a-service: cached batch optimization end to end.

A long-lived :class:`~repro.service.OptimizerService` serves a stream of
join queries.  The first batch pays full dynamic-programming cost; repeats
— including queries that merely *relabel* the same relations — are
recognized by the relation-permutation-invariant fingerprint and answered
from the LRU plan cache in O(plan size).

Run:  python examples/service_throughput.py
"""

from __future__ import annotations

import dataclasses
import time

from repro import OptimizerService, Query, SteinbrunnGenerator, optimize_serial
from repro.core.serial import best_plan


def relabel_reversed(query: Query) -> Query:
    """The same query with table numbering reversed (a pure relabeling)."""
    n = query.n_tables
    predicates = tuple(
        dataclasses.replace(
            predicate,
            left_table=n - 1 - predicate.left_table,
            right_table=n - 1 - predicate.right_table,
        )
        for predicate in query.predicates
    )
    return Query(
        tables=tuple(reversed(query.tables)),
        predicates=predicates,
        name=f"{query.name}-reversed",
    )


def main() -> None:
    generator = SteinbrunnGenerator(seed=7)
    workload = [generator.query(8) for __ in range(5)]

    with OptimizerService(n_workers=8, cache_capacity=64) as service:
        started = time.perf_counter()
        cold = service.optimize_batch(workload)
        cold_ms = (time.perf_counter() - started) * 1e3

        started = time.perf_counter()
        warm = service.optimize_batch(workload)
        warm_ms = (time.perf_counter() - started) * 1e3

        print(f"cold batch: {cold_ms:7.1f} ms   ({len(workload)} queries, all misses)")
        print(f"warm batch: {warm_ms:7.1f} ms   (all cache hits)")
        print(f"speedup:    {cold_ms / warm_ms:7.1f}x\n")

        for query, cold_result, warm_result in zip(workload, cold, warm):
            reference = best_plan(optimize_serial(query))
            assert warm_result.best.cost == cold_result.best.cost == reference.cost
            print(
                f"{query.name}: best cost {warm_result.best.cost[0]:.3g} "
                f"(fingerprint {warm_result.fingerprint[:12]}..., "
                f"{'hit' if warm_result.cached else 'miss'})"
            )

        stats = service.cache.stats
        print(
            f"\ncache: {stats.hits} hits / {stats.misses} misses "
            f"({stats.hit_rate:.0%}), {len(service.cache)} entries resident"
        )

        # Isomorphism, not just identity: reversing a query's table numbering
        # changes nothing the optimizer cares about, so it hits too — and the
        # served plan comes back renumbered for the *request's* tables.
        relabeled = relabel_reversed(workload[0])
        served = service.optimize(relabeled)
        print(
            f"\nrelabeled {relabeled.name}: "
            f"{'cache hit' if served.cached else 'cache miss'}, "
            f"best cost {served.best.cost[0]:.3g}"
        )


if __name__ == "__main__":
    main()
