"""Join-graph topology barely affects DP optimization time (mini Figure 3).

Because MPQ (like the classical DP it parallelizes) enumerates table sets
regardless of the join graph — cross products are permitted — chain, star,
cycle, and clique queries of the same size cost nearly the same to optimize.
Randomized algorithms show no such guarantee; compare their plan quality too.

Run:  python examples/join_graph_shapes.py
"""

from __future__ import annotations

import statistics
import time

from repro import OptimizerSettings, SteinbrunnGenerator, optimize_serial
from repro.algorithms.randomized import iterated_improvement, simulated_annealing
from repro.core.serial import best_plan
from repro.query.query import JoinGraphKind


def main() -> None:
    settings = OptimizerSettings()
    kinds = (
        JoinGraphKind.CHAIN,
        JoinGraphKind.STAR,
        JoinGraphKind.CYCLE,
        JoinGraphKind.CLIQUE,
    )

    print("DP work is topology-independent (the paper's Figure 3):")
    print(f"{'topology':>9} {'wall_ms':>9} {'splits':>8} {'candidates':>11}")
    splits_seen = set()
    for kind in kinds:
        queries = SteinbrunnGenerator(57).queries(3, 10, kind)
        times, splits, candidates = [], [], []
        for query in queries:
            started = time.perf_counter()
            result = optimize_serial(query, settings)
            times.append((time.perf_counter() - started) * 1e3)
            splits.append(result.stats.splits_considered)
            candidates.append(result.stats.plans_considered)
        print(
            f"{kind.value:>9} {statistics.median(times):>9.1f} "
            f"{splits[0]:>8d} {statistics.median(candidates):>11.0f}"
        )
        splits_seen.add(splits[0])
    assert len(splits_seen) == 1, "split counts depend only on query size"
    print("-> identical split counts for every topology.")
    print()

    print("Randomized search vs DP optimum (10-table star):")
    query = SteinbrunnGenerator(58).query(10, JoinGraphKind.STAR)
    optimum = best_plan(optimize_serial(query, settings)).cost[0]
    ii = iterated_improvement(query, n_restarts=5, seed=1).cost[0]
    sa = simulated_annealing(query, seed=1).cost[0]
    print(f"  DP optimum:            {optimum:>16,.0f}")
    print(f"  iterated improvement:  {ii:>16,.0f}  ({ii / optimum:.2f}x)")
    print(f"  simulated annealing:   {sa:>16,.0f}  ({sa / optimum:.2f}x)")
    print()
    print("DP guarantees the optimum; randomized methods only approach it —")
    print("the reason the paper parallelizes DP rather than the easy targets.")


if __name__ == "__main__":
    main()
