"""Traffic-replay quickstart: seeded multi-tenant load on the async gateway.

Generates a deterministic Zipf/bursty multi-tenant schedule, replays it
through the asyncio front-end with a herd of client tasks, and prints the
serving-side picture an operator would look at: throughput, latency
percentiles, batching behavior, admission-control activity, and per-tenant
accounting.  Run with::

    PYTHONPATH=src python examples/async_traffic_replay.py
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.traffic import (
    TrafficProfile,
    generate_traffic,
    replay_async,
    unique_fingerprints,
)
from repro.service import AsyncOptimizerGateway


async def main() -> None:
    profile = TrafficProfile(
        n_requests=256,
        n_unique=16,
        tables=(5, 7),
        zipf_skew=1.2,
        seed=42,
    )
    schedule = generate_traffic(profile)
    uniques = unique_fingerprints(schedule)
    print(
        f"schedule: {len(schedule)} requests over "
        f"{schedule[-1].at_s * 1e3:.0f} ms of simulated arrivals, "
        f"{len(uniques)} unique fingerprints, "
        f"tenants {sorted({r.tenant for r in schedule})}"
    )

    async with AsyncOptimizerGateway(
        n_shards=4,
        n_workers=8,
        batch_window_ms=2.0,
        max_batch=16,
        max_pending=64,       # deliberately snug: expect some backpressure
        tenant_share=0.5,
    ) as front:
        report = await replay_async(front, schedule, n_clients=32)
        stats = front.stats()

    percentiles = report.latency_percentiles((50, 90, 99))
    print(
        f"replayed in {report.wall_s * 1e3:.1f} ms "
        f"({report.throughput_qps:.0f} req/s), "
        f"retries after rejection: {report.retries}"
    )
    print(
        f"latency p50/p90/p99: {percentiles['p50']:.2f}/"
        f"{percentiles['p90']:.2f}/{percentiles['p99']:.2f} ms"
    )
    print(
        f"DP runs: {stats.gateway.optimizations} "
        f"(exactly one per unique fingerprint: "
        f"{stats.gateway.optimizations == len(uniques)})"
    )
    sizes = ", ".join(
        f"{size}x{count}" for size, count in sorted(stats.batch_sizes.items())
    )
    print(
        f"batching: {stats.dispatched_batches} batches ({sizes}), "
        f"{stats.coalesced} coalesced, {stats.fast_path_hits} fast-path hits"
    )
    print(
        f"admission: {stats.rejected_queue_full} queue-full + "
        f"{stats.rejected_tenant_share} tenant-share rejections"
    )
    for tenant, tenant_stats in sorted(stats.tenants.items()):
        print(
            f"  tenant {tenant:>6}: {tenant_stats.requests} requests, "
            f"{tenant_stats.completed} completed, "
            f"{tenant_stats.rejected} rejected"
        )


if __name__ == "__main__":
    asyncio.run(main())
