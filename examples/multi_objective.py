"""Multi-objective optimization: execution time vs buffer space.

Reproduces the paper's second experiment series in miniature: optimize a
query under two cost metrics, print the Pareto frontier, and show how the
approximation factor alpha trades frontier size (and optimization effort)
against the formal near-optimality guarantee.

Run:  python examples/multi_objective.py
"""

from __future__ import annotations

from repro import make_star_query, optimize_multi_objective
from repro.algorithms.moq import approximation_ratio, frontier_summary


def main() -> None:
    query = make_star_query(9, seed=23)
    print(f"Query: {query.name} ({query.n_tables} tables, "
          f"{len(query.predicates)} predicates)")
    print()

    # Exact Pareto frontier (alpha = 1).
    exact = optimize_multi_objective(query, n_workers=8, alpha=1.0)
    print(f"Exact Pareto frontier ({len(exact.plans)} plans)")
    print(f"{'time':>14}  {'buffer':>12}")
    print(frontier_summary(exact.plans))
    print()

    # Approximate frontiers: larger alpha, smaller frontier, less work.
    print(f"{'alpha':>6} {'plans':>6} {'candidates':>11} {'worst ratio':>12} "
          f"{'guarantee':>10}")
    for alpha in (1.0, 1.5, 2.0, 5.0, 10.0):
        report = optimize_multi_objective(query, n_workers=8, alpha=alpha)
        candidates = sum(
            partition.stats.plans_considered
            for partition in report.result.partition_results
        )
        ratio = approximation_ratio(report.plans, exact.plans)
        assert ratio <= alpha + 1e-9, "alpha guarantee violated"
        print(f"{alpha:>6g} {len(report.plans):>6d} {candidates:>11,d} "
              f"{ratio:>12.3f} {alpha:>10g}")
    print()
    print("Every approximate frontier stays within its factor-alpha guarantee")
    print("while pruning cuts the number of costed plan candidates.")


if __name__ == "__main__":
    main()
