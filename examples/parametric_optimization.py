"""Parametric query optimization: one optimization, plans for every θ.

The paper emphasizes that its plan-space partitioning applies beyond
classical optimization — to multi-objective and *parametric* query
optimization, where plan cost depends on an unknown parameter.  Here the
cost function is ``(1-θ)·execution_time + θ·intermediate_result_size`` for
θ ∈ [0, 1] (e.g. θ encodes how memory-pressured the execution environment
will be at run time).

A single MPQ pass with envelope pruning returns a small set of plans that
contains an optimal plan for *every* θ — re-optimizing per θ is never
needed.  This example shows the envelope, its switching points, and
verifies optimality against per-θ scalarized DP.

Run:  python examples/parametric_optimization.py
"""

from __future__ import annotations

from repro import make_chain_query
from repro.algorithms.pqo import optimize_parametric
from repro.config import OptimizerSettings, Objective
from repro.core.serial import optimize_serial
from repro.cost.parametric import scalarize


def scalarized_reference(query, theta):
    """Per-θ ground truth: scalarize inside a fresh single-objective-like DP.

    Uses the two-metric DP with exact Pareto pruning, then scalarizes — the
    frontier always contains every scalarized optimum.
    """
    settings = OptimizerSettings(
        objectives=(Objective.EXECUTION_TIME, Objective.OUTPUT_ROWS), alpha=1.0
    )
    frontier = optimize_serial(query, settings).plans
    return min(scalarize(plan.cost, theta) for plan in frontier)


def main() -> None:
    query = make_chain_query(8, seed=34)
    print(f"Query: {query.name} ({query.n_tables} tables)")

    result = optimize_parametric(query, n_workers=16)
    print(f"MPQ with {result.report.n_partitions} partitions returned "
          f"{len(result.plans)} envelope plans\n")

    print(f"{'plan':>5} {'time (θ=0)':>16} {'io (θ=1)':>16}")
    for index, plan in enumerate(
        sorted(result.plans, key=lambda p: p.cost[0])
    ):
        print(f"{index:>5d} {plan.cost[0]:>16,.0f} {plan.cost[1]:>16,.0f}")
    print()

    switches = result.switching_thetas()
    print("optimal plan switches at θ =",
          ", ".join(f"{theta:.4f}" for theta in switches) or "(never)")
    print()

    print(f"{'θ':>6} {'envelope cost':>16} {'reference':>16}")
    for theta in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        envelope = result.cost_at(theta)
        reference = scalarized_reference(query, theta)
        assert abs(envelope - reference) <= 1e-6 * reference
        print(f"{theta:>6.1f} {envelope:>16,.0f} {reference:>16,.0f}")
    print()
    print("The envelope matches per-θ re-optimization at every θ — one")
    print("parallel optimization covers the whole parameter range.")
    print()
    print("Envelopes here are small because execution time and C_out are")
    print("strongly correlated on this cost model: a plan with small")
    print("intermediate results is usually fast too.  That itself matches")
    print("the classic PQO observation that few plans cover wide parameter")
    print("ranges (Hulgeri & Sudarshan).")


if __name__ == "__main__":
    main()
