"""Packaging for the ``repro`` src-layout package (``pip install -e .``)."""

from setuptools import find_packages, setup

setup(
    name="repro-mpq",
    version="1.0.0",
    description=(
        "Reproduction of Trummer & Koch (PVLDB 2016): massively parallel "
        "query optimization on shared-nothing architectures, with an "
        "optimizer-as-a-service layer (plan caching, persistent worker pools)"
    ),
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The core package is dependency-free.  The `vec` extra enables the
    # vecdp array-native enumeration backend; without it vecdp registers
    # but reports itself unavailable and AUTO routes to fastdp.
    extras_require={"vec": ["numpy"]},
)
