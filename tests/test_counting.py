"""Closed-form complexity counts vs exhaustive enumeration (paper Section 5)."""

from __future__ import annotations

import pytest

from repro.config import PlanSpace
from repro.core.constraints import max_constraints, partition_constraints
from repro.core.counting import (
    admissible_result_count,
    admissible_result_count_at_least_2,
    best_two_way_partition_factor,
    bushy_assignment_count,
    linear_split_count,
    memory_reduction_factor,
    work_reduction_factor,
)
from repro.core.partitioning import admissible_join_results, admissible_results_by_size
from repro.core.worker import _bushy_groups, bushy_operands


def _all_space_constraint_combos():
    combos = []
    for space in (PlanSpace.LINEAR, PlanSpace.BUSHY):
        for n in range(2 if space is PlanSpace.LINEAR else 3, 11):
            for l in range(max_constraints(n, space) + 1):
                combos.append((n, l, space))
    return combos


class TestAdmissibleCounts:
    @pytest.mark.parametrize("n,l,space", _all_space_constraint_combos())
    def test_matches_enumeration(self, n, l, space):
        constraints = partition_constraints(n, 0, 1 << l, space)
        enumerated = len(admissible_join_results(n, constraints, space))
        assert admissible_result_count(n, l, space) == enumerated

    @pytest.mark.parametrize("n,l,space", _all_space_constraint_combos())
    def test_at_least_2_matches_enumeration(self, n, l, space):
        constraints = partition_constraints(n, 0, 1 << l, space)
        by_size = admissible_results_by_size(n, constraints, space)
        enumerated = sum(len(masks) for masks in by_size.values())
        assert admissible_result_count_at_least_2(n, l, space) == enumerated

    def test_theorem2_factor(self):
        # Each added linear constraint multiplies the count by exactly 3/4.
        for l in range(4):
            a = admissible_result_count(8, l, PlanSpace.LINEAR)
            b = admissible_result_count(8, l + 1, PlanSpace.LINEAR)
            assert b * 4 == a * 3

    def test_theorem3_factor(self):
        # Each added bushy constraint multiplies the count by exactly 7/8.
        for l in range(2):
            a = admissible_result_count(9, l, PlanSpace.BUSHY)
            b = admissible_result_count(9, l + 1, PlanSpace.BUSHY)
            assert b * 8 == a * 7

    def test_unconstrained_is_power_set(self):
        assert admissible_result_count(10, 0, PlanSpace.LINEAR) == 1 << 10
        assert admissible_result_count(9, 0, PlanSpace.BUSHY) == 1 << 9

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            admissible_result_count(4, 3, PlanSpace.LINEAR)
        with pytest.raises(ValueError):
            admissible_result_count(6, -1, PlanSpace.BUSHY)


def enumerate_linear_splits(n, l):
    """Count (U, u) split pairs exactly as the worker's inner loop does."""
    constraints = partition_constraints(n, 0, 1 << l, PlanSpace.LINEAR)
    after_masks = [0] * n
    for constraint in constraints:
        after_masks[constraint.before] |= 1 << constraint.after
    by_size = admissible_results_by_size(n, constraints, PlanSpace.LINEAR)
    total = 0
    for masks in by_size.values():
        for mask in masks:
            for u in range(n):
                if mask & (1 << u) and not after_masks[u] & mask:
                    total += 1
    return total


class TestLinearSplitCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9])
    def test_matches_enumeration(self, n):
        for l in range(max_constraints(n, PlanSpace.LINEAR) + 1):
            assert linear_split_count(n, l) == enumerate_linear_splits(n, l)

    def test_theorem6_factor_asymptotically(self):
        # Splits shrink by a factor approaching 3/4 per constraint.
        n = 12
        for l in range(3):
            ratio = linear_split_count(n, l + 1) / linear_split_count(n, l)
            assert 0.70 < ratio < 0.78


def enumerate_bushy_assignments(n, l):
    """Sum of |bushy_operands(U)| (degenerates included) over admissible U."""
    constraints = partition_constraints(n, 0, 1 << l, PlanSpace.BUSHY)
    groups = _bushy_groups(n, constraints)
    total = 0
    for mask in admissible_join_results(n, constraints, PlanSpace.BUSHY):
        total += len(bushy_operands(mask, groups))
    return total


class TestBushyAssignmentCounts:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8, 9])
    def test_matches_enumeration(self, n):
        for l in range(max_constraints(n, PlanSpace.BUSHY) + 1):
            assert bushy_assignment_count(n, l) == enumerate_bushy_assignments(n, l)

    def test_theorem7_factor(self):
        # Each added bushy constraint multiplies split work by exactly 21/27.
        for l in range(2):
            a = bushy_assignment_count(9, l)
            b = bushy_assignment_count(9, l + 1)
            assert b * 27 == a * 21

    def test_unconstrained_is_3_to_n(self):
        assert bushy_assignment_count(9, 0) == 3**9
        assert bushy_assignment_count(7, 0) == 3**7


class TestReductionFactors:
    def test_work_factors(self):
        assert work_reduction_factor(PlanSpace.LINEAR) == 0.75
        assert work_reduction_factor(PlanSpace.BUSHY) == pytest.approx(21 / 27)

    def test_memory_factors(self):
        assert memory_reduction_factor(PlanSpace.LINEAR) == 0.75
        assert memory_reduction_factor(PlanSpace.BUSHY) == 0.875


class TestPartitioningOptimality:
    """Theorems 8 and 9: 3/4 and 7/8 are optimal in the restricted space."""

    def test_theorem8_linear(self):
        assert best_two_way_partition_factor(PlanSpace.LINEAR) == pytest.approx(0.75)

    @pytest.mark.slow
    def test_theorem9_bushy(self):
        assert best_two_way_partition_factor(PlanSpace.BUSHY) == pytest.approx(7 / 8)
