"""Parametric query optimization: envelopes and the end-to-end guarantee."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pqo import optimize_parametric, parametric_settings
from repro.config import (
    MULTI_OBJECTIVE,
    Objective,
    OptimizerSettings,
    PlanSpace,
)
from repro.core.master import optimize_parallel
from repro.core.serial import best_plan, optimize_serial
from repro.cost.metrics import OutputRowsMetric
from repro.cost.parametric import (
    envelope_filter,
    needed_on_envelope,
    scalarize,
    switching_points,
)
from repro.query.generator import SteinbrunnGenerator

cost_vectors = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


class TestScalarize:
    def test_endpoints(self):
        assert scalarize((3.0, 7.0), 0.0) == 3.0
        assert scalarize((3.0, 7.0), 1.0) == 7.0

    def test_midpoint(self):
        assert scalarize((2.0, 4.0), 0.5) == 3.0

    def test_range_checked(self):
        with pytest.raises(ValueError):
            scalarize((1.0, 1.0), 1.5)


class TestEnvelope:
    def test_single_always_needed(self):
        assert needed_on_envelope((5.0, 5.0), [])

    def test_dominated_line_not_needed(self):
        assert not needed_on_envelope((5.0, 5.0), [(1.0, 1.0)])

    def test_crossing_lines_both_needed(self):
        assert needed_on_envelope((1.0, 10.0), [(10.0, 1.0)])
        assert needed_on_envelope((10.0, 1.0), [(1.0, 10.0)])

    def test_middle_line_above_crossing_not_needed(self):
        # Lines (0, 10) and (10, 0) cross at theta=0.5 with value 5;
        # a flat line at 6 never wins.
        assert not needed_on_envelope((6.0, 6.0), [(0.0, 10.0), (10.0, 0.0)])

    def test_middle_line_below_crossing_needed(self):
        assert needed_on_envelope((4.0, 4.0), [(0.0, 10.0), (10.0, 0.0)])

    def test_duplicate_not_needed(self):
        assert not needed_on_envelope((2.0, 3.0), [(2.0, 3.0)])

    def test_envelope_filter_keeps_extremes(self):
        keep = envelope_filter([(0.0, 10.0), (10.0, 0.0), (6.0, 6.0)])
        assert keep == [0, 1]

    def test_envelope_filter_dedupes(self):
        keep = envelope_filter([(1.0, 1.0), (1.0, 1.0)])
        assert keep == [0]

    def test_switching_points(self):
        points = switching_points([(0.0, 10.0), (10.0, 0.0)])
        assert points == [pytest.approx(0.5)]

    @given(st.lists(cost_vectors, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_envelope_preserves_optimum_everywhere(self, costs):
        keep = envelope_filter(costs)
        kept = [costs[i] for i in keep]
        for theta in (0.0, 0.25, 0.5, 0.75, 1.0):
            full = min(scalarize(c, theta) for c in costs)
            reduced = min(scalarize(c, theta) for c in kept)
            assert reduced == pytest.approx(full, rel=1e-6, abs=1e-6)


class TestSettingsValidation:
    def test_parametric_requires_two_objectives(self):
        with pytest.raises(ValueError):
            OptimizerSettings(parametric=True)

    def test_parametric_rejects_buffer(self):
        with pytest.raises(ValueError):
            OptimizerSettings(objectives=MULTI_OBJECTIVE, parametric=True)

    def test_parametric_rejects_orders(self):
        with pytest.raises(ValueError):
            OptimizerSettings(
                objectives=(Objective.EXECUTION_TIME, Objective.OUTPUT_ROWS),
                parametric=True,
                consider_orders=True,
            )

    def test_helper_builds_valid_settings(self):
        assert parametric_settings().parametric


class TestOutputRowsMetric:
    def test_scan_free(self):
        from repro.query.schema import Table

        assert OutputRowsMetric().scan_cost(Table("R", 100), 100.0) == 0.0

    def test_join_adds_output(self):
        from repro.plans.operators import JoinAlgorithm

        cost = OutputRowsMetric().join_cost(
            10.0, 20.0, 5.0, 5.0, 42.0, JoinAlgorithm.HASH, True, True
        )
        assert cost == 72.0


class TestParametricOptimality:
    """The envelope matches scalarized single-objective DP at every θ."""

    THETAS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)

    def scalarized_optimum(self, query, theta):
        """Ground truth via exhaustive enumeration of left-deep plans."""
        from repro.core.exhaustive import iter_leftdeep_plans
        from repro.cost.costmodel import CostModel

        model = CostModel(query, parametric_settings())
        return min(
            scalarize(plan.cost, theta)
            for plan in iter_leftdeep_plans(query, model)
        )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_serial_envelope_optimal_everywhere(self, seed):
        query = SteinbrunnGenerator(seed).query(5)
        result = optimize_parametric(query)
        for theta in self.THETAS:
            assert result.cost_at(theta) == pytest.approx(
                self.scalarized_optimum(query, theta)
            )

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_parallel_matches_serial(self, workers):
        query = SteinbrunnGenerator(9).query(6)
        serial = optimize_parametric(query, 1)
        parallel = optimize_parametric(query, workers)
        for theta in self.THETAS:
            assert parallel.cost_at(theta) == pytest.approx(serial.cost_at(theta))

    def test_bushy_space(self):
        query = SteinbrunnGenerator(11).query(6)
        linear = optimize_parametric(query, 1, PlanSpace.LINEAR)
        bushy = optimize_parametric(query, 4, PlanSpace.BUSHY)
        for theta in self.THETAS:
            assert bushy.cost_at(theta) <= linear.cost_at(theta) * (1 + 1e-9)

    def test_time_endpoint_matches_single_objective(self):
        query = SteinbrunnGenerator(12).query(7)
        single = best_plan(optimize_serial(query, OptimizerSettings()))
        parametric = optimize_parametric(query)
        assert parametric.cost_at(0.0) == pytest.approx(single.cost[0])

    def test_switching_thetas_in_range(self):
        query = SteinbrunnGenerator(13).query(7)
        result = optimize_parametric(query, 4)
        for theta in result.switching_thetas():
            assert 0.0 < theta < 1.0

    def test_envelope_smaller_than_frontier(self):
        """The envelope is a subset of the Pareto frontier (convex hull)."""
        query = SteinbrunnGenerator(14).query(7)
        parametric = optimize_parametric(query)
        frontier = optimize_serial(
            query,
            OptimizerSettings(
                objectives=(Objective.EXECUTION_TIME, Objective.OUTPUT_ROWS),
                alpha=1.0,
            ),
        )
        assert len(parametric.plans) <= len(frontier.plans)
        frontier_costs = {plan.cost for plan in frontier.plans}
        for plan in parametric.plans:
            assert plan.cost in frontier_costs

    def test_worker_stats_present(self):
        query = SteinbrunnGenerator(15).query(6)
        result = optimize_parametric(query, 4)
        assert result.report.n_partitions == 4
        assert result.report.network_bytes > 0
