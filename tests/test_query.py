"""The query object: numbering, predicate indexing, join graph."""

from __future__ import annotations

import pickle

import pytest

from repro.query.query import Query
from repro.query.schema import Table
from tests.conftest import make_manual_query


class TestValidation:
    def test_requires_tables(self):
        with pytest.raises(ValueError):
            Query(tables=())

    def test_predicate_endpoint_bounds(self):
        with pytest.raises(ValueError):
            make_manual_query([10, 20], [(0, 5, 0.1)])

    def test_single_table_ok(self):
        query = Query(tables=(Table("R", 5),))
        assert query.n_tables == 1


class TestBasics:
    def test_n_tables(self):
        assert make_manual_query([1, 2, 3]).n_tables == 3

    def test_all_tables_mask(self):
        assert make_manual_query([1, 2, 3]).all_tables_mask == 0b111

    def test_table_by_number(self):
        query = make_manual_query([10, 20])
        assert query.table(1).cardinality == 20

    def test_describe_mentions_tables(self):
        text = make_manual_query([10, 20], [(0, 1, 0.5)]).describe()
        assert "T0" in text and "T1" in text


class TestPredicateIndex:
    def test_predicates_of(self):
        query = make_manual_query([1, 2, 3], [(0, 1, 0.1), (1, 2, 0.2)])
        assert len(query.predicates_of(1)) == 2
        assert len(query.predicates_of(0)) == 1
        assert query.predicates_of(5) == ()

    def test_predicates_between(self):
        query = make_manual_query([1, 2, 3], [(0, 1, 0.1), (1, 2, 0.2)])
        found = query.predicates_between(0b001, 0b010)
        assert [p.selectivity for p in found] == [0.1]

    def test_predicates_between_cross_product(self):
        query = make_manual_query([1, 2, 3], [(0, 1, 0.1)])
        assert query.predicates_between(0b001, 0b100) == []

    def test_predicates_between_no_duplicates(self):
        query = make_manual_query([1, 2, 3, 4], [(0, 2, 0.1), (1, 3, 0.2)])
        found = query.predicates_between(0b0011, 0b1100)
        assert len(found) == 2


class TestJoinGraph:
    def test_edges(self):
        query = make_manual_query([1, 2, 3], [(0, 1, 0.1), (1, 2, 0.2)])
        assert query.join_graph_edges() == {frozenset({0, 1}), frozenset({1, 2})}

    def test_connected_chain(self):
        query = make_manual_query([1, 2, 3], [(0, 1, 0.1), (1, 2, 0.2)])
        assert query.is_connected()

    def test_disconnected(self):
        query = make_manual_query([1, 2, 3], [(0, 1, 0.1)])
        assert not query.is_connected()

    def test_single_table_connected(self):
        assert make_manual_query([7]).is_connected()


class TestPickling:
    def test_roundtrip(self):
        query = make_manual_query([10, 20, 30], [(0, 1, 0.1), (1, 2, 0.2)])
        clone = pickle.loads(pickle.dumps(query))
        assert clone.n_tables == 3
        assert clone.predicates_of(1) == query.predicates_of(1)
        assert clone.table(2).cardinality == 30
