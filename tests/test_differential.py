"""Property-based differential tests of the enumeration backends.

The acceptance bar for any hot-path rewrite: on seeded random queries across
chain/star/cycle/clique topologies and 1–3 objectives, the fastdp core, the
legacy worker, and exhaustive enumeration must agree on the exact Pareto
frontier.  The two sweep tests below run 200 such queries end to end (the
oracle cycles kinds × objective sets internally); the remaining tests pin
the oracle machinery itself — shrinking, sub-query induction, guards.
"""

from __future__ import annotations

import importlib.util

import pytest

from repro.config import (
    MULTI_OBJECTIVE,
    PARAMETRIC_OBJECTIVES,
    Backend,
    Objective,
    OptimizerSettings,
    PlanSpace,
)
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind
from repro.testing import (
    ORACLE_FEATURES,
    ORACLE_OBJECTIVE_SETS,
    BackendRoutingError,
    FrontierMismatch,
    assert_equivalent_frontiers,
    frontier,
    induced_subquery,
    run_differential_oracle,
)
from repro.testing.differential import _legacy_backend

#: The plain sweeps must add up to the acceptance bar of the oracle; the
#: feature sweeps below add interesting-order and parametric coverage on
#: top (the acceptance criterion requires 200+ cases *including* those).
LINEAR_SWEEP_QUERIES = 120
BUSHY_SWEEP_QUERIES = 80
ORDERS_SWEEP_QUERIES = 72
PARAMETRIC_SWEEP_QUERIES = 48
assert LINEAR_SWEEP_QUERIES + BUSHY_SWEEP_QUERIES >= 200

THREE_OBJECTIVES = (
    Objective.EXECUTION_TIME,
    Objective.BUFFER_SPACE,
    Objective.OUTPUT_ROWS,
)

#: vecdp sweep sizes: 200 linear + 120 bushy = 320 seeded queries pitting
#: the array core against both scalar cores and ground truth on every
#: capability it declares (1/2/3 objectives, both plan spaces).
VECDP_LINEAR_SWEEP_QUERIES = 200
VECDP_BUSHY_SWEEP_QUERIES = 120
VECDP_BACKENDS = ("legacy", "fastdp", "vecdp", "exhaustive")

needs_numpy = pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None, reason="vecdp requires numpy"
)


class TestOracleSweeps:
    """≥200 seeded random queries where all three backends must agree."""

    def test_linear_sweep(self):
        outcome = run_differential_oracle(
            n_queries=LINEAR_SWEEP_QUERIES,
            seed=0,
            table_range=(3, 5),
            plan_spaces=(PlanSpace.LINEAR,),
        )
        assert outcome.cases_run == LINEAR_SWEEP_QUERIES
        assert outcome.passed, "\n\n".join(str(f) for f in outcome.failures)

    def test_bushy_sweep(self):
        outcome = run_differential_oracle(
            n_queries=BUSHY_SWEEP_QUERIES,
            seed=1,
            table_range=(3, 4),
            plan_spaces=(PlanSpace.BUSHY,),
        )
        assert outcome.cases_run == BUSHY_SWEEP_QUERIES
        assert outcome.passed, "\n\n".join(str(f) for f in outcome.failures)

    def test_sweeps_cover_every_kind_and_objective_count(self):
        """The oracle cycles topologies and 1/2/3-objective sets by design."""
        outcome = run_differential_oracle(
            n_queries=len(JoinGraphKind) * len(ORACLE_OBJECTIVE_SETS),
            seed=2,
            table_range=(3, 4),
            plan_spaces=(PlanSpace.LINEAR,),
        )
        log = "\n".join(outcome.case_log)
        for kind in JoinGraphKind:
            assert kind.value in log
        for objectives in ORACLE_OBJECTIVE_SETS:
            assert str([o.value for o in objectives]) in log

    def test_orders_sweep(self):
        """Interesting orders across all topologies, objective counts, spaces."""
        outcome = run_differential_oracle(
            n_queries=ORDERS_SWEEP_QUERIES,
            seed=10,
            table_range=(3, 4),
            features=("orders",),
        )
        assert outcome.cases_run == ORDERS_SWEEP_QUERIES
        assert outcome.passed, "\n\n".join(str(f) for f in outcome.failures)
        assert all("feature=orders" in line for line in outcome.case_log)

    def test_parametric_sweep(self):
        """Parametric costs: envelopes must match exactly across backends."""
        outcome = run_differential_oracle(
            n_queries=PARAMETRIC_SWEEP_QUERIES,
            seed=11,
            table_range=(3, 4),
            features=("parametric",),
        )
        assert outcome.cases_run == PARAMETRIC_SWEEP_QUERIES
        assert outcome.passed, "\n\n".join(str(f) for f in outcome.failures)
        assert all("feature=parametric" in line for line in outcome.case_log)

    def test_mixed_feature_sweep_cycles_all_features(self):
        """One full mixed-radix period covers plain, orders, and parametric."""
        period = (
            len(JoinGraphKind)
            * len(ORACLE_OBJECTIVE_SETS)
            * len((PlanSpace.LINEAR, PlanSpace.BUSHY))
            * len(ORACLE_FEATURES)
        )
        outcome = run_differential_oracle(
            n_queries=period,
            seed=12,
            table_range=(3, 3),
            features=ORACLE_FEATURES,
            backends=("legacy", "fastdp"),
        )
        assert outcome.passed
        for feature in ORACLE_FEATURES:
            assert any(
                f"feature={feature}" in line for line in outcome.case_log
            ), f"sweep never exercises {feature}"

    def test_default_sweep_crosses_topology_with_plan_space(self):
        """No (kind, plan space) pair may be structurally untestable."""
        cases = (
            len(JoinGraphKind)
            * len(ORACLE_OBJECTIVE_SETS)
            * len((PlanSpace.LINEAR, PlanSpace.BUSHY))
        )
        outcome = run_differential_oracle(
            n_queries=cases,
            seed=3,
            table_range=(3, 4),
            backends=("legacy", "fastdp"),
        )
        assert outcome.passed
        for kind in JoinGraphKind:
            for space in PlanSpace:
                assert any(
                    f"-{kind.value}-" in line and f"space={space.value}" in line
                    for line in outcome.case_log
                ), f"sweep never pairs {kind.value} with {space.value}"


@needs_numpy
class TestVecdpSweeps:
    """320 seeded queries where the array core must match both scalar cores
    and exhaustive ground truth on every capability vecdp declares."""

    def test_linear_sweep(self):
        outcome = run_differential_oracle(
            n_queries=VECDP_LINEAR_SWEEP_QUERIES,
            seed=20,
            table_range=(3, 5),
            plan_spaces=(PlanSpace.LINEAR,),
            backends=VECDP_BACKENDS,
        )
        assert outcome.cases_run == VECDP_LINEAR_SWEEP_QUERIES
        assert outcome.passed, "\n\n".join(str(f) for f in outcome.failures)

    def test_bushy_sweep(self):
        outcome = run_differential_oracle(
            n_queries=VECDP_BUSHY_SWEEP_QUERIES,
            seed=21,
            table_range=(3, 4),
            plan_spaces=(PlanSpace.BUSHY,),
            backends=VECDP_BACKENDS,
        )
        assert outcome.cases_run == VECDP_BUSHY_SWEEP_QUERIES
        assert outcome.passed, "\n\n".join(str(f) for f in outcome.failures)

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    @pytest.mark.parametrize("n_tables", [8, 10])
    def test_linear_at_scale_without_exhaustive(self, kind, n_tables):
        query = SteinbrunnGenerator(seed=25).query(n_tables, kind)
        assert_equivalent_frontiers(
            query, OptimizerSettings(), backends=("fastdp", "vecdp")
        )

    @pytest.mark.parametrize("kind", [JoinGraphKind.CHAIN, JoinGraphKind.STAR])
    def test_bushy_multi_objective_at_scale(self, kind):
        query = SteinbrunnGenerator(seed=26).query(8, kind)
        assert_equivalent_frontiers(
            query,
            OptimizerSettings(
                plan_space=PlanSpace.BUSHY, objectives=MULTI_OBJECTIVE
            ),
            backends=("legacy", "fastdp", "vecdp"),
        )

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    def test_three_objectives(self, kind):
        query = SteinbrunnGenerator(seed=27).query(7, kind)
        assert_equivalent_frontiers(
            query,
            OptimizerSettings(objectives=THREE_OBJECTIVES),
            backends=("legacy", "fastdp", "vecdp"),
        )

    def test_undeclared_capability_is_a_loud_error(self):
        """The oracle must not be able to compare vecdp on settings it does
        not declare — explicit resolution raises instead of falling back."""
        query = SteinbrunnGenerator(seed=28).query(4, JoinGraphKind.CHAIN)
        with pytest.raises(ValueError, match="INTERESTING_ORDERS"):
            frontier(
                query, OptimizerSettings(consider_orders=True), "vecdp"
            )
        with pytest.raises(ValueError, match="PARAMETRIC_COSTS"):
            frontier(
                query,
                OptimizerSettings(
                    objectives=PARAMETRIC_OBJECTIVES, parametric=True
                ),
                "vecdp",
            )


class TestExplicitTopologies:
    """Direct (non-sweep) spot checks, readable per topology/objective."""

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    @pytest.mark.parametrize(
        "objectives",
        [
            (Objective.EXECUTION_TIME,),
            MULTI_OBJECTIVE,
            THREE_OBJECTIVES,
        ],
        ids=["1obj", "2obj", "3obj"],
    )
    def test_all_backends_agree(self, kind, objectives):
        query = SteinbrunnGenerator(seed=99).query(5, kind)
        assert_equivalent_frontiers(
            query, OptimizerSettings(objectives=objectives)
        )

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    def test_bushy_all_backends_agree(self, kind):
        query = SteinbrunnGenerator(seed=98).query(4, kind)
        assert_equivalent_frontiers(
            query,
            OptimizerSettings(
                plan_space=PlanSpace.BUSHY, objectives=MULTI_OBJECTIVE
            ),
        )

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_interesting_orders_all_backends_agree(self, kind, space):
        query = SteinbrunnGenerator(seed=97, clustered_tables=True).query(
            4, kind
        )
        assert_equivalent_frontiers(
            query,
            OptimizerSettings(plan_space=space, consider_orders=True),
        )

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    @pytest.mark.parametrize("space", list(PlanSpace))
    def test_parametric_all_backends_agree(self, kind, space):
        query = SteinbrunnGenerator(seed=96).query(4, kind)
        assert_equivalent_frontiers(
            query,
            OptimizerSettings(
                plan_space=space,
                objectives=PARAMETRIC_OBJECTIVES,
                parametric=True,
            ),
        )


class TestLargerQueriesWithoutExhaustive:
    """fastdp vs legacy at sizes exhaustive enumeration cannot reach."""

    @pytest.mark.parametrize("kind", list(JoinGraphKind))
    @pytest.mark.parametrize("n_tables", [8, 10])
    def test_linear(self, kind, n_tables):
        query = SteinbrunnGenerator(seed=5).query(n_tables, kind)
        assert_equivalent_frontiers(
            query, OptimizerSettings(), backends=("legacy", "fastdp")
        )

    @pytest.mark.parametrize("kind", [JoinGraphKind.CHAIN, JoinGraphKind.STAR])
    def test_bushy_multi_objective(self, kind):
        query = SteinbrunnGenerator(seed=6).query(8, kind)
        assert_equivalent_frontiers(
            query,
            OptimizerSettings(
                plan_space=PlanSpace.BUSHY, objectives=MULTI_OBJECTIVE
            ),
            backends=("legacy", "fastdp"),
        )

    @pytest.mark.parametrize("kind", [JoinGraphKind.CHAIN, JoinGraphKind.CYCLE])
    def test_orders_at_scale(self, kind):
        query = SteinbrunnGenerator(seed=9, clustered_tables=True).query(
            9, kind
        )
        assert_equivalent_frontiers(
            query,
            OptimizerSettings(consider_orders=True),
            backends=("legacy", "fastdp"),
        )

    @pytest.mark.parametrize("kind", [JoinGraphKind.STAR, JoinGraphKind.CLIQUE])
    def test_parametric_at_scale(self, kind):
        query = SteinbrunnGenerator(seed=9).query(8, kind)
        assert_equivalent_frontiers(
            query,
            OptimizerSettings(
                objectives=PARAMETRIC_OBJECTIVES, parametric=True
            ),
            backends=("legacy", "fastdp"),
        )

    def test_alpha_approximate_pruning_matches_decision_for_decision(self):
        """α > 1 pruning is order-sensitive; the cores must still agree."""
        query = SteinbrunnGenerator(seed=7).query(9, JoinGraphKind.STAR)
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=10.0)
        legacy = optimize_serial(query, settings.replace(backend=Backend.LEGACY))
        fast = optimize_serial(query, settings.replace(backend=Backend.FASTDP))
        assert [p.cost for p in legacy.plans] == [p.cost for p in fast.plans]

    def test_best_plan_cost_agrees(self):
        query = SteinbrunnGenerator(seed=8).query(10, JoinGraphKind.CHAIN)
        settings = OptimizerSettings()
        legacy = best_plan(optimize_serial(query, settings))
        fast = best_plan(
            optimize_serial(query, settings.replace(backend=Backend.FASTDP))
        )
        assert legacy.cost == fast.cost
        assert legacy.join_order() == fast.join_order()


class TestOracleMachinery:
    """The oracle itself: mismatch reporting, shrinking, guards."""

    @staticmethod
    def _broken_backend(query, settings):
        """Diverges exactly when ≥3 tables participate (shrinks to any 3)."""
        vectors = _legacy_backend(query, settings)
        if query.n_tables >= 3:
            return [tuple(value * 2 for value in vector) for vector in vectors]
        return vectors

    def test_mismatch_reports_minimal_subset(self):
        query = SteinbrunnGenerator(seed=11).query(5, JoinGraphKind.STAR)
        with pytest.raises(FrontierMismatch) as excinfo:
            assert_equivalent_frontiers(
                query,
                OptimizerSettings(),
                backends=("legacy", self._broken_backend),
            )
        mismatch = excinfo.value
        # 1-minimal: exactly 3 tables survive shrinking, and the sub-query
        # still carries the original numbering in its report.
        assert len(mismatch.minimal_tables) == 3
        assert mismatch.minimal_query.n_tables == 3
        assert "minimal offending table subset" in str(mismatch)
        assert mismatch.frontiers["legacy"] != mismatch.frontiers["_broken_backend"]

    def test_mismatch_without_minimize_keeps_full_query(self):
        query = SteinbrunnGenerator(seed=11).query(4, JoinGraphKind.CHAIN)
        with pytest.raises(FrontierMismatch) as excinfo:
            assert_equivalent_frontiers(
                query,
                OptimizerSettings(),
                backends=("legacy", self._broken_backend),
                minimize=False,
            )
        assert excinfo.value.minimal_tables == (0, 1, 2, 3)

    def test_induced_subquery_renumbers_and_keeps_selectivity(self):
        query = SteinbrunnGenerator(seed=12).query(5, JoinGraphKind.CHAIN)
        sub = induced_subquery(query, (1, 3, 4))
        assert sub.n_tables == 3
        assert [t.name for t in sub.tables] == ["T1", "T3", "T4"]
        # Chain edges: (1,2),(2,3),(3,4); only (3,4) survives, renumbered.
        assert len(sub.predicates) == 1
        predicate = sub.predicates[0]
        assert {predicate.left_table, predicate.right_table} == {1, 2}
        original = next(
            p
            for p in query.predicates
            if {p.left_table, p.right_table} == {3, 4}
        )
        assert predicate.selectivity == original.selectivity

    def test_induced_subquery_rejects_empty(self):
        query = SteinbrunnGenerator(seed=12).query(3, JoinGraphKind.CHAIN)
        with pytest.raises(ValueError):
            induced_subquery(query, ())

    def test_exhaustive_guard_rejects_large_queries(self):
        query = SteinbrunnGenerator(seed=13).query(8, JoinGraphKind.CHAIN)
        with pytest.raises(ValueError, match="capped"):
            frontier(query, OptimizerSettings(), "exhaustive")

    def test_exhaustive_guard_rejects_alpha_approximation(self):
        query = SteinbrunnGenerator(seed=13).query(4, JoinGraphKind.CHAIN)
        settings = OptimizerSettings(objectives=MULTI_OBJECTIVE, alpha=2.0)
        with pytest.raises(ValueError, match="alpha"):
            frontier(query, settings, "exhaustive")

    def test_unknown_backend_name(self):
        query = SteinbrunnGenerator(seed=13).query(3, JoinGraphKind.CHAIN)
        with pytest.raises(ValueError, match="unknown backend"):
            frontier(query, OptimizerSettings(), "quantum")

    def test_unknown_feature_name(self):
        with pytest.raises(ValueError, match="unknown feature"):
            run_differential_oracle(n_queries=1, features=("quantum",))

    def test_silent_backend_substitution_raises_routing_error(self):
        """A backend that routes to a different core must not pass silently."""
        from repro.core import worker
        from repro.core.worker import EnumerationBackend

        impostor = EnumerationBackend(
            backend=Backend.FASTDP,
            capabilities=worker.ALL_CAPABILITIES,
            speed_rank=10,
            loader=lambda: worker._optimize_partition_legacy,
        )
        original = worker._BACKEND_REGISTRY[Backend.FASTDP]
        worker.register_backend(impostor)
        try:
            query = SteinbrunnGenerator(seed=13).query(3, JoinGraphKind.CHAIN)
            with pytest.raises(BackendRoutingError, match="fastdp"):
                frontier(query, OptimizerSettings(), "fastdp")
        finally:
            worker.register_backend(original)

    def test_needs_two_backends(self):
        query = SteinbrunnGenerator(seed=13).query(3, JoinGraphKind.CHAIN)
        with pytest.raises(ValueError, match="two backends"):
            assert_equivalent_frontiers(
                query, OptimizerSettings(), backends=("legacy",)
            )

    def test_oracle_rejects_table_range_beyond_exhaustive_cap(self):
        with pytest.raises(ValueError, match="cap"):
            run_differential_oracle(n_queries=1, table_range=(7, 9))
        # Without the exhaustive backend, larger queries are fine.
        outcome = run_differential_oracle(
            n_queries=2, table_range=(7, 8), backends=("legacy", "fastdp")
        )
        assert outcome.passed

    def test_oracle_rejects_inverted_table_range(self):
        with pytest.raises(ValueError, match="exceeds high"):
            run_differential_oracle(n_queries=1, table_range=(5, 3))

    def test_success_returns_identical_frontiers(self):
        query = SteinbrunnGenerator(seed=14).query(4, JoinGraphKind.STAR)
        frontiers = assert_equivalent_frontiers(query, OptimizerSettings())
        assert set(frontiers) == {"legacy", "fastdp", "exhaustive"}
        assert len({signature for signature in frontiers.values()}) == 1
