"""Join predicates and selectivity estimation."""

from __future__ import annotations

import pytest

from repro.query.predicates import JoinPredicate, equi_join_selectivity
from repro.query.schema import Column


def make_predicate(left=0, right=1, selectivity=0.01):
    return JoinPredicate(
        left_table=left,
        left_column="a",
        right_table=right,
        right_column="b",
        selectivity=selectivity,
    )


class TestSelectivity:
    def test_uses_max_domain(self):
        assert equi_join_selectivity(Column("a", 10), Column("b", 1000)) == 1 / 1000

    def test_symmetric(self):
        a, b = Column("a", 50), Column("b", 20)
        assert equi_join_selectivity(a, b) == equi_join_selectivity(b, a)

    def test_unit_domains(self):
        assert equi_join_selectivity(Column("a", 1), Column("b", 1)) == 1.0


class TestJoinPredicateValidation:
    def test_rejects_self_join(self):
        with pytest.raises(ValueError):
            make_predicate(left=2, right=2)

    def test_rejects_zero_selectivity(self):
        with pytest.raises(ValueError):
            make_predicate(selectivity=0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            make_predicate(selectivity=1.5)

    def test_selectivity_one_allowed(self):
        assert make_predicate(selectivity=1.0).selectivity == 1.0


class TestTablePair:
    def test_unordered(self):
        assert make_predicate(0, 3).table_pair == frozenset({0, 3})


class TestConnects:
    def test_straddling(self):
        predicate = make_predicate(0, 2)
        assert predicate.connects(0b001, 0b100)

    def test_straddling_flipped(self):
        predicate = make_predicate(0, 2)
        assert predicate.connects(0b100, 0b001)

    def test_same_side(self):
        predicate = make_predicate(0, 2)
        assert not predicate.connects(0b101, 0b010)

    def test_one_endpoint_absent(self):
        predicate = make_predicate(0, 2)
        assert not predicate.connects(0b001, 0b010)

    def test_with_extra_tables(self):
        predicate = make_predicate(0, 2)
        assert predicate.connects(0b1001, 0b0110)


class TestAppliesWithin:
    def test_both_present(self):
        assert make_predicate(1, 3).applies_within(0b1010)

    def test_one_missing(self):
        assert not make_predicate(1, 3).applies_within(0b0010)

    def test_superset(self):
        assert make_predicate(0, 1).applies_within(0b111)
