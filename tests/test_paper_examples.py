"""The paper's worked examples, reproduced literally.

Example 1 (Section 4): four workers optimizing R ⋈ S ⋈ T ⋈ U; the worker
with partition ID 3 (the paper's 1-based partition "three", binary ``10``)
derives constraints "R before S" and "U before T".

Example 2 (Section 4.2): Q = {Q1, Q2, Q3, Q4} with constraints
Q1 ≺ Q2 and Q4 ≺ Q3 yields exactly nine admissible join results.

Paper tables are 1-based (Q1…Q4) and partition IDs run 1…m; this library is
0-based throughout, so Q_i maps to table i-1 and partition p to p-1.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from itertools import permutations

from repro.config import PlanSpace
from repro.core.constraints import (
    LinearConstraint,
    max_constraints,
    partition_constraints,
)
from repro.core.partitioning import admissible_join_results
from repro.util.bitset import mask_of


class TestExample1:
    """Partition "three" of four: constraints R ≺ S and U ≺ T."""

    # Tables: R=0, S=1, T=2, U=3.  The paper's partition ID 3 is our ID 2,
    # binary 10: bit 0 = 0 -> first pair ordered R before S; bit 1 = 1 ->
    # second pair flipped, U before T.
    def test_constraints_decoded(self):
        constraints = partition_constraints(4, 2, 4, PlanSpace.LINEAR)
        assert constraints == (
            LinearConstraint(before=0, after=1),  # R before S
            LinearConstraint(before=3, after=2),  # U before T
        )

    def test_two_constraints_for_four_partitions(self):
        constraints = partition_constraints(4, 2, 4, PlanSpace.LINEAR)
        assert len(constraints) == 2  # log2(4)

    def test_all_four_partitions_have_distinct_constraints(self):
        seen = {
            partition_constraints(4, pid, 4, PlanSpace.LINEAR)
            for pid in range(4)
        }
        assert len(seen) == 4


class TestExample2:
    """Admissible join results under Q1 ≺ Q2 and Q4 ≺ Q3."""

    def test_exact_admissible_sets(self):
        # Q1..Q4 map to tables 0..3; constraints: 0 ≺ 1 and 3 ≺ 2.
        constraints = (
            LinearConstraint(before=0, after=1),
            LinearConstraint(before=3, after=2),
        )
        generated = set(admissible_join_results(4, constraints, PlanSpace.LINEAR))
        # The paper's R after the second iteration:
        # {}, {Q1}, {Q1,Q2}, {Q4}, {Q1,Q4}, {Q1,Q2,Q4}, {Q3,Q4},
        # {Q1,Q3,Q4}, {Q1,Q2,Q3,Q4}
        expected = {
            mask_of([]),
            mask_of([0]),
            mask_of([0, 1]),
            mask_of([3]),
            mask_of([0, 3]),
            mask_of([0, 1, 3]),
            mask_of([2, 3]),
            mask_of([0, 2, 3]),
            mask_of([0, 1, 2, 3]),
        }
        assert generated == expected

    def test_count_matches_paper(self):
        constraints = (
            LinearConstraint(before=0, after=1),
            LinearConstraint(before=3, after=2),
        )
        generated = admissible_join_results(4, constraints, PlanSpace.LINEAR)
        assert len(generated) == 9  # 3 x 3 per the Cartesian product


def _order_partition(order, n_tables, n_partitions):
    """The unique partition ID whose constraints the join order satisfies."""
    position = {table: index for index, table in enumerate(order)}
    n_constraints = n_partitions.bit_length() - 1
    partition_id = 0
    for bit_index in range(n_constraints):
        first, second = 2 * bit_index, 2 * bit_index + 1
        if position[first] > position[second]:
            partition_id |= 1 << bit_index
    return partition_id


class TestOrdersPartitionThePlanSpace:
    """Left-deep orders distribute over partitions: each order satisfies the
    constraints of *exactly one* partition — the partitioning is a true
    partition of the join-order space, not just a covering."""

    @pytest.mark.parametrize("n,m", [(4, 4), (6, 8), (6, 4)])
    def test_each_order_in_exactly_one_partition(self, n, m):
        all_constraints = [
            partition_constraints(n, pid, m, PlanSpace.LINEAR) for pid in range(m)
        ]
        for order in permutations(range(n)):
            position = {table: index for index, table in enumerate(order)}
            satisfying = [
                pid
                for pid, constraints in enumerate(all_constraints)
                if all(
                    position[c.before] < position[c.after] for c in constraints
                )
            ]
            assert len(satisfying) == 1
            assert satisfying[0] == _order_partition(order, n, m)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=10),
        data=st.data(),
    )
    def test_random_order_lands_in_its_computed_partition(self, n, data):
        m = 1 << max_constraints(n, PlanSpace.LINEAR)
        order = data.draw(st.permutations(range(n)))
        pid = _order_partition(order, n, m)
        constraints = partition_constraints(n, pid, m, PlanSpace.LINEAR)
        position = {table: index for index, table in enumerate(order)}
        for constraint in constraints:
            assert position[constraint.before] < position[constraint.after]

    def test_partition_counts_are_uniform(self):
        """Each partition admits exactly n!/m of the join orders."""
        import math

        n, m = 6, 8
        counts = [0] * m
        for order in permutations(range(n)):
            counts[_order_partition(order, n, m)] += 1
        assert counts == [math.factorial(n) // m] * m
