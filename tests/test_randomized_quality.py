"""Randomized-search quality relative to the DP optimum across workloads.

The paper's motivation for parallelizing DP instead of the easily-parallel
randomized algorithms is the optimality guarantee.  These tests quantify the
gap: the heuristics are good but not reliably optimal, while DP always is.
"""

from __future__ import annotations

import pytest

from repro.algorithms.randomized import iterated_improvement, simulated_annealing
from repro.config import OptimizerSettings
from repro.core.serial import best_plan, optimize_serial
from repro.query.generator import SteinbrunnGenerator
from repro.query.query import JoinGraphKind


def optimum(query):
    return best_plan(optimize_serial(query, OptimizerSettings())).cost[0]


class TestHeuristicQuality:
    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_ii_within_small_factor_on_stars(self, n):
        """Star queries: II lands within 10x of optimal (usually at it)."""
        query = SteinbrunnGenerator(100 + n).query(n, JoinGraphKind.STAR)
        heuristic = iterated_improvement(query, n_restarts=5, seed=1)
        assert heuristic.cost[0] <= 10 * optimum(query)

    @pytest.mark.parametrize("kind", [JoinGraphKind.CHAIN, JoinGraphKind.CYCLE])
    def test_sa_within_small_factor(self, kind):
        query = SteinbrunnGenerator(200).query(8, kind)
        heuristic = simulated_annealing(query, seed=2)
        assert heuristic.cost[0] <= 10 * optimum(query)

    def test_heuristics_not_always_optimal(self):
        """Across a workload, at least one run misses the optimum — the
        guarantee gap the paper cites as the reason to parallelize DP."""
        misses = 0
        for seed in range(8):
            query = SteinbrunnGenerator(300 + seed).query(9)
            weak = iterated_improvement(
                query, n_restarts=1, max_moves_without_gain=5, seed=seed
            )
            if weak.cost[0] > optimum(query) * (1 + 1e-9):
                misses += 1
        assert misses >= 1

    def test_dp_always_optimal_on_same_workload(self):
        from repro.core.exhaustive import min_cost_leftdeep

        for seed in range(4):
            query = SteinbrunnGenerator(300 + seed).query(6)
            settings = OptimizerSettings()
            assert best_plan(optimize_serial(query, settings)).cost[
                0
            ] == pytest.approx(min_cost_leftdeep(query, settings))
